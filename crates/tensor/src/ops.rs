//! Structural tensor operations mirroring the top-down semantics of the Syno
//! primitives (Table 1), plus the reductions and axis manipulations the
//! neural-network substrate needs.
//!
//! | Syno primitive (top-down) | Tensor op here |
//! |---------------------------|----------------|
//! | `Merge`  — flatten two dims        | [`reshape`] |
//! | `Split`  — partition into blocks   | [`reshape`] |
//! | `Shift`  — rotate a dimension      | [`roll`] |
//! | `Unfold` — sliding windows         | [`unfold`] (zero-padded) |
//! | `Expand` — repeat                  | [`repeat`] |
//! | `Stride` — strided access          | [`strided`] |
//! | `Reduce` — sum a dimension         | [`sum_axis`] |
//! | `Share`  — weight product          | [`crate::einsum`] |

use crate::tensor::Tensor;

/// Reinterprets the buffer under a new shape of equal element count.
///
/// # Panics
///
/// Panics when element counts differ.
pub fn reshape(t: &Tensor, shape: &[usize]) -> Tensor {
    let numel: usize = shape.iter().product();
    assert_eq!(t.numel(), numel, "reshape element-count mismatch");
    Tensor::from_vec(t.data().to_vec(), shape)
}

/// Permutes axes: `out[i_perm[0], …] = in[i_0, …]`, i.e. axis `d` of the
/// output is axis `perm[d]` of the input.
///
/// # Panics
///
/// Panics when `perm` is not a permutation of `0..rank`.
pub fn permute(t: &Tensor, perm: &[usize]) -> Tensor {
    assert_eq!(perm.len(), t.rank(), "permutation rank mismatch");
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        assert!(p < perm.len() && !seen[p], "invalid permutation");
        seen[p] = true;
    }
    let in_shape = t.shape();
    let out_shape: Vec<usize> = perm.iter().map(|&p| in_shape[p]).collect();
    let in_strides = Tensor::strides_of(in_shape);
    let mut out = Tensor::zeros(&out_shape);
    let out_strides = Tensor::strides_of(&out_shape);
    let numel = t.numel();
    let data = t.data();
    let out_data = out.data_mut();
    for (flat, item) in out_data.iter_mut().enumerate().take(numel) {
        // Decode output index, map through perm, encode input offset.
        let mut in_off = 0;
        for d in 0..perm.len() {
            let coord = (flat / out_strides[d]) % out_shape[d];
            in_off += coord * in_strides[perm[d]];
        }
        *item = data[in_off];
    }
    out
}

/// The inverse of a permutation.
pub fn inverse_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// Rotates axis `axis` by `amount`: `out[i] = in[(i + amount) mod n]` —
/// the top-down semantics of `Shift` (with `amount = 1`).
///
/// # Panics
///
/// Panics when `axis` is out of range.
pub fn roll(t: &Tensor, axis: usize, amount: i64) -> Tensor {
    assert!(axis < t.rank(), "axis out of range");
    let shape = t.shape().to_vec();
    let n = shape[axis] as i64;
    let strides = Tensor::strides_of(&shape);
    let mut out = Tensor::zeros(&shape);
    let data = t.data();
    let out_data = out.data_mut();
    for (flat, item) in out_data.iter_mut().enumerate() {
        let coord = ((flat / strides[axis]) % shape[axis]) as i64;
        let src = (coord + amount).rem_euclid(n) as usize;
        let src_off = flat - (coord as usize) * strides[axis] + src * strides[axis];
        *item = data[src_off];
    }
    out
}

/// Extracts sliding windows along `axis` with window size `k`, zero-padding
/// out-of-range reads: the result gains a trailing axis of extent `k` with
/// `out[..., i, ..., j] = in[..., i + j − k/2, ...]` — the top-down
/// semantics of `Unfold`.
///
/// # Panics
///
/// Panics when `axis` is out of range or `k == 0`.
pub fn unfold(t: &Tensor, axis: usize, k: usize) -> Tensor {
    assert!(axis < t.rank(), "axis out of range");
    assert!(k > 0, "window must be positive");
    let in_shape = t.shape().to_vec();
    let n = in_shape[axis] as i64;
    let mut out_shape = in_shape.clone();
    out_shape.push(k);
    let in_strides = Tensor::strides_of(&in_shape);
    let out_strides = Tensor::strides_of(&out_shape);
    let mut out = Tensor::zeros(&out_shape);
    let data = t.data();
    let out_data = out.data_mut();
    for (flat, item) in out_data.iter_mut().enumerate() {
        let j = (flat / out_strides[in_shape.len()]) % k;
        let i = (flat / out_strides[axis]) % in_shape[axis];
        let src = i as i64 + j as i64 - (k / 2) as i64;
        if src < 0 || src >= n {
            continue; // zero padding
        }
        // Rebuild the input offset: all axes except the trailing window axis.
        let mut in_off = 0;
        for d in 0..in_shape.len() {
            let coord = (flat / out_strides[d]) % out_shape[d];
            let coord = if d == axis { src as usize } else { coord };
            in_off += coord * in_strides[d];
        }
        *item = data[in_off];
    }
    out
}

/// Transpose of [`unfold`]: accumulates windows back onto the base axis
/// (used by autodiff).
///
/// # Panics
///
/// Panics when `grad`'s trailing axis is not `k` or shapes mismatch.
pub fn fold_acc(grad: &Tensor, axis: usize, k: usize, in_shape: &[usize]) -> Tensor {
    assert_eq!(grad.rank(), in_shape.len() + 1, "fold rank mismatch");
    assert_eq!(*grad.shape().last().unwrap(), k, "fold window mismatch");
    let n = in_shape[axis] as i64;
    let out_strides = Tensor::strides_of(grad.shape());
    let in_strides = Tensor::strides_of(in_shape);
    let mut out = Tensor::zeros(in_shape);
    let out_shape = grad.shape().to_vec();
    let data = grad.data();
    for (flat, &g) in data.iter().enumerate() {
        if g == 0.0 {
            continue;
        }
        let j = (flat / out_strides[in_shape.len()]) % k;
        let i = (flat / out_strides[axis]) % out_shape[axis];
        let src = i as i64 + j as i64 - (k / 2) as i64;
        if src < 0 || src >= n {
            continue;
        }
        let mut in_off = 0;
        for d in 0..in_shape.len() {
            let coord = (flat / out_strides[d]) % out_shape[d];
            let coord = if d == axis { src as usize } else { coord };
            in_off += coord * in_strides[d];
        }
        out.data_mut()[in_off] += g;
    }
    out
}

/// Strided selection along `axis`: `out[..., i, ...] = in[..., s·i, ...]`
/// with output extent `n / s` — the top-down semantics of `Stride`.
///
/// # Panics
///
/// Panics when `axis` is out of range or `s` does not divide the extent.
pub fn strided(t: &Tensor, axis: usize, s: usize) -> Tensor {
    assert!(axis < t.rank(), "axis out of range");
    let in_shape = t.shape().to_vec();
    assert!(s > 0 && in_shape[axis].is_multiple_of(s), "stride must divide extent");
    let mut out_shape = in_shape.clone();
    out_shape[axis] = in_shape[axis] / s;
    let in_strides = Tensor::strides_of(&in_shape);
    let out_strides = Tensor::strides_of(&out_shape);
    let mut out = Tensor::zeros(&out_shape);
    let data = t.data();
    let out_data = out.data_mut();
    for (flat, item) in out_data.iter_mut().enumerate() {
        let mut in_off = 0;
        for d in 0..in_shape.len() {
            let coord = (flat / out_strides[d]) % out_shape[d];
            let coord = if d == axis { coord * s } else { coord };
            in_off += coord * in_strides[d];
        }
        *item = data[in_off];
    }
    out
}

/// Transpose of [`strided`]: scatters gradients to the multiples of `s`.
pub fn strided_scatter(grad: &Tensor, axis: usize, s: usize, in_shape: &[usize]) -> Tensor {
    let out_strides = Tensor::strides_of(grad.shape());
    let in_strides = Tensor::strides_of(in_shape);
    let mut out = Tensor::zeros(in_shape);
    let grad_shape = grad.shape().to_vec();
    for (flat, &g) in grad.data().iter().enumerate() {
        let mut in_off = 0;
        for d in 0..in_shape.len() {
            let coord = (flat / out_strides[d]) % grad_shape[d];
            let coord = if d == axis { coord * s } else { coord };
            in_off += coord * in_strides[d];
        }
        out.data_mut()[in_off] += g;
    }
    out
}

/// Inserts a new axis of extent `times` at position `axis`, repeating the
/// input — the top-down semantics of `Expand`.
///
/// # Panics
///
/// Panics when `axis > rank`.
pub fn repeat(t: &Tensor, axis: usize, times: usize) -> Tensor {
    assert!(axis <= t.rank(), "axis out of range");
    let mut out_shape = t.shape().to_vec();
    out_shape.insert(axis, times);
    let in_strides = Tensor::strides_of(t.shape());
    let out_strides = Tensor::strides_of(&out_shape);
    let mut out = Tensor::zeros(&out_shape);
    let data = t.data();
    let out_data = out.data_mut();
    for (flat, item) in out_data.iter_mut().enumerate() {
        let mut in_off = 0;
        let mut in_d = 0;
        for d in 0..out_shape.len() {
            if d == axis {
                continue;
            }
            let coord = (flat / out_strides[d]) % out_shape[d];
            in_off += coord * in_strides[in_d];
            in_d += 1;
        }
        *item = data[in_off];
    }
    out
}

/// Sums over `axis`, removing it — the top-down semantics of `Reduce`.
///
/// # Panics
///
/// Panics when `axis` is out of range.
pub fn sum_axis(t: &Tensor, axis: usize) -> Tensor {
    assert!(axis < t.rank(), "axis out of range");
    let in_shape = t.shape().to_vec();
    let mut out_shape = in_shape.clone();
    out_shape.remove(axis);
    let in_strides = Tensor::strides_of(&in_shape);
    let out_strides = Tensor::strides_of(&out_shape);
    let mut out = Tensor::zeros(&out_shape);
    for (flat, &v) in t.data().iter().enumerate() {
        let mut out_off = 0;
        let mut out_d = 0;
        for d in 0..in_shape.len() {
            if d == axis {
                continue;
            }
            let coord = (flat / in_strides[d]) % in_shape[d];
            out_off += coord * out_strides[out_d];
            out_d += 1;
        }
        out.data_mut()[out_off] += v;
    }
    out
}

/// Mean over `axis`.
///
/// # Panics
///
/// Panics when `axis` is out of range.
pub fn mean_axis(t: &Tensor, axis: usize) -> Tensor {
    let n = t.shape()[axis] as f32;
    sum_axis(t, axis).scale(1.0 / n)
}

/// Softmax over the last axis (numerically stabilized).
///
/// # Panics
///
/// Panics on rank-0 input.
pub fn softmax_last(t: &Tensor) -> Tensor {
    assert!(t.rank() >= 1, "softmax needs rank >= 1");
    let last = *t.shape().last().unwrap();
    let rows = t.numel() / last;
    let mut out = t.clone();
    let data = out.data_mut();
    for r in 0..rows {
        let row = &mut data[r * last..(r + 1) * last];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Slices `[start, start+len)` along `axis`.
///
/// # Panics
///
/// Panics when the range exceeds the extent.
pub fn slice(t: &Tensor, axis: usize, start: usize, len: usize) -> Tensor {
    assert!(axis < t.rank(), "axis out of range");
    let in_shape = t.shape().to_vec();
    assert!(start + len <= in_shape[axis], "slice out of range");
    let mut out_shape = in_shape.clone();
    out_shape[axis] = len;
    let in_strides = Tensor::strides_of(&in_shape);
    let out_strides = Tensor::strides_of(&out_shape);
    let mut out = Tensor::zeros(&out_shape);
    let data = t.data();
    let out_data = out.data_mut();
    for (flat, item) in out_data.iter_mut().enumerate() {
        let mut in_off = 0;
        for d in 0..in_shape.len() {
            let coord = (flat / out_strides[d]) % out_shape[d];
            let coord = if d == axis { coord + start } else { coord };
            in_off += coord * in_strides[d];
        }
        *item = data[in_off];
    }
    out
}

/// Concatenates tensors along `axis`.
///
/// # Panics
///
/// Panics when shapes disagree off-axis or the list is empty.
pub fn concat(tensors: &[&Tensor], axis: usize) -> Tensor {
    assert!(!tensors.is_empty(), "concat of nothing");
    let first = tensors[0].shape().to_vec();
    let mut total = 0;
    for t in tensors {
        assert_eq!(t.rank(), first.len(), "concat rank mismatch");
        for (d, (&td, &fd)) in t.shape().iter().zip(&first).enumerate() {
            if d != axis {
                assert_eq!(td, fd, "concat off-axis mismatch");
            }
        }
        total += t.shape()[axis];
    }
    let mut out_shape = first.clone();
    out_shape[axis] = total;
    let out_strides = Tensor::strides_of(&out_shape);
    let mut out = Tensor::zeros(&out_shape);
    let mut base = 0usize;
    for t in tensors {
        let in_shape = t.shape().to_vec();
        let in_strides = Tensor::strides_of(&in_shape);
        for (flat, &v) in t.data().iter().enumerate() {
            let mut out_off = 0;
            for d in 0..in_shape.len() {
                let coord = (flat / in_strides[d]) % in_shape[d];
                let coord = if d == axis { coord + base } else { coord };
                out_off += coord * out_strides[d];
            }
            out.data_mut()[out_off] = v;
        }
        base += t.shape()[axis];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), shape)
    }

    #[test]
    fn reshape_preserves_order() {
        let t = iota(&[2, 3]);
        let r = reshape(&t, &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[3, 2]);
    }

    #[test]
    fn permute_transposes() {
        let t = iota(&[2, 3]);
        let p = permute(&t, &[1, 0]);
        assert_eq!(p.shape(), &[3, 2]);
        assert_eq!(p.get(&[0, 1]), t.get(&[1, 0]));
        assert_eq!(p.get(&[2, 0]), t.get(&[0, 2]));
        // Inverse round-trips.
        let back = permute(&p, &inverse_permutation(&[1, 0]));
        assert_eq!(back, t);
    }

    #[test]
    fn permute_3d() {
        let t = iota(&[2, 3, 4]);
        let p = permute(&t, &[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.get(&[3, 1, 2]), t.get(&[1, 2, 3]));
        let back = permute(&p, &inverse_permutation(&[2, 0, 1]));
        assert_eq!(back, t);
    }

    #[test]
    fn roll_wraps() {
        let t = iota(&[4]);
        let r = roll(&t, 0, 1); // out[i] = in[(i+1)%4]
        assert_eq!(r.data(), &[1.0, 2.0, 3.0, 0.0]);
        let r2 = roll(&t, 0, -1);
        assert_eq!(r2.data(), &[3.0, 0.0, 1.0, 2.0]);
        assert_eq!(roll(&r, 0, -1), t);
    }

    #[test]
    fn unfold_zero_pads() {
        let t = iota(&[4]); // [0,1,2,3]
        let u = unfold(&t, 0, 3); // out[i,j] = in[i+j-1]
        assert_eq!(u.shape(), &[4, 3]);
        assert_eq!(u.get(&[0, 0]), 0.0); // in[-1] clipped
        assert_eq!(u.get(&[0, 1]), 0.0); // in[0]
        assert_eq!(u.get(&[0, 2]), 1.0);
        assert_eq!(u.get(&[3, 1]), 3.0);
        assert_eq!(u.get(&[3, 2]), 0.0); // in[4] clipped
    }

    #[test]
    fn unfold_middle_axis() {
        let t = iota(&[2, 3]);
        let u = unfold(&t, 1, 3);
        assert_eq!(u.shape(), &[2, 3, 3]);
        assert_eq!(u.get(&[1, 1, 0]), t.get(&[1, 0]));
        assert_eq!(u.get(&[1, 1, 1]), t.get(&[1, 1]));
        assert_eq!(u.get(&[1, 2, 2]), 0.0); // clip
    }

    #[test]
    fn fold_is_unfold_transpose() {
        // <unfold(x), g> == <x, fold(g)> — adjointness on random data.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::from_vec((0..6).map(|_| rng.random::<f32>()).collect(), &[6]);
        let g = Tensor::from_vec((0..18).map(|_| rng.random::<f32>()).collect(), &[6, 3]);
        let ux = unfold(&x, 0, 3);
        let lhs: f32 = ux.mul(&g).sum_all();
        let fg = fold_acc(&g, 0, 3, &[6]);
        let rhs: f32 = x.mul(&fg).sum_all();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn strided_selects_multiples() {
        let t = iota(&[6]);
        let s = strided(&t, 0, 2);
        assert_eq!(s.data(), &[0.0, 2.0, 4.0]);
        let g = Tensor::ones(&[3]);
        let back = strided_scatter(&g, 0, 2, &[6]);
        assert_eq!(back.data(), &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn repeat_inserts_axis() {
        let t = iota(&[2]);
        let r = repeat(&t, 0, 3);
        assert_eq!(r.shape(), &[3, 2]);
        for i in 0..3 {
            assert_eq!(r.get(&[i, 0]), 0.0);
            assert_eq!(r.get(&[i, 1]), 1.0);
        }
        let r2 = repeat(&t, 1, 3);
        assert_eq!(r2.shape(), &[2, 3]);
        assert_eq!(r2.get(&[1, 2]), 1.0);
    }

    #[test]
    fn sum_axis_matches_manual() {
        let t = iota(&[2, 3]);
        let s0 = sum_axis(&t, 0);
        assert_eq!(s0.data(), &[3.0, 5.0, 7.0]);
        let s1 = sum_axis(&t, 1);
        assert_eq!(s1.data(), &[3.0, 12.0]);
        let m = mean_axis(&t, 1);
        assert_eq!(m.data(), &[1.0, 4.0]);
    }

    #[test]
    fn softmax_rows_normalize() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let s = softmax_last(&t);
        let row0: f32 = s.data()[0..3].iter().sum();
        let row1: f32 = s.data()[3..6].iter().sum();
        assert!((row0 - 1.0).abs() < 1e-6);
        assert!((row1 - 1.0).abs() < 1e-6);
        assert!((s.get(&[1, 0]) - 1.0 / 3.0).abs() < 1e-6);
        assert!(s.get(&[0, 2]) > s.get(&[0, 1]));
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let t = iota(&[2, 4]);
        let a = slice(&t, 1, 0, 2);
        let b = slice(&t, 1, 2, 2);
        assert_eq!(concat(&[&a, &b], 1), t);
        assert_eq!(a.get(&[1, 1]), t.get(&[1, 1]));
        assert_eq!(b.get(&[1, 0]), t.get(&[1, 2]));
    }
}
