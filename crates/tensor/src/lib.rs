//! # syno-tensor — the dense tensor runtime and autodiff substrate
//!
//! This crate substitutes for PyTorch/ATen in the Syno reproduction:
//!
//! * [`Tensor`] — contiguous row-major `f32` tensors;
//! * [`ops`] — structural operations mirroring the top-down semantics of the
//!   Syno primitives (reshape/permute/roll/unfold/strided/repeat/sum);
//! * [`einsum`](crate::einsum()) — general Einstein summation, the lowering
//!   target for `Share`/`Reduce` contractions (§8);
//! * [`Tape`] — reverse-mode autodiff over all of the above, powering the
//!   accuracy-proxy training loops.
//!
//! ## Example
//!
//! ```
//! use syno_tensor::{Tape, Tensor, einsum};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Eager einsum...
//! let x = Tensor::from_vec(vec![1.0, 2.0], &[2]);
//! let w = Tensor::from_vec(vec![3.0, 4.0], &[2]);
//! let dot = einsum("i,i->", &[&x, &w])?;
//! assert_eq!(dot.data(), &[11.0]);
//!
//! // ...and the same computation with gradients.
//! let mut tape = Tape::new();
//! let xv = tape.leaf(x);
//! let wv = tape.leaf(w);
//! let y = tape.einsum("i,i->", &[xv, wv]);
//! let grads = tape.backward(y);
//! assert_eq!(grads.get(xv).unwrap().data(), &[3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod autodiff;
mod einsum;
mod exec;
pub mod init;
pub mod ops;
mod pool;
mod tensor;

pub use autodiff::{Gradients, Tape, Var};
pub use einsum::{
    einsum, einsum_reference, einsum_spec, einsum_spec_reference, matmul, EinsumEngine,
    EinsumError, EinsumPlan, EinsumSpec,
};
pub use exec::{ExecPolicy, ExecPool};
pub use pool::ScratchPool;
pub use tensor::Tensor;
