//! Execution policy and the data-parallel shard pool.
//!
//! PR 5's stride-compiled engine ran every contraction on one thread in
//! serial summation order. This module adds the two knobs that evolve that
//! contract without giving up determinism:
//!
//! * [`ExecPolicy::reduce_width`] — the **pinned shape of the reduction
//!   tree**. A width `w > 1` splits the outermost summed loop of an einsum
//!   into `min(w, extent)` contiguous chunks, each accumulated in serial
//!   order, then combines the partials in a fixed pairwise-adjacent binary
//!   tree. The chunking and the combine order depend only on the operand
//!   shapes and `w` — never on thread count or scheduling — so results are
//!   bit-identical for a given width no matter how many workers run.
//! * [`ExecPolicy::exec_threads`] — how many OS threads may cooperate on one
//!   contraction. Threads only decide *who* computes a shard, not *what* is
//!   combined with what, so this knob is value-invisible by construction.
//!
//! [`ExecPool`] is the worker pool behind `exec_threads`: a scoped,
//! dependency-free condvar-parked pool (the same parking design as the
//! search crate's `EvalPool`, but for borrowed closures instead of boxed
//! jobs). The caller participates in draining shards, workers park on a
//! condvar between tasks, and a panic on any shard is captured and re-thrown
//! on the caller thread — a poisoned worker never degrades to silently
//! missing output.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How the execution engine schedules one contraction.
///
/// The default policy is the **pinned determinism contract**: single-threaded
/// execution under the pinned reduction-tree width
/// ([`ExecPolicy::PINNED_REDUCE_WIDTH`]). Raising `exec_threads` never
/// changes values; changing `reduce_width` does (it reshapes the reduction
/// tree), which is why the width is part of the stored-score contract.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecPolicy {
    /// Maximum OS threads cooperating on one contraction (including the
    /// calling thread). `1` means fully in-line execution. Value-invisible:
    /// results are bit-identical across thread counts at a fixed
    /// `reduce_width`.
    pub exec_threads: usize,
    /// Width of the deterministic reduction tree: the outermost summed loop
    /// is split into at most this many contiguous chunks whose partials are
    /// combined pairwise-adjacent. `1` reproduces the PR 5 serial summation
    /// order exactly. Part of the value contract — stored proxy scores are
    /// tagged with the width they were computed under.
    pub reduce_width: usize,
}

impl ExecPolicy {
    /// The reduction-tree width the default contract pins (and the width the
    /// re-pinned proxy-score constants were computed under).
    pub const PINNED_REDUCE_WIDTH: usize = 4;

    /// The exact PR 5 contract: one thread, serial left-to-right summation.
    pub fn serial() -> Self {
        ExecPolicy {
            exec_threads: 1,
            reduce_width: 1,
        }
    }

    /// The pinned contract with up to `exec_threads` cooperating threads.
    pub fn with_threads(exec_threads: usize) -> Self {
        ExecPolicy {
            exec_threads: exec_threads.max(1),
            ..Self::default()
        }
    }

    /// `true` when this policy reproduces PR 5 serial summation order.
    pub fn is_serial_order(&self) -> bool {
        self.reduce_width <= 1
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            exec_threads: 1,
            reduce_width: Self::PINNED_REDUCE_WIDTH,
        }
    }
}

/// The shard closure, lifetime-erased for the shared task slot. The caller
/// of [`ExecPool::run`] blocks until every shard finished, so the pointee
/// outlives every dereference.
#[derive(Clone, Copy)]
struct ShardFn(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared &-calls from many threads are fine)
// and `run` keeps it alive until all workers are done with it.
unsafe impl Send for ShardFn {}

struct ActiveTask {
    f: ShardFn,
    /// Next unclaimed shard index.
    next: usize,
    /// Total shard count.
    total: usize,
    /// Shards currently executing on some thread.
    running: usize,
    /// First captured worker panic, re-thrown on the caller thread.
    panic: Option<Box<dyn Any + Send>>,
}

struct PoolState {
    task: Option<ActiveTask>,
    shutdown: bool,
}

struct PoolCore {
    state: Mutex<PoolState>,
    /// Signals parked workers that a task arrived (or shutdown).
    work: Condvar,
    /// Signals the caller that the last running shard finished.
    done: Condvar,
}

/// A small data-parallel worker pool for shard execution.
///
/// Workers park on a condvar between tasks; [`ExecPool::run`] publishes a
/// borrowed shard closure, participates in the drain itself, and returns
/// once every shard completed — re-raising the first shard panic, if any.
pub struct ExecPool {
    core: Arc<PoolCore>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ExecPool {
    /// A pool with `workers` parked OS threads. With `workers == 0` the
    /// pool is inert and [`ExecPool::run`] executes every shard in-line.
    pub fn new(workers: usize) -> Self {
        let core = Arc::new(PoolCore {
            state: Mutex::new(PoolState {
                task: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|_| {
                let core = Arc::clone(&core);
                std::thread::spawn(move || worker_loop(&core))
            })
            .collect();
        ExecPool { core, workers }
    }

    /// A pool sized for `policy`: the calling thread counts as one executor,
    /// so `exec_threads - 1` workers are spawned. Returns `None` for
    /// single-threaded policies (nothing to park).
    pub fn for_policy(policy: ExecPolicy) -> Option<Self> {
        (policy.exec_threads > 1).then(|| Self::new(policy.exec_threads - 1))
    }

    /// Number of parked worker threads (the caller is one more executor).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(0..shards)` across the pool plus the calling thread, blocking
    /// until every shard completed. Shards are claimed dynamically; callers
    /// must not depend on which thread runs which shard (the deterministic
    /// tree reduction exists precisely so values never do).
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any shard raised, after all shards
    /// finished or were claimed.
    pub fn run(&self, shards: usize, f: &(dyn Fn(usize) + Sync)) {
        if shards <= 1 || self.workers.is_empty() {
            for i in 0..shards {
                f(i);
            }
            return;
        }
        // SAFETY: pure lifetime erasure — the borrow checker cannot see that
        // `run` blocks until every shard retired, so the pointee outlives
        // every dereference through the erased pointer.
        let erased = ShardFn(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        });
        let mut state = self.core.state.lock().expect("exec pool lock");
        debug_assert!(state.task.is_none(), "ExecPool::run is not reentrant");
        state.task = Some(ActiveTask {
            f: erased,
            next: 0,
            total: shards,
            running: 0,
            panic: None,
        });
        self.core.work.notify_all();
        // The caller participates in the drain.
        loop {
            let claim = claim_shard(&mut state);
            let Some((f, i)) = claim else { break };
            drop(state);
            // SAFETY: `f` points at the borrowed closure above, alive until
            // this function returns; it is `Sync` so shared calls are fine.
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*f.0)(i) }));
            state = self.core.state.lock().expect("exec pool lock");
            finish_shard(&mut state, result);
        }
        // Wait for in-flight shards claimed by workers.
        while state
            .task
            .as_ref()
            .is_some_and(|t| t.running > 0 || t.next < t.total)
        {
            state = self.core.done.wait(state).expect("exec pool lock");
        }
        let task = state.task.take().expect("task still published");
        drop(state);
        if let Some(payload) = task.panic {
            resume_unwind(payload);
        }
    }
}

/// Claims the next shard under the lock, marking it running.
fn claim_shard(state: &mut PoolState) -> Option<(ShardFn, usize)> {
    let t = state.task.as_mut()?;
    if t.next >= t.total {
        return None;
    }
    t.next += 1;
    t.running += 1;
    Some((t.f, t.next - 1))
}

/// Marks a shard finished under the lock, recording the first panic.
fn finish_shard(state: &mut PoolState, result: Result<(), Box<dyn Any + Send>>) {
    if let Some(t) = state.task.as_mut() {
        t.running -= 1;
        if let Err(payload) = result {
            t.panic.get_or_insert(payload);
        }
    }
}

fn worker_loop(core: &PoolCore) {
    let mut state = core.state.lock().expect("exec pool lock");
    loop {
        if state.shutdown {
            return;
        }
        match claim_shard(&mut state) {
            Some((f, i)) => {
                drop(state);
                // SAFETY: see `ExecPool::run` — the closure outlives the
                // task it was published under.
                let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*f.0)(i) }));
                state = core.state.lock().expect("exec pool lock");
                finish_shard(&mut state, result);
                let finished = state
                    .task
                    .as_ref()
                    .is_some_and(|t| t.next >= t.total && t.running == 0);
                if finished {
                    core.done.notify_all();
                }
            }
            None => {
                state = core.work.wait(state).expect("exec pool lock");
            }
        }
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut state = self.core.state.lock().expect("exec pool lock");
            state.shutdown = true;
        }
        self.core.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn default_policy_is_the_pinned_contract() {
        let p = ExecPolicy::default();
        assert_eq!(p.exec_threads, 1);
        assert_eq!(p.reduce_width, ExecPolicy::PINNED_REDUCE_WIDTH);
        assert!(ExecPolicy::serial().is_serial_order());
        assert!(!p.is_serial_order());
    }

    #[test]
    fn every_shard_runs_exactly_once() {
        let pool = ExecPool::new(3);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "shard {i}");
        }
    }

    #[test]
    fn inert_pool_runs_inline() {
        let pool = ExecPool::new(0);
        assert_eq!(pool.worker_count(), 0);
        let count = AtomicUsize::new(0);
        pool.run(5, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn pool_is_reusable_across_tasks() {
        let pool = ExecPool::new(2);
        for round in 0..16 {
            let sum = AtomicUsize::new(0);
            pool.run(8, &|i| {
                sum.fetch_add(i + round, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), 28 + 8 * round);
        }
    }

    #[test]
    fn shard_panics_propagate_to_the_caller() {
        let pool = ExecPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("shard 3 exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("payload preserved");
        assert_eq!(msg, "shard 3 exploded");
        // The pool survives and keeps working.
        let count = AtomicUsize::new(0);
        pool.run(4, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn for_policy_sizes_from_exec_threads() {
        assert!(ExecPool::for_policy(ExecPolicy::serial()).is_none());
        let pool = ExecPool::for_policy(ExecPolicy::with_threads(4)).expect("parallel policy");
        assert_eq!(pool.worker_count(), 3);
    }
}
