//! Buffer recycling for the execution hot path.
//!
//! Candidate evaluation dominates search wall-clock, and its inner loop —
//! proxy training — used to allocate a fresh `Vec<f32>` for every tensor an
//! op produced, every step. A [`ScratchPool`] keeps those buffers alive
//! across calls (and, via [`Tape::reset`](crate::Tape::reset), across
//! training steps): `take*` hands out a recycled buffer when one is
//! available, `recycle*` returns buffers once their tensors are dead.
//!
//! Recycling is **value-invisible**: a taken buffer is always fully
//! initialized (zeroed, copied, or filled by the caller) before it becomes a
//! tensor, so pooled and unpooled execution produce bit-identical results —
//! the invariant the differential-testing suite pins.

use crate::tensor::Tensor;

/// A recycling allocator for `f32` buffers.
///
/// Buffers are handed out LIFO; training loops repeat the same op sequence
/// with the same shapes each step, so after a warm-up step the pool serves
/// every request without touching the system allocator.
///
/// # Examples
///
/// ```
/// use syno_tensor::ScratchPool;
///
/// let mut pool = ScratchPool::new();
/// let buf = pool.take_zeroed(16);
/// assert!(buf.iter().all(|&x| x == 0.0));
/// pool.recycle_buffer(buf);
/// assert_eq!(pool.recycled(), 0); // not yet re-served
/// let again = pool.take_zeroed(8);
/// assert_eq!(again.len(), 8);
/// assert_eq!(pool.recycled(), 1); // served from the pool
/// ```
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Vec<Vec<f32>>,
    disabled: bool,
    recycled: usize,
}

impl ScratchPool {
    /// An empty, enabled pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool that never recycles: every `take*` allocates fresh and every
    /// `recycle*` drops. This is the pre-PR allocation behavior, kept for
    /// the reference engine mode the differential tests and the
    /// `proxy_train` bench compare against.
    pub fn disabled() -> Self {
        ScratchPool {
            disabled: true,
            ..Self::default()
        }
    }

    /// How many `take*` requests were served from recycled buffers.
    pub fn recycled(&self) -> usize {
        self.recycled
    }

    /// An empty buffer (length 0), reusing a pooled allocation when one is
    /// available. The caller fills it.
    pub fn take_raw(&mut self) -> Vec<f32> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                self.recycled += 1;
                buf
            }
            None => Vec::new(),
        }
    }

    /// A buffer of `numel` zeros.
    pub fn take_zeroed(&mut self, numel: usize) -> Vec<f32> {
        let mut buf = self.take_raw();
        buf.resize(numel, 0.0);
        buf
    }

    /// A buffer holding a copy of `data`.
    pub fn take_copied(&mut self, data: &[f32]) -> Vec<f32> {
        let mut buf = self.take_raw();
        buf.extend_from_slice(data);
        buf
    }

    /// A zero tensor of `shape`, backed by a pooled buffer.
    pub fn take_tensor(&mut self, shape: &[usize]) -> Tensor {
        let numel = shape.iter().product();
        Tensor::from_vec(self.take_zeroed(numel), shape)
    }

    /// A copy of `t` backed by a pooled buffer.
    pub fn take_clone(&mut self, t: &Tensor) -> Tensor {
        Tensor::from_vec(self.take_copied(t.data()), t.shape())
    }

    /// Returns a raw buffer to the pool.
    pub fn recycle_buffer(&mut self, buf: Vec<f32>) {
        if !self.disabled && buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Returns a tensor's backing buffer to the pool.
    pub fn recycle(&mut self, t: Tensor) {
        self.recycle_buffer(t.into_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_cycle_and_grow() {
        let mut pool = ScratchPool::new();
        let a = pool.take_zeroed(4);
        pool.recycle_buffer(a);
        let b = pool.take_zeroed(8);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&x| x == 0.0));
        assert_eq!(pool.recycled(), 1);
    }

    #[test]
    fn recycled_buffers_come_back_zeroed() {
        let mut pool = ScratchPool::new();
        let mut t = pool.take_tensor(&[2, 2]);
        t.data_mut().fill(7.0);
        pool.recycle(t);
        let again = pool.take_tensor(&[2, 2]);
        assert_eq!(again.data(), &[0.0; 4]);
    }

    #[test]
    fn copied_matches_source() {
        let mut pool = ScratchPool::new();
        let src = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let copy = pool.take_clone(&src);
        assert_eq!(copy, src);
    }

    #[test]
    fn disabled_pool_never_recycles() {
        let mut pool = ScratchPool::disabled();
        let a = pool.take_zeroed(4);
        pool.recycle_buffer(a);
        let _ = pool.take_zeroed(4);
        assert_eq!(pool.recycled(), 0);
    }
}
