//! Buffer recycling for the execution hot path.
//!
//! Candidate evaluation dominates search wall-clock, and its inner loop —
//! proxy training — used to allocate a fresh `Vec<f32>` for every tensor an
//! op produced, every step. A [`ScratchPool`] keeps those buffers alive
//! across calls (and, via [`Tape::reset`](crate::Tape::reset), across
//! training steps): `take*` hands out a recycled buffer when one is
//! available, `recycle*` returns buffers once their tensors are dead.
//!
//! Recycling is **value-invisible**: a taken buffer is always fully
//! initialized (zeroed, copied, or filled by the caller) before it becomes a
//! tensor, so pooled and unpooled execution produce bit-identical results —
//! the invariant the differential-testing suite pins.
//!
//! The pool is **bounded**: parked bytes are capped (default
//! [`ScratchPool::DEFAULT_CAP_BYTES`]); recycling past the cap evicts the
//! *oldest* parked buffers (the LIFO hot end stays warm), and a single
//! buffer larger than the cap is dropped outright. [`ScratchPool::pooled_bytes`]
//! and [`ScratchPool::high_water_bytes`] expose the footprint — the
//! `syno_tensor_scratch_bytes` gauge in the metrics dump reads the former.

use crate::tensor::Tensor;
use std::collections::VecDeque;

/// A recycling allocator for `f32` buffers.
///
/// Buffers are handed out LIFO; training loops repeat the same op sequence
/// with the same shapes each step, so after a warm-up step the pool serves
/// every request without touching the system allocator.
///
/// # Examples
///
/// ```
/// use syno_tensor::ScratchPool;
///
/// let mut pool = ScratchPool::new();
/// let buf = pool.take_zeroed(16);
/// assert!(buf.iter().all(|&x| x == 0.0));
/// pool.recycle_buffer(buf);
/// assert_eq!(pool.recycled(), 0); // not yet re-served
/// let again = pool.take_zeroed(8);
/// assert_eq!(again.len(), 8);
/// assert_eq!(pool.recycled(), 1); // served from the pool
/// ```
#[derive(Debug)]
pub struct ScratchPool {
    /// Parked buffers: pushed/popped at the back (LIFO), evicted from the
    /// front when the byte cap is exceeded.
    free: VecDeque<Vec<f32>>,
    disabled: bool,
    recycled: usize,
    /// Bytes currently parked in `free` (capacity, not length).
    pooled_bytes: usize,
    /// Largest `pooled_bytes` ever observed.
    high_water_bytes: usize,
    /// Eviction threshold for `pooled_bytes`.
    cap_bytes: usize,
}

impl Default for ScratchPool {
    fn default() -> Self {
        ScratchPool {
            free: VecDeque::new(),
            disabled: false,
            recycled: 0,
            pooled_bytes: 0,
            high_water_bytes: 0,
            cap_bytes: Self::DEFAULT_CAP_BYTES,
        }
    }
}

impl ScratchPool {
    /// Default cap on parked bytes (16 MiB) — proxy-training working sets
    /// are far below this, so eviction only triggers on pathological shapes.
    pub const DEFAULT_CAP_BYTES: usize = 16 << 20;

    /// An empty, enabled pool with the default byte cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool whose parked bytes never exceed `cap_bytes`.
    pub fn with_cap(cap_bytes: usize) -> Self {
        ScratchPool {
            cap_bytes,
            ..Self::default()
        }
    }

    /// A pool that never recycles: every `take*` allocates fresh and every
    /// `recycle*` drops. This is the pre-PR allocation behavior, kept for
    /// the reference engine mode the differential tests and the
    /// `proxy_train` bench compare against.
    pub fn disabled() -> Self {
        ScratchPool {
            disabled: true,
            ..Self::default()
        }
    }

    /// How many `take*` requests were served from recycled buffers.
    pub fn recycled(&self) -> usize {
        self.recycled
    }

    /// Bytes currently parked and reusable.
    pub fn pooled_bytes(&self) -> usize {
        self.pooled_bytes
    }

    /// The largest parked footprint the pool ever reached.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water_bytes
    }

    /// The eviction threshold for parked bytes.
    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// An empty buffer (length 0), reusing a pooled allocation when one is
    /// available. The caller fills it.
    pub fn take_raw(&mut self) -> Vec<f32> {
        match self.free.pop_back() {
            Some(mut buf) => {
                self.pooled_bytes -= bytes_of(&buf);
                buf.clear();
                self.recycled += 1;
                buf
            }
            None => Vec::new(),
        }
    }

    /// A buffer of `numel` zeros.
    pub fn take_zeroed(&mut self, numel: usize) -> Vec<f32> {
        let mut buf = self.take_raw();
        buf.resize(numel, 0.0);
        buf
    }

    /// A buffer holding a copy of `data`.
    pub fn take_copied(&mut self, data: &[f32]) -> Vec<f32> {
        let mut buf = self.take_raw();
        buf.extend_from_slice(data);
        buf
    }

    /// A zero tensor of `shape`, backed by a pooled buffer.
    pub fn take_tensor(&mut self, shape: &[usize]) -> Tensor {
        let numel = shape.iter().product();
        Tensor::from_vec(self.take_zeroed(numel), shape)
    }

    /// A copy of `t` backed by a pooled buffer.
    pub fn take_clone(&mut self, t: &Tensor) -> Tensor {
        Tensor::from_vec(self.take_copied(t.data()), t.shape())
    }

    /// Returns a raw buffer to the pool. Buffers larger than the cap are
    /// dropped; parking past the cap evicts the oldest parked buffers.
    pub fn recycle_buffer(&mut self, buf: Vec<f32>) {
        let bytes = bytes_of(&buf);
        if self.disabled || bytes == 0 || bytes > self.cap_bytes {
            return;
        }
        self.pooled_bytes += bytes;
        self.free.push_back(buf);
        while self.pooled_bytes > self.cap_bytes {
            let evicted = self.free.pop_front().expect("bytes imply buffers");
            self.pooled_bytes -= bytes_of(&evicted);
        }
        self.high_water_bytes = self.high_water_bytes.max(self.pooled_bytes);
    }

    /// Returns a tensor's backing buffer to the pool.
    pub fn recycle(&mut self, t: Tensor) {
        self.recycle_buffer(t.into_vec());
    }
}

/// Parked footprint of a buffer: its capacity, since that is what the
/// allocator actually holds (a slice would hide it, hence `&Vec`).
#[allow(clippy::ptr_arg)]
fn bytes_of(buf: &Vec<f32>) -> usize {
    buf.capacity() * std::mem::size_of::<f32>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_cycle_and_grow() {
        let mut pool = ScratchPool::new();
        let a = pool.take_zeroed(4);
        pool.recycle_buffer(a);
        let b = pool.take_zeroed(8);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&x| x == 0.0));
        assert_eq!(pool.recycled(), 1);
    }

    #[test]
    fn recycled_buffers_come_back_zeroed() {
        let mut pool = ScratchPool::new();
        let mut t = pool.take_tensor(&[2, 2]);
        t.data_mut().fill(7.0);
        pool.recycle(t);
        let again = pool.take_tensor(&[2, 2]);
        assert_eq!(again.data(), &[0.0; 4]);
    }

    #[test]
    fn copied_matches_source() {
        let mut pool = ScratchPool::new();
        let src = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let copy = pool.take_clone(&src);
        assert_eq!(copy, src);
    }

    #[test]
    fn disabled_pool_never_recycles() {
        let mut pool = ScratchPool::disabled();
        let a = pool.take_zeroed(4);
        pool.recycle_buffer(a);
        let _ = pool.take_zeroed(4);
        assert_eq!(pool.recycled(), 0);
        assert_eq!(pool.pooled_bytes(), 0);
    }

    #[test]
    fn pooled_bytes_track_parked_capacity() {
        let mut pool = ScratchPool::new();
        let a = pool.take_zeroed(16);
        let a_bytes = a.capacity() * 4;
        pool.recycle_buffer(a);
        assert_eq!(pool.pooled_bytes(), a_bytes);
        assert_eq!(pool.high_water_bytes(), a_bytes);
        let _ = pool.take_raw();
        assert_eq!(pool.pooled_bytes(), 0, "taking un-parks the bytes");
        assert_eq!(pool.high_water_bytes(), a_bytes, "high water sticks");
    }

    #[test]
    fn cap_evicts_oldest_buffers_first() {
        // Cap fits exactly two 100-element buffers.
        let mut pool = ScratchPool::with_cap(800);
        let mut bufs: Vec<Vec<f32>> = (0..3).map(|_| Vec::with_capacity(100)).collect();
        for (i, b) in bufs.iter_mut().enumerate() {
            b.resize(100, i as f32);
        }
        for b in bufs {
            pool.recycle_buffer(b);
        }
        assert!(pool.pooled_bytes() <= 800, "cap enforced");
        assert_eq!(pool.high_water_bytes(), 800, "high water before eviction");
        // LIFO: the most recently parked buffer (2.0-filled) comes back
        // first; the oldest (0.0-filled) was evicted.
        let hot = pool.take_raw();
        assert_eq!(hot.capacity(), 100);
        let warm = pool.take_raw();
        assert_eq!(warm.capacity(), 100);
        assert_eq!(pool.pooled_bytes(), 0);
        assert_eq!(pool.take_raw().capacity(), 0, "third buffer was evicted");
    }

    #[test]
    fn oversized_buffers_are_dropped_outright() {
        let mut pool = ScratchPool::with_cap(100);
        pool.recycle_buffer(vec![0.0; 1000]);
        assert_eq!(pool.pooled_bytes(), 0);
        assert_eq!(pool.high_water_bytes(), 0);
    }
}
