//! Discovered operators and Pareto-front extraction.

use syno_core::graph::PGraph;

/// One complete operator found by the search, with its proxy reward.
#[derive(Clone, Debug)]
pub struct Discovered {
    /// The complete pGraph.
    pub graph: PGraph,
    /// Proxy accuracy in `[0, 1]`.
    pub reward: f64,
}

/// A point on the latency/accuracy plane (lower latency and higher accuracy
/// are better).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TradeoffPoint {
    /// Latency in seconds.
    pub latency: f64,
    /// Accuracy in `[0, 1]`.
    pub accuracy: f64,
}

/// Indices of the Pareto-optimal points (minimal latency, maximal accuracy),
/// sorted by ascending latency — the Fig. 6 curves.
pub fn pareto_front(points: &[TradeoffPoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .latency
            .partial_cmp(&points[b].latency)
            .expect("finite latencies")
            .then(
                points[b]
                    .accuracy
                    .partial_cmp(&points[a].accuracy)
                    .expect("finite accuracies"),
            )
    });
    let mut front = Vec::new();
    let mut best_accuracy = f64::NEG_INFINITY;
    for idx in order {
        if points[idx].accuracy > best_accuracy {
            front.push(idx);
            best_accuracy = points[idx].accuracy;
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_keeps_nondominated_points() {
        let pts = vec![
            TradeoffPoint { latency: 1.0, accuracy: 0.9 },
            TradeoffPoint { latency: 0.5, accuracy: 0.8 },  // front
            TradeoffPoint { latency: 0.7, accuracy: 0.7 },  // dominated
            TradeoffPoint { latency: 0.3, accuracy: 0.6 },  // front
            TradeoffPoint { latency: 2.0, accuracy: 0.95 }, // front
        ];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![3, 1, 0, 4]);
    }

    #[test]
    fn single_point_is_its_own_front() {
        let pts = vec![TradeoffPoint { latency: 1.0, accuracy: 0.5 }];
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn empty_front() {
        assert!(pareto_front(&[]).is_empty());
    }
}
