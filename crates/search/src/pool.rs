//! A shareable candidate-evaluation worker pool.
//!
//! PR 3's evaluation pipeline spawned its worker threads *inside*
//! `run_scenario`, scoped to one scenario of one run — correct, but useless
//! to a daemon that multiplexes many concurrent search sessions: each
//! session would spin up its own threads and the host would oversubscribe.
//! [`EvalPool`] extracts that pool into a long-lived, cloneable handle that
//! any number of concurrent [`SearchRun`](crate::SearchRun)s can share
//! through [`SearchBuilder::eval_pool`](crate::SearchBuilder::eval_pool):
//! candidate evaluations from every session fan into one bounded queue and
//! one fixed set of worker threads.
//!
//! Jobs are opaque closures; each one evaluates a single candidate end to
//! end (store recall → proxy training → latency tuning) and reports its
//! outcome back to the owning session over that session's own channel, so
//! sharing the pool never mixes sessions' event streams and each session's
//! determinism contract (see [`crate::run`]) is untouched — only *which
//! thread* runs an evaluation changes, never what it computes or the order
//! in which its session applies it.
//!
//! The queue is a condvar-parked `VecDeque`: producers facing a full queue
//! and workers facing an empty one *park* and are woken by the state
//! change itself, never by a polling sleep. (The first cut busy-waited
//! 200µs at a time in `submit`, which both burned a core under backpressure
//! and would have polluted the `syno_pool_queue_wait_seconds` histogram
//! with our own polling latency.)
//!
//! Telemetry (all out-of-band, see `syno-telemetry`): queue depth gauge
//! `syno_pool_queue_depth`, submission counter `syno_pool_jobs_total`,
//! queue-wait histogram `syno_pool_queue_wait_seconds`, and per-worker
//! `syno_pool_worker_{busy,idle}_seconds{worker="<i>"}` histograms.
//!
//! Shutdown drains: [`EvalPool::shutdown`] closes the queue, lets the
//! workers finish everything already submitted, and joins them. Jobs
//! queued but never run are *dropped*, which the search layer turns into
//! typed `SearchEvent::CandidateSkipped` notifications via a drop guard —
//! a dead pool degrades loudly, not silently. Panics are the same story:
//! a job that panics never takes a worker thread down (the loop catches
//! the unwind and keeps serving), but the payload is *recorded*, counted
//! in `syno_pool_job_panics_total`, and re-surfaced by `shutdown` as a
//! typed [`SynoError::Eval`] — mirroring the contract of the tensor
//! layer's shard pool, where a worker panic resumes on the submitting
//! thread instead of evaporating.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use syno_core::error::SynoError;
use syno_telemetry::metrics::{labeled, DURATION_BUCKETS};
use syno_telemetry::{counter, gauge};

/// One queued evaluation: an opaque closure run on a worker thread.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// The queue proper — shared by producers and workers. Kept separate from
/// [`PoolShared`] so worker threads hold no reference to their own
/// `JoinHandle`s (which would keep the pool alive forever).
struct QueueCore {
    state: Mutex<QueueState>,
    /// Wakes producers parked on a full queue.
    space: Condvar,
    /// Wakes workers parked on an empty queue.
    ready: Condvar,
    capacity: usize,
}

struct QueueState {
    /// Pending jobs with their enqueue instants (for the queue-wait
    /// histogram).
    jobs: VecDeque<(Job, Instant)>,
    /// `false` once the pool is shut down; submissions then fail and
    /// workers exit after draining.
    open: bool,
    /// Rendered payloads of every job panic caught by a worker, in
    /// arrival order; drained and surfaced by [`EvalPool::shutdown`].
    panics: Vec<String>,
}

struct PoolShared {
    core: Arc<QueueCore>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
}

/// A fixed-size pool of evaluator threads shared across search runs.
///
/// Cloning is cheap (an `Arc` bump); all clones feed the same workers.
/// Dropping the last clone shuts the pool down and joins the workers after
/// draining everything already queued.
#[derive(Clone)]
pub struct EvalPool {
    shared: Arc<PoolShared>,
}

impl std::fmt::Debug for EvalPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalPool")
            .field("workers", &self.shared.worker_count)
            .field("alive", &self.is_alive())
            .finish()
    }
}

impl EvalPool {
    /// Spawns a pool of `workers` evaluator threads (at least one). The
    /// submission queue is bounded at twice the worker count, so producers
    /// feel backpressure instead of racing arbitrarily far ahead of the
    /// evaluators — the same pacing the per-scenario pipeline used.
    pub fn new(workers: usize) -> EvalPool {
        let worker_count = workers.max(1);
        let core = Arc::new(QueueCore {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(worker_count * 2),
                open: true,
                panics: Vec::new(),
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
            capacity: worker_count * 2,
        });
        let mut handles = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let core = Arc::clone(&core);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("syno-eval-{i}"))
                    .spawn(move || worker_loop(&core, i))
                    .expect("spawn evaluator thread"),
            );
        }
        EvalPool {
            shared: Arc::new(PoolShared {
                core,
                workers: Mutex::new(handles),
                worker_count,
            }),
        }
    }

    /// Number of evaluator threads the pool was built with.
    pub fn workers(&self) -> usize {
        self.shared.worker_count
    }

    /// `true` until [`shutdown`](EvalPool::shutdown) closes the queue.
    pub fn is_alive(&self) -> bool {
        self.shared.core.state.lock().expect("pool queue lock").open
    }

    /// Submits one evaluation job, parking while the bounded queue is
    /// full. Returns `false` when the pool has been shut down (the job is
    /// dropped, firing whatever drop guards it carries).
    pub(crate) fn submit(&self, job: Job) -> bool {
        let core = &self.shared.core;
        let mut state = core.state.lock().expect("pool queue lock");
        while state.open && state.jobs.len() >= core.capacity {
            state = core.space.wait(state).expect("pool queue lock");
        }
        if !state.open {
            return false;
        }
        state.jobs.push_back((job, Instant::now()));
        counter!("syno_pool_jobs_total").inc();
        gauge!("syno_pool_queue_depth").set(state.jobs.len() as i64);
        drop(state);
        core.ready.notify_one();
        true
    }

    /// Closes the queue, lets the workers drain everything already
    /// submitted, and joins them. Idempotent; later `submit`s return
    /// `false`.
    ///
    /// # Errors
    ///
    /// Returns [`SynoError::Eval`] when any job panicked on a worker over
    /// the pool's lifetime: the count plus the first rendered payload. A
    /// panicking job never killed its worker (the pool kept serving), but
    /// it does mean an evaluation vanished without reporting a result, and
    /// that must not evaporate at teardown. The recorded payloads are
    /// drained, so a second `shutdown` returns `Ok`.
    pub fn shutdown(&self) -> Result<(), SynoError> {
        close(&self.shared.core);
        let handles: Vec<_> = self
            .shared
            .workers
            .lock()
            .expect("pool workers lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        let panics = std::mem::take(
            &mut self
                .shared
                .core
                .state
                .lock()
                .expect("pool queue lock")
                .panics,
        );
        match panics.first() {
            None => Ok(()),
            Some(first) => Err(SynoError::Eval {
                what: format!(
                    "{} evaluation job(s) panicked on the shared pool; first: {first}",
                    panics.len()
                ),
            }),
        }
    }
}

/// Marks the queue closed and wakes every parked thread so producers fail
/// fast and workers drain then exit.
fn close(core: &QueueCore) {
    core.state.lock().expect("pool queue lock").open = false;
    core.space.notify_all();
    core.ready.notify_all();
}

impl Drop for PoolShared {
    fn drop(&mut self) {
        // Last handle gone: close the queue and detach the workers (they
        // exit after draining; joining from Drop could deadlock if a job
        // itself holds the last clone).
        close(&self.core);
    }
}

fn worker_loop(core: &QueueCore, worker: usize) {
    // Registered once per worker thread; observation is lock-free.
    let registry = syno_telemetry::metrics::global();
    let worker_label = worker.to_string();
    let wait_hist = registry.histogram("syno_pool_queue_wait_seconds", &DURATION_BUCKETS);
    let busy_hist = registry.histogram(
        &labeled("syno_pool_worker_busy_seconds", &[("worker", &worker_label)]),
        &DURATION_BUCKETS,
    );
    let idle_hist = registry.histogram(
        &labeled("syno_pool_worker_idle_seconds", &[("worker", &worker_label)]),
        &DURATION_BUCKETS,
    );
    loop {
        let idle_from = Instant::now();
        // The lock is held only across the pop, never the job, so workers
        // truly run concurrently.
        let mut state = core.state.lock().expect("pool queue lock");
        let (job, queued_at) = loop {
            if let Some(entry) = state.jobs.pop_front() {
                break entry;
            }
            if !state.open {
                return;
            }
            state = core.ready.wait(state).expect("pool queue lock");
        };
        gauge!("syno_pool_queue_depth").set(state.jobs.len() as i64);
        drop(state);
        core.space.notify_one();
        idle_hist.observe_duration(idle_from.elapsed());
        wait_hist.observe_duration(queued_at.elapsed());
        let busy_from = Instant::now();
        // Jobs carry their own panic isolation (the search layer wraps
        // every evaluation in `catch_unwind`); a panic that still escapes
        // must not take the whole pool down with it — but it must not
        // evaporate either: record the payload for `shutdown` to surface.
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)) {
            let rendered = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            counter!("syno_pool_job_panics_total").inc();
            core.state
                .lock()
                .expect("pool queue lock")
                .panics
                .push(format!("worker {worker}: {rendered}"));
        }
        busy_hist.observe_duration(busy_from.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_on_worker_threads_and_drain_on_shutdown() {
        let pool = EvalPool::new(3);
        assert_eq!(pool.workers(), 3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            assert!(pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })));
        }
        pool.shutdown().expect("no job panicked");
        assert_eq!(done.load(Ordering::SeqCst), 32, "shutdown drains the queue");
        assert!(!pool.is_alive());
        assert!(!pool.submit(Box::new(|| {})), "submissions after shutdown fail");
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool_but_surfaces_at_shutdown() {
        let pool = EvalPool::new(1);
        assert!(pool.submit(Box::new(|| panic!("job exploded"))));
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        assert!(pool.submit(Box::new(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })));
        let err = pool.shutdown().expect_err("the panic must be surfaced");
        let SynoError::Eval { what } = &err else {
            panic!("expected SynoError::Eval, got {err:?}");
        };
        assert!(what.contains("1 evaluation job(s) panicked"), "{what}");
        assert!(what.contains("job exploded"), "payload survives: {what}");
        assert_eq!(done.load(Ordering::SeqCst), 1, "later jobs still ran");
        // The payloads were drained: teardown is idempotent.
        pool.shutdown().expect("second shutdown is clean");
    }

    #[test]
    fn dropped_jobs_fire_their_drop_guards() {
        struct Guard(Arc<AtomicUsize>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let pool = EvalPool::new(1);
        pool.shutdown().expect("no job panicked");
        let dropped = Arc::new(AtomicUsize::new(0));
        let guard = Guard(Arc::clone(&dropped));
        assert!(!pool.submit(Box::new(move || {
            let _keep = &guard;
        })));
        assert_eq!(
            dropped.load(Ordering::SeqCst),
            1,
            "a refused job's captures are dropped, firing guards"
        );
    }

    #[test]
    fn a_full_queue_parks_producers_until_workers_drain_it() {
        // One worker, capacity 2: block the worker, overfill the queue
        // from a producer thread, then release the worker and watch the
        // parked producer complete without any polling.
        let pool = EvalPool::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        assert!(pool.submit(Box::new(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().expect("gate lock");
            while !*open {
                open = cv.wait(open).expect("gate lock");
            }
        })));
        let done = Arc::new(AtomicUsize::new(0));
        let producer = {
            let pool = pool.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for _ in 0..8 {
                    let done = Arc::clone(&done);
                    assert!(pool.submit(Box::new(move || {
                        done.fetch_add(1, Ordering::SeqCst);
                    })));
                }
            })
        };
        // Open the gate: the worker unblocks, the queue drains, and the
        // parked producer is woken by `space` notifications.
        {
            let (lock, cv) = &*gate;
            *lock.lock().expect("gate lock") = true;
            cv.notify_all();
        }
        producer.join().expect("producer thread");
        pool.shutdown().expect("no job panicked");
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }
}
