//! A shareable candidate-evaluation worker pool.
//!
//! PR 3's evaluation pipeline spawned its worker threads *inside*
//! `run_scenario`, scoped to one scenario of one run — correct, but useless
//! to a daemon that multiplexes many concurrent search sessions: each
//! session would spin up its own threads and the host would oversubscribe.
//! [`EvalPool`] extracts that pool into a long-lived, cloneable handle that
//! any number of concurrent [`SearchRun`](crate::SearchRun)s can share
//! through [`SearchBuilder::eval_pool`](crate::SearchBuilder::eval_pool):
//! candidate evaluations from every session fan into one bounded queue and
//! one fixed set of worker threads.
//!
//! Jobs are opaque closures; each one evaluates a single candidate end to
//! end (store recall → proxy training → latency tuning) and reports its
//! outcome back to the owning session over that session's own channel, so
//! sharing the pool never mixes sessions' event streams and each session's
//! determinism contract (see [`crate::run`]) is untouched — only *which
//! thread* runs an evaluation changes, never what it computes or the order
//! in which its session applies it.
//!
//! Shutdown drains: [`EvalPool::shutdown`] closes the queue, lets the
//! workers finish everything already submitted, and joins them. Jobs
//! queued but never run are *dropped*, which the search layer turns into
//! typed `SearchEvent::CandidateSkipped` notifications via a drop guard —
//! a dead pool degrades loudly, not silently.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One queued evaluation: an opaque closure run on a worker thread.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    /// `None` once the pool is shut down; submissions then fail.
    queue: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
}

/// A fixed-size pool of evaluator threads shared across search runs.
///
/// Cloning is cheap (an `Arc` bump); all clones feed the same workers.
/// Dropping the last clone shuts the pool down and joins the workers after
/// draining everything already queued.
#[derive(Clone)]
pub struct EvalPool {
    shared: Arc<PoolShared>,
}

impl std::fmt::Debug for EvalPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalPool")
            .field("workers", &self.shared.worker_count)
            .field("alive", &self.is_alive())
            .finish()
    }
}

impl EvalPool {
    /// Spawns a pool of `workers` evaluator threads (at least one). The
    /// submission queue is bounded at twice the worker count, so producers
    /// feel backpressure instead of racing arbitrarily far ahead of the
    /// evaluators — the same pacing the per-scenario pipeline used.
    pub fn new(workers: usize) -> EvalPool {
        let worker_count = workers.max(1);
        let (tx, rx) = sync_channel::<Job>(worker_count * 2);
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let rx = Arc::clone(&rx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("syno-eval-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn evaluator thread"),
            );
        }
        EvalPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(Some(tx)),
                workers: Mutex::new(handles),
                worker_count,
            }),
        }
    }

    /// Number of evaluator threads the pool was built with.
    pub fn workers(&self) -> usize {
        self.shared.worker_count
    }

    /// `true` until [`shutdown`](EvalPool::shutdown) closes the queue.
    pub fn is_alive(&self) -> bool {
        self.shared.queue.lock().expect("pool queue lock").is_some()
    }

    /// Submits one evaluation job, blocking while the bounded queue is
    /// full. Returns `false` when the pool has been shut down (the job is
    /// dropped, firing whatever drop guards it carries).
    pub(crate) fn submit(&self, job: Job) -> bool {
        // Take a clone of the sender under the lock, then block on the
        // bounded send *outside* it, so a full queue cannot deadlock a
        // concurrent shutdown.
        let Some(tx) = self.shared.queue.lock().expect("pool queue lock").clone() else {
            return false;
        };
        let mut job = job;
        loop {
            match tx.try_send(job) {
                Ok(()) => return true,
                Err(TrySendError::Full(back)) => {
                    job = back;
                    // The queue is bounded at 2× workers, so progress is
                    // imminent; a short sleep avoids burning a core.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    if self.shared.queue.lock().expect("pool queue lock").is_none() {
                        return false;
                    }
                }
                Err(TrySendError::Disconnected(_)) => return false,
            }
        }
    }

    /// Closes the queue, lets the workers drain everything already
    /// submitted, and joins them. Idempotent; later `submit`s return
    /// `false`.
    pub fn shutdown(&self) {
        let tx = self.shared.queue.lock().expect("pool queue lock").take();
        drop(tx); // workers exit once the queue drains
        let handles: Vec<_> = self
            .shared
            .workers
            .lock()
            .expect("pool workers lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for PoolShared {
    fn drop(&mut self) {
        // Last handle gone: close the queue and detach the workers (they
        // exit after draining; joining from Drop could deadlock if a job
        // itself holds the last clone).
        self.queue.lock().expect("pool queue lock").take();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // The mutex is held only across the blocking pop, never the job,
        // so workers truly run concurrently.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        // Jobs carry their own panic isolation (the search layer wraps
        // every evaluation in `catch_unwind`); a panic that still escapes
        // must not take the whole pool down with it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_on_worker_threads_and_drain_on_shutdown() {
        let pool = EvalPool::new(3);
        assert_eq!(pool.workers(), 3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            assert!(pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 32, "shutdown drains the queue");
        assert!(!pool.is_alive());
        assert!(!pool.submit(Box::new(|| {})), "submissions after shutdown fail");
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let pool = EvalPool::new(1);
        assert!(pool.submit(Box::new(|| panic!("job exploded"))));
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        assert!(pool.submit(Box::new(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })));
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dropped_jobs_fire_their_drop_guards() {
        struct Guard(Arc<AtomicUsize>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let pool = EvalPool::new(1);
        pool.shutdown();
        let dropped = Arc::new(AtomicUsize::new(0));
        let guard = Guard(Arc::clone(&dropped));
        assert!(!pool.submit(Box::new(move || {
            let _keep = &guard;
        })));
        assert_eq!(
            dropped.load(Ordering::SeqCst),
            1,
            "a refused job's captures are dropped, firing guards"
        );
    }
}
