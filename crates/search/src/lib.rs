//! # syno-search — MCTS-guided operator discovery and orchestration
//!
//! Implements §7.2 of the paper as a streaming, cancellable service layer:
//!
//! * [`mcts`] — UCT over the partial-pGraph MDP with shape-distance-feasible
//!   children, guided rollouts, early-stop hooks, and a pipelined
//!   evaluation mode ([`Mcts::search_async_while`]) that overlaps proxy
//!   training with tree search under a virtual loss;
//! * [`discovered`] — discovered-operator records and Pareto-front
//!   extraction (Fig. 6);
//! * [`run`] — the `SearchBuilder → SearchRun` driver: Algorithm 1's outer
//!   loop (synthesize → proxy-train → latency-tune) streaming
//!   [`SearchEvent`]s over a channel, with [`CancelToken`] cancellation,
//!   step/FLOP/wall-clock [`Budget`]s, concurrent multi-spec scenarios on a
//!   worker pool, and optional persistence: attach a `syno-store`
//!   [`Store`](syno_store::Store) via [`SearchBuilder::store`] for cross-run
//!   evaluation caching (`SearchEvent::CacheHit`) or
//!   [`SearchBuilder::resume_from`] to continue an interrupted run from its
//!   journaled checkpoints;
//! * [`coalesce`] — the in-flight single-flight table
//!   ([`CoalesceTable`]): concurrent runs that share one table (and one
//!   store) train each `(content_hash, contract)` exactly once, with
//!   followers replaying the leader's outcome bit-identically;
//! * [`orchestrator`] — the legacy blocking entry points, kept as documented
//!   thin wrappers over [`run`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coalesce;
pub mod discovered;
pub mod mcts;
pub mod orchestrator;
pub mod pool;
pub mod run;

pub use coalesce::CoalesceTable;
pub use discovered::{pareto_front, Discovered, TradeoffPoint};
pub use mcts::{EvalOutcome, EvalRequest, Mcts, MctsConfig, MctsStats};
pub use orchestrator::{evaluate_candidates, search_substitutions, SearchSettings};
pub use pool::EvalPool;
pub use run::{
    Budget, CancelToken, Candidate, PhaseNanos, PhaseWall, RunProgress, ScenarioProgress,
    SearchBuilder, SearchEvent, SearchReport, SearchRun, StopReason,
};
// The per-scenario proxy-family selector threaded through
// `SearchBuilder::proxy_family` (defined by the registry in `syno-nn`).
pub use syno_nn::{ExecPolicy, ProxyFamilyId};
