//! # syno-search — MCTS-guided operator discovery and orchestration
//!
//! Implements §7.2 of the paper:
//!
//! * [`mcts`] — UCT over the partial-pGraph MDP with shape-distance-feasible
//!   children, guided rollouts, and a transposition table;
//! * [`discovered`] — discovered-operator records and Pareto-front
//!   extraction (Fig. 6);
//! * [`orchestrator`] — Algorithm 1's outer loop: synthesize → train proxy →
//!   tune latency, with a worker pool for candidate evaluation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod discovered;
pub mod mcts;
pub mod orchestrator;

pub use discovered::{pareto_front, Discovered, TradeoffPoint};
pub use mcts::{Mcts, MctsConfig, MctsStats};
pub use orchestrator::{evaluate_candidates, search_substitutions, Candidate, SearchSettings};
