//! In-flight proxy-training coalescing: concurrent sessions that discover
//! the same `(content_hash, ScoreContract)` share ONE training.
//!
//! The store already dedups *across* runs — a journaled score is recalled
//! as a `CacheHit`. What it cannot dedup is the window while a training is
//! still in flight: two tenants racing through one daemon discover the
//! same candidate milliseconds apart, both probe the store before either
//! has journaled, and both pay for the training. [`CoalesceTable`] closes
//! that window. The first evaluator to claim a key becomes the **leader**
//! and trains; every concurrent evaluator of the same key becomes a
//! **follower**, parks on the table, and replays the leader's published
//! outcome — emitting the same `ProxyScored`/`LatencyTuned` (or
//! `CandidateSkipped`) events bit-for-bit, without journaling a second
//! copy or adding a second training's FLOPs.
//!
//! ## Determinism contract
//!
//! Claims are checked *before* the store probe, and outcomes are published
//! only for **fresh trainings** (a store recall releases the claim without
//! memoizing). Training is deterministic, so a follower's replayed
//! accuracy is bit-identical to what it would have computed itself — the
//! event stream of a coalesced session equals its uncoalesced serial run.
//! Store recalls still surface as `CacheHit` for every session, so the
//! warm-pass contract (zero trainings, all hits) is untouched: the serving
//! layer clears the table whenever it goes idle, which bounds a memoized
//! outcome's lifetime to the set of sessions that could actually have
//! raced the training.
//!
//! ## Liveness
//!
//! A follower can only exist after its leader's evaluation has *started*
//! (the claim happens inside `evaluate`), so the leader always holds a
//! worker and never waits on the table — no deadlock at any pool width.
//! A leader that dies without publishing (evaluator panic) removes its
//! pending claim on drop and wakes all followers, one of which re-claims
//! leadership.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use syno_core::error::SynoError;
use syno_store::ScoreContract;

/// What one proxy training produced, as published by the leader and
/// replayed by every follower.
#[derive(Clone, Debug)]
pub(crate) enum TrainOutcome {
    /// Training succeeded with this (already clamped) accuracy.
    Scored {
        /// The clamped proxy accuracy the leader computed.
        accuracy: f64,
    },
    /// Training failed; followers replay the identical typed skip.
    Failed(SynoError),
}

/// One slot of the table: a training in flight, or its published outcome.
#[derive(Clone, Debug)]
enum Slot {
    Pending,
    Done(TrainOutcome),
}

type Key = (u64, ScoreContract);

#[derive(Debug, Default)]
struct Inner {
    slots: Mutex<HashMap<Key, Slot>>,
    published: Condvar,
}

/// The shared single-flight table. Cheap to clone (an `Arc`); install one
/// per daemon (or per group of concurrent runs that share a store) via
/// `SearchBuilder::coalesce_table`.
#[derive(Clone, Debug, Default)]
pub struct CoalesceTable {
    inner: Arc<Inner>,
}

/// What `claim` resolved to.
#[derive(Debug)]
pub(crate) enum Claim {
    /// This evaluator trains; it must `publish` or the guard's drop will
    /// re-open the claim for the next waiter.
    Leader(LeaderGuard),
    /// Another evaluator already trained this key; replay its outcome.
    Ready(TrainOutcome),
}

/// The leader's obligation: publish an outcome, release on a store
/// recall, or (on drop without either) wake the followers to re-claim.
#[derive(Debug)]
pub(crate) struct LeaderGuard {
    inner: Arc<Inner>,
    key: Key,
    resolved: bool,
}

impl CoalesceTable {
    /// An empty table.
    pub fn new() -> CoalesceTable {
        CoalesceTable::default()
    }

    /// Claims `(id, contract)`. Returns [`Claim::Leader`] for the first
    /// caller; concurrent callers of the same key **block** until the
    /// leader publishes (or abandons), then return [`Claim::Ready`] — or
    /// inherit leadership if the previous leader abandoned.
    pub(crate) fn claim(&self, id: u64, contract: &ScoreContract) -> Claim {
        let key = (id, contract.clone());
        let mut slots = self.lock();
        loop {
            match slots.get(&key) {
                Some(Slot::Done(outcome)) => {
                    syno_telemetry::counter!("syno_search_coalesce_followers_total").inc();
                    return Claim::Ready(outcome.clone());
                }
                Some(Slot::Pending) => {
                    slots = self
                        .inner
                        .published
                        .wait(slots)
                        .expect("coalesce table lock");
                }
                None => {
                    slots.insert(key.clone(), Slot::Pending);
                    syno_telemetry::counter!("syno_search_coalesce_leaders_total").inc();
                    return Claim::Leader(LeaderGuard {
                        inner: Arc::clone(&self.inner),
                        key,
                        resolved: false,
                    });
                }
            }
        }
    }

    /// Drops every **published** outcome. Pending claims stay (their
    /// leaders are mid-training and own the removal). The serving layer
    /// calls this when its last live session ends, so memoized outcomes
    /// never leak into a later "warm" generation that should be served
    /// `CacheHit`s from the store instead.
    pub fn clear(&self) {
        self.lock().retain(|_, slot| matches!(slot, Slot::Pending));
    }

    /// Number of live slots (pending + published) — for tests and the
    /// daemon's status accounting.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no training is in flight and nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<Key, Slot>> {
        self.inner.slots.lock().expect("coalesce table lock")
    }
}

impl LeaderGuard {
    /// Publishes the training outcome: every parked follower (and any
    /// later claimant while the table stays uncleared) replays it.
    pub(crate) fn publish(mut self, outcome: TrainOutcome) {
        let mut slots = self.inner.slots.lock().expect("coalesce table lock");
        slots.insert(self.key.clone(), Slot::Done(outcome));
        self.resolved = true;
        drop(slots);
        self.inner.published.notify_all();
    }

    /// Releases the claim without memoizing — the store-recall path: the
    /// score was already journaled, so followers should re-probe the
    /// store and surface their own `CacheHit`.
    pub(crate) fn release(mut self) {
        self.resolved = true;
        self.abandon();
    }

    fn abandon(&self) {
        let mut slots = self.inner.slots.lock().expect("coalesce table lock");
        if matches!(slots.get(&self.key), Some(Slot::Pending)) {
            slots.remove(&self.key);
        }
        drop(slots);
        self.inner.published.notify_all();
    }
}

impl Drop for LeaderGuard {
    fn drop(&mut self) {
        if !self.resolved {
            // The leader died without publishing (evaluator panic):
            // re-open the claim so a waiting follower takes over.
            self.abandon();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn contract() -> ScoreContract {
        ScoreContract::new("vision", 4)
    }

    #[test]
    fn first_claim_leads_then_followers_replay_the_outcome() {
        let table = CoalesceTable::new();
        let guard = match table.claim(7, &contract()) {
            Claim::Leader(guard) => guard,
            Claim::Ready(_) => panic!("first claim must lead"),
        };
        let trainings = Arc::new(AtomicUsize::new(0));
        let follower = {
            let table = table.clone();
            let trainings = Arc::clone(&trainings);
            std::thread::spawn(move || match table.claim(7, &contract()) {
                Claim::Leader(_) => {
                    trainings.fetch_add(1, Ordering::SeqCst);
                    f64::NAN
                }
                Claim::Ready(TrainOutcome::Scored { accuracy }) => accuracy,
                Claim::Ready(TrainOutcome::Failed(_)) => panic!("leader succeeded"),
            })
        };
        guard.publish(TrainOutcome::Scored { accuracy: 0.625 });
        assert_eq!(follower.join().unwrap(), 0.625, "follower replays");
        assert_eq!(trainings.load(Ordering::SeqCst), 0, "exactly one leader");
        // The outcome stays memoized until cleared.
        assert!(matches!(
            table.claim(7, &contract()),
            Claim::Ready(TrainOutcome::Scored { .. })
        ));
        table.clear();
        assert!(table.is_empty());
        assert!(matches!(table.claim(7, &contract()), Claim::Leader(_)));
    }

    #[test]
    fn contracts_partition_the_key_space() {
        let table = CoalesceTable::new();
        let _wide = match table.claim(7, &ScoreContract::new("vision", 4)) {
            Claim::Leader(guard) => guard,
            Claim::Ready(_) => panic!("fresh key"),
        };
        // Same hash, different width or family: independent claims. (The
        // guards must stay live — dropping one abandons its pending slot.)
        let _narrow = match table.claim(7, &ScoreContract::new("vision", 1)) {
            Claim::Leader(guard) => guard,
            Claim::Ready(_) => panic!("fresh key"),
        };
        let _other = match table.claim(7, &ScoreContract::new("sequence", 4)) {
            Claim::Leader(guard) => guard,
            Claim::Ready(_) => panic!("fresh key"),
        };
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn abandoned_leader_hands_off_and_release_skips_the_memo() {
        let table = CoalesceTable::new();
        let guard = match table.claim(9, &contract()) {
            Claim::Leader(guard) => guard,
            Claim::Ready(_) => panic!("fresh key"),
        };
        let successor = {
            let table = table.clone();
            std::thread::spawn(move || matches!(table.claim(9, &contract()), Claim::Leader(_)))
        };
        drop(guard); // leader dies without publishing
        assert!(successor.join().unwrap(), "a waiter inherits leadership");

        // `release` (the store-recall path) also leaves no memo behind.
        match table.claim(9, &contract()) {
            Claim::Leader(guard) => guard.release(),
            Claim::Ready(_) => panic!("abandon must not memoize"),
        }
        assert!(table.is_empty());
    }

    #[test]
    fn failures_replay_as_typed_errors() {
        let table = CoalesceTable::new();
        let guard = match table.claim(3, &contract()) {
            Claim::Leader(guard) => guard,
            Claim::Ready(_) => panic!("fresh key"),
        };
        guard.publish(TrainOutcome::Failed(SynoError::proxy("diverged")));
        match table.claim(3, &contract()) {
            Claim::Ready(TrainOutcome::Failed(error)) => {
                assert_eq!(error, SynoError::proxy("diverged"));
            }
            other => panic!("expected the failure memo, got {other:?}"),
        }
    }
}
