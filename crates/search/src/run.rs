//! The streaming search driver: `SearchBuilder` → [`SearchRun`].
//!
//! Algorithm 1 is a long-running, interruptible pipeline (synthesize →
//! proxy-train → latency-tune). The seed exposed it as blocking free
//! functions returning bare `Vec`s; this module replaces them with a
//! builder-configured run that
//!
//! * streams [`SearchEvent`]s over a channel as the pipeline advances, in
//!   per-candidate order `CandidateFound → ProxyScored → LatencyTuned`;
//! * supports cooperative cancellation through a [`CancelToken`] and
//!   step/FLOP/wall-clock [`Budget`]s, returning the candidates discovered
//!   so far when stopped early;
//! * evaluates multiple [`OperatorSpec`] *scenarios* concurrently over a
//!   worker pool (the paper's parallelism across substitution sites);
//! * pipelines candidate evaluation *within* a scenario over
//!   [`SearchBuilder::eval_workers`] threads — the search-cost hot path,
//!   since complete candidates dominate wall-clock (§7.2's ≈0.1 GPU-hours
//!   of proxy training each).
//!
//! # Evaluation-pipeline determinism contract
//!
//! With `eval_workers(n)`, the MCTS submits each new distinct candidate to
//! a bounded queue and continues under a virtual loss while `n` evaluator
//! workers perform store lookup → proxy training → latency tuning
//! concurrently. Tree reads that would observe a not-yet-applied reward
//! block until it drains, so for a fixed seed the pipelined run makes
//! exactly the serial run's selection decisions: the discovered candidate
//! set (keyed by [`PGraph::content_hash`]) and each candidate's event
//! subsequence (`CandidateFound` → `ProxyScored`/`CacheHit` →
//! `LatencyTuned`) are identical to `eval_workers(1)`; only the
//! interleaving *across* candidates differs. (Wall-clock-dependent stop
//! conditions — cancellation, time/FLOP budgets — still cut runs at
//! timing-dependent points, exactly as they do across scenario workers.)
//!
//! The old `search_substitutions`/`evaluate_candidates` entry points remain
//! in [`crate::orchestrator`] as thin wrappers over this driver.

use crate::coalesce::{Claim, CoalesceTable, TrainOutcome};
use crate::discovered::Discovered;
use crate::mcts::{EvalOutcome, EvalRequest, Mcts, MctsConfig};
use crate::pool::EvalPool;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use syno_compiler::{CompilerKind, DType, Device, OperatorClass};
use syno_core::error::{SynoError, SynthError};
use syno_core::graph::PGraph;
use syno_core::spec::OperatorSpec;
use syno_core::synth::{Enumerator, SynthConfig};
use syno_core::var::VarTable;
use syno_nn::{resolve_family, ProxyConfig, ProxyFamilyId};
use syno_store::{CandidateSet, Checkpoint, OpKind, ScoreContract, Store};

/// A cloneable cooperative-cancellation handle.
///
/// All clones share one flag; any of them can [`cancel`](CancelToken::cancel)
/// a run, which stops between pipeline steps and salvages partial results.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Resource ceilings for one search run (all disabled by default).
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    /// Maximum MCTS iterations summed across all scenarios.
    pub max_steps: Option<u64>,
    /// Maximum cumulative naive FLOPs of proxy-scored candidates.
    pub max_flops: Option<u128>,
    /// Maximum wall-clock time for the whole run.
    pub max_wall: Option<Duration>,
}

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Every scenario ran its configured iterations to completion.
    Completed,
    /// A [`CancelToken`] fired.
    Cancelled,
    /// The step budget was exhausted.
    StepBudget,
    /// The FLOP budget was exhausted.
    FlopBudget,
    /// The wall-clock budget was exhausted.
    WallClock,
}

impl StopReason {
    /// Stable machine-readable name (used by the wire protocol and bench
    /// JSON); round-trips through [`from_name`](StopReason::from_name).
    pub fn name(self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::Cancelled => "cancelled",
            StopReason::StepBudget => "step-budget",
            StopReason::FlopBudget => "flop-budget",
            StopReason::WallClock => "wall-clock",
        }
    }

    /// Parses a [`name`](StopReason::name) back into the reason.
    pub fn from_name(name: &str) -> Option<StopReason> {
        [
            StopReason::Completed,
            StopReason::Cancelled,
            StopReason::StepBudget,
            StopReason::FlopBudget,
            StopReason::WallClock,
        ]
        .into_iter()
        .find(|r| r.name() == name)
    }
}

/// A fully evaluated candidate (one row of the paper's result tables).
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Index of the scenario (spec) this candidate substitutes.
    pub scenario: usize,
    /// The operator.
    pub graph: PGraph,
    /// Proxy accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Naive FLOPs under valuation 0.
    pub flops: u128,
    /// Parameter count under valuation 0.
    pub params: u128,
    /// Tuned latency per requested device, in input order.
    pub latencies: Vec<f64>,
}

/// One pipeline notification, streamed in emission order per scenario.
///
/// Marked `#[non_exhaustive]`: new pipeline stages (op-log events, derive
/// notifications) may add variants without a semver break, so downstream
/// matchers need a wildcard arm.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum SearchEvent {
    /// MCTS completed a rollout to a new distinct operator.
    CandidateFound {
        /// Scenario index.
        scenario: usize,
        /// Stable content hash identifying the candidate across events and
        /// store runs ([`PGraph::content_hash`]).
        id: u64,
        /// The operator.
        graph: PGraph,
    },
    /// The accuracy proxy finished training the candidate.
    ProxyScored {
        /// Scenario index.
        scenario: usize,
        /// Candidate id ([`PGraph::content_hash`]).
        id: u64,
        /// Proxy accuracy in `[0, 1]`.
        accuracy: f64,
    },
    /// The candidate's evaluation was recalled from the attached
    /// [`Store`] instead of recomputed: no proxy training ran, so no
    /// [`ProxyScored`](SearchEvent::ProxyScored) /
    /// [`LatencyTuned`](SearchEvent::LatencyTuned) follow — the carried
    /// [`Candidate`] is already final.
    CacheHit {
        /// Scenario index.
        scenario: usize,
        /// Candidate id ([`PGraph::content_hash`]).
        id: u64,
        /// The recalled, fully evaluated candidate record.
        candidate: Candidate,
    },
    /// The compiler simulator tuned the candidate on every device.
    LatencyTuned {
        /// Scenario index.
        scenario: usize,
        /// Candidate id ([`PGraph::content_hash`]).
        id: u64,
        /// The finished candidate record.
        candidate: Candidate,
    },
    /// A candidate could not be evaluated; carries the typed reason.
    CandidateSkipped {
        /// Scenario index.
        scenario: usize,
        /// Candidate id ([`PGraph::content_hash`]).
        id: u64,
        /// Why the candidate was dropped.
        error: SynoError,
    },
    /// The scenario's position was journaled to the attached [`Store`]; a
    /// later [`SearchBuilder::resume_from`] replays the evaluated prefix
    /// from the journal and continues past it.
    CheckpointWritten {
        /// Scenario index.
        scenario: usize,
        /// Iterations completed at the checkpoint.
        iterations: u64,
    },
    /// Periodic heartbeat per scenario.
    Progress {
        /// Scenario index.
        scenario: usize,
        /// Iterations finished in this scenario.
        iterations: u64,
        /// Iterations configured for this scenario.
        total_iterations: u64,
        /// Distinct candidates discovered so far in this scenario.
        discovered: u64,
    },
    /// A scenario finished (successfully or by early stop).
    ScenarioFinished {
        /// Scenario index.
        scenario: usize,
        /// Candidates this scenario contributed.
        candidates: usize,
    },
}

impl SearchEvent {
    /// The scenario this event belongs to.
    pub fn scenario(&self) -> usize {
        match *self {
            SearchEvent::CandidateFound { scenario, .. }
            | SearchEvent::ProxyScored { scenario, .. }
            | SearchEvent::CacheHit { scenario, .. }
            | SearchEvent::LatencyTuned { scenario, .. }
            | SearchEvent::CandidateSkipped { scenario, .. }
            | SearchEvent::CheckpointWritten { scenario, .. }
            | SearchEvent::Progress { scenario, .. }
            | SearchEvent::ScenarioFinished { scenario, .. } => scenario,
        }
    }
}

/// Final accounting of a run.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// All candidates, every scenario, sorted by descending accuracy.
    pub candidates: Vec<Candidate>,
    /// Why the run ended.
    pub stopped: StopReason,
    /// MCTS iterations executed across scenarios.
    pub steps: u64,
    /// Cumulative naive FLOPs of scored candidates.
    pub flops: u128,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Where the wall went, per phase (derived from the telemetry span
    /// timings; all zeros — pure `idle` — while telemetry is disabled).
    pub phases: PhaseWall,
}

/// Per-phase breakdown of a run's wall clock, derived from the same
/// measurements that feed the `syno-telemetry` span log. Strictly
/// out-of-band: reading or printing it never influences the search.
///
/// Phase time is summed across scenario workers and evaluator threads, so
/// with `eval_workers > 1` the phases can legitimately sum to more than
/// [`SearchReport::wall`]; `idle` is clamped at zero in that case.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseWall {
    /// Tree search: UCB selection/expansion plus rollout synthesis.
    pub synth: Duration,
    /// Proxy training (the `proxy_train` span).
    pub eval: Duration,
    /// Store traffic issued by the search: journal lookups and appends.
    pub store: Duration,
    /// Latency tuning (lowering + per-device compilation).
    pub tune: Duration,
    /// Wall clock not attributed to any phase (queue waits, event
    /// plumbing, scheduling) — or the whole wall while telemetry is off.
    pub idle: Duration,
}

impl PhaseWall {
    /// Assembles a breakdown from cumulative phase durations and the run's
    /// total wall clock.
    fn from_parts(synth: Duration, eval: Duration, store: Duration, tune: Duration, wall: Duration) -> PhaseWall {
        let accounted = synth + eval + store + tune;
        PhaseWall {
            synth,
            eval,
            store,
            tune,
            idle: wall.saturating_sub(accounted),
        }
    }

    /// The fraction of `wall` spent in `phase` (0.0 when `wall` is zero).
    pub fn fraction_of(phase: Duration, wall: Duration) -> f64 {
        if wall.is_zero() {
            0.0
        } else {
            phase.as_secs_f64() / wall.as_secs_f64()
        }
    }
}

impl std::fmt::Display for PhaseWall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "synth {:.1?} | proxy {:.1?} | store {:.1?} | tune {:.1?} | idle {:.1?}",
            self.synth, self.eval, self.store, self.tune, self.idle
        )
    }
}

/// Cumulative per-phase nanosecond counters, updated by the search as it
/// goes (relaxed atomics — reading never perturbs the run). Counters stay
/// 0 while telemetry is disabled.
#[derive(Debug, Default)]
pub struct PhaseNanos {
    synth: AtomicU64,
    eval: AtomicU64,
    store: AtomicU64,
    tune: AtomicU64,
}

impl PhaseNanos {
    pub(crate) fn add_synth_ns(&self, ns: u64) {
        self.synth.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn add_eval(&self, d: Duration) {
        self.eval.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_store(&self, d: Duration) {
        self.store.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn add_tune(&self, d: Duration) {
        self.tune.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Nanoseconds spent in tree search (selection + rollout synthesis).
    pub fn synth_ns(&self) -> u64 {
        self.synth.load(Ordering::Relaxed)
    }

    /// Nanoseconds spent in proxy training.
    pub fn eval_ns(&self) -> u64 {
        self.eval.load(Ordering::Relaxed)
    }

    /// Nanoseconds spent in store lookups and appends.
    pub fn store_ns(&self) -> u64 {
        self.store.load(Ordering::Relaxed)
    }

    /// Nanoseconds spent in latency tuning.
    pub fn tune_ns(&self) -> u64 {
        self.tune.load(Ordering::Relaxed)
    }

    /// Snapshot as a [`PhaseWall`] against a total wall duration.
    pub fn snapshot(&self, wall: Duration) -> PhaseWall {
        PhaseWall::from_parts(
            Duration::from_nanos(self.synth_ns()),
            Duration::from_nanos(self.eval_ns()),
            Duration::from_nanos(self.store_ns()),
            Duration::from_nanos(self.tune_ns()),
            wall,
        )
    }
}

/// Live progress counters for one scenario of a run.
///
/// All fields are atomics updated by the search as it goes; reading them
/// never locks or allocates, so a status endpoint can poll at any rate
/// without perturbing the run. Counters are monotonically non-decreasing
/// but individually relaxed: a snapshot taken mid-iteration may be one
/// event ahead on one counter and behind on another.
#[derive(Debug)]
pub struct ScenarioProgress {
    label: String,
    total_iterations: AtomicU64,
    iterations: AtomicU64,
    discovered: AtomicU64,
    candidates: AtomicU64,
    finished: AtomicBool,
}

impl ScenarioProgress {
    fn new(label: &str, total_iterations: u64) -> ScenarioProgress {
        ScenarioProgress {
            label: label.to_owned(),
            total_iterations: AtomicU64::new(total_iterations),
            iterations: AtomicU64::new(0),
            discovered: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            finished: AtomicBool::new(false),
        }
    }

    /// The scenario's label, as passed to [`SearchBuilder::scenario`].
    pub fn label(&self) -> &str {
        &self.label
    }

    /// MCTS iterations configured for this scenario.
    pub fn total_iterations(&self) -> u64 {
        self.total_iterations.load(Ordering::Relaxed)
    }

    /// MCTS iterations finished so far.
    pub fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Distinct candidates discovered (scored or recalled) so far.
    pub fn discovered(&self) -> u64 {
        self.discovered.load(Ordering::Relaxed)
    }

    /// Fully evaluated candidate records kept so far.
    pub fn candidates(&self) -> u64 {
        self.candidates.load(Ordering::Relaxed)
    }

    /// Has the scenario finished (successfully or by early stop)?
    pub fn finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }
}

/// Allocation-free live progress for a whole [`SearchRun`].
///
/// Obtained once from [`SearchRun::progress`] (an `Arc` the caller can
/// clone and poll from any thread); every accessor is a plain atomic load,
/// so high-frequency status polling — the serving daemon answers a status
/// frame per connected client — costs no locks, clones, or allocations.
#[derive(Debug)]
pub struct RunProgress {
    scenarios: Vec<ScenarioProgress>,
    steps: AtomicU64,
    phases: PhaseNanos,
}

impl RunProgress {
    /// Per-scenario counters, indexed like the events' `scenario` field.
    pub fn scenarios(&self) -> &[ScenarioProgress] {
        &self.scenarios
    }

    /// Total MCTS iterations executed across all scenarios.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Distinct candidates discovered across all scenarios.
    pub fn discovered(&self) -> u64 {
        self.scenarios.iter().map(ScenarioProgress::discovered).sum()
    }

    /// Have all scenarios finished?
    pub fn finished(&self) -> bool {
        self.scenarios.iter().all(ScenarioProgress::finished)
    }

    /// Live per-phase wall accounting (cumulative; zeros while telemetry
    /// is disabled). The daemon's status path reads this to report where a
    /// session's time is going without re-instrumenting anything.
    pub fn phases(&self) -> &PhaseNanos {
        &self.phases
    }
}

struct Scenario {
    label: String,
    vars: Arc<VarTable>,
    spec: OperatorSpec,
    synth: Option<SynthConfig>,
    /// The proxy family scoring this scenario's candidates. `None` until
    /// [`SearchBuilder::start`] resolves it (auto-detected from the spec,
    /// or the run-wide [`SearchBuilder::proxy_family`] override).
    family: Option<ProxyFamilyId>,
}

/// Configures and launches a streaming search run.
///
/// ```no_run
/// use std::sync::Arc;
/// use syno_core::prelude::*;
/// use syno_search::{SearchBuilder, SearchEvent};
/// # fn vars_and_spec() -> (Arc<VarTable>, OperatorSpec) { unimplemented!() }
///
/// let (vars, spec) = vars_and_spec();
/// let run = SearchBuilder::new()
///     .scenario("conv3x3", &vars, &spec)
///     .max_steps(100)
///     .start()
///     .unwrap();
/// for event in run.events() {
///     if let SearchEvent::LatencyTuned { candidate, .. } = event {
///         println!("{:.3} acc, {} flops", candidate.accuracy, candidate.flops);
///     }
/// }
/// ```
#[derive(Debug)]
pub struct SearchBuilder {
    scenarios: Vec<Scenario>,
    synth: Option<SynthConfig>,
    mcts: MctsConfig,
    proxy: ProxyConfig,
    devices: Vec<Device>,
    compiler: CompilerKind,
    workers: usize,
    eval_workers: usize,
    eval_pool: Option<EvalPool>,
    budget: Budget,
    cancel: CancelToken,
    progress_every: u64,
    store: Option<Arc<Store>>,
    resume: bool,
    proxy_family: Option<ProxyFamilyId>,
    coalesce: Option<CoalesceTable>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl Default for SearchBuilder {
    fn default() -> Self {
        SearchBuilder {
            scenarios: Vec::new(),
            synth: None,
            mcts: MctsConfig::default(),
            proxy: ProxyConfig::default(),
            devices: vec![Device::mobile_cpu()],
            compiler: CompilerKind::Tvm,
            workers: 2,
            eval_workers: 1,
            eval_pool: None,
            budget: Budget::default(),
            cancel: CancelToken::new(),
            progress_every: 10,
            store: None,
            resume: false,
            proxy_family: None,
            coalesce: None,
        }
    }
}

impl SearchBuilder {
    /// A builder with default settings and no scenarios.
    pub fn new() -> Self {
        SearchBuilder::default()
    }

    /// Adds a search scenario (one operator specification to substitute).
    /// Scenarios run concurrently over the worker pool.
    pub fn scenario(
        mut self,
        label: impl Into<String>,
        vars: &Arc<VarTable>,
        spec: &OperatorSpec,
    ) -> Self {
        self.scenarios.push(Scenario {
            label: label.into(),
            vars: Arc::clone(vars),
            spec: spec.clone(),
            synth: None,
            family: None,
        });
        self
    }

    /// Adds a scenario with its own synthesis configuration (overrides the
    /// run-wide [`synth`](SearchBuilder::synth) default for this spec).
    pub fn scenario_with_synth(
        mut self,
        label: impl Into<String>,
        vars: &Arc<VarTable>,
        spec: &OperatorSpec,
        synth: SynthConfig,
    ) -> Self {
        self.scenarios.push(Scenario {
            label: label.into(),
            vars: Arc::clone(vars),
            spec: spec.clone(),
            synth: Some(synth),
            family: None,
        });
        self
    }

    /// Run-wide synthesis budgets and parameter candidates (defaults to
    /// [`SynthConfig::auto`] with 4 steps per scenario).
    pub fn synth(mut self, config: SynthConfig) -> Self {
        self.synth = Some(config);
        self
    }

    /// MCTS settings (iterations here are per scenario).
    pub fn mcts(mut self, config: MctsConfig) -> Self {
        self.mcts = config;
        self
    }

    /// Accuracy-proxy settings.
    pub fn proxy(mut self, config: ProxyConfig) -> Self {
        self.proxy = config;
        self
    }

    /// Execution policy for every proxy-training tape the run creates:
    /// worker-thread count and deterministic reduction-tree width.
    ///
    /// Shorthand for setting `train.exec` on the [`proxy`][Self::proxy]
    /// config. `exec_threads` is value-invisible — seeded runs discover
    /// bit-identical candidate sets at any thread count — while
    /// `reduce_width` reshapes the reduction tree and is therefore part of
    /// the stored-score contract (see [`syno_nn::ExecPolicy`]).
    pub fn exec_policy(mut self, policy: syno_nn::ExecPolicy) -> Self {
        self.proxy.train.exec = policy;
        self
    }

    /// Forces every scenario onto one proxy family instead of auto-detecting
    /// per spec (4-D specs → vision, rank-1/2/3 → sequence/LM).
    ///
    /// [`start`](SearchBuilder::start) still validates each scenario's spec
    /// against the forced family and rejects incompatible ones with a typed
    /// [`SynoError::Proxy`], so the override cannot silently zero rewards.
    pub fn proxy_family(mut self, family: ProxyFamilyId) -> Self {
        self.proxy_family = Some(family);
        self
    }

    /// Devices to tune every candidate for.
    pub fn devices(mut self, devices: Vec<Device>) -> Self {
        self.devices = devices;
        self
    }

    /// Compiler used for the latency column.
    pub fn compiler(mut self, kind: CompilerKind) -> Self {
        self.compiler = kind;
        self
    }

    /// Worker threads for concurrent scenario evaluation.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Evaluator threads *within* each scenario (default 1).
    ///
    /// With `n > 1`, candidate evaluation (store lookup → proxy training →
    /// latency tuning) is decoupled from the tree search: new candidates
    /// flow through a bounded queue to `n` concurrent evaluator workers
    /// while MCTS keeps searching under a virtual loss. `n = 1` is the
    /// exact serial behavior, and seeded runs discover the identical
    /// candidate set either way — see the [module docs](self) for the
    /// determinism contract.
    pub fn eval_workers(mut self, workers: usize) -> Self {
        self.eval_workers = workers.max(1);
        self
    }

    /// Evaluates candidates on a shared, long-lived [`EvalPool`] instead of
    /// per-run threads.
    ///
    /// Many concurrent runs handed clones of one pool fan all their
    /// candidate evaluations into its single bounded queue and fixed worker
    /// set — the serving daemon's global evaluation queue. Each run keeps
    /// its own event stream and outcome channel, so the [module
    /// docs](self)' determinism contract holds per run: a pooled run
    /// discovers exactly the candidate set of a serial one. Overrides
    /// [`eval_workers`](SearchBuilder::eval_workers).
    ///
    /// If the pool is shut down while candidates are in flight, each
    /// affected candidate surfaces as a
    /// [`SearchEvent::CandidateSkipped`] carrying a typed
    /// [`SynoError::Eval`] — a dead evaluator degrades loudly, never by
    /// silently scoring 0.0.
    pub fn eval_pool(mut self, pool: EvalPool) -> Self {
        self.eval_pool = Some(pool);
        self
    }

    /// Shares an in-flight training [`CoalesceTable`] with other runs.
    ///
    /// Concurrent runs holding clones of one table evaluate each
    /// `(content_hash, ScoreContract)` **once**: the first evaluator
    /// trains (the leader), concurrent duplicates park and replay the
    /// leader's outcome as their own bit-identical
    /// [`SearchEvent::ProxyScored`]/[`SearchEvent::LatencyTuned`] (or
    /// [`SearchEvent::CandidateSkipped`]) events, without journaling a
    /// second copy or accruing a second training's FLOPs. The serving
    /// daemon installs one table across all tenant sessions; in-process
    /// callers can do the same for runs sharing a store. See the
    /// [`coalesce`](crate::coalesce) module docs for the determinism
    /// contract.
    pub fn coalesce_table(mut self, table: CoalesceTable) -> Self {
        self.coalesce = Some(table);
        self
    }

    /// Replaces the whole budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Caps total MCTS iterations across scenarios.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.budget.max_steps = Some(steps);
        self
    }

    /// Caps cumulative naive FLOPs of scored candidates.
    pub fn max_flops(mut self, flops: u128) -> Self {
        self.budget.max_flops = Some(flops);
        self
    }

    /// Caps wall-clock time.
    pub fn max_wall(mut self, wall: Duration) -> Self {
        self.budget.max_wall = Some(wall);
        self
    }

    /// Uses an externally created token so callers can cancel from another
    /// thread; [`SearchRun::cancel_token`] returns the same token.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Emits a [`SearchEvent::Progress`] every `n` iterations (default 10).
    pub fn progress_every(mut self, n: u64) -> Self {
        self.progress_every = n.max(1);
        self
    }

    /// Attaches a persistent candidate [`Store`].
    ///
    /// With a store attached the run (a) consults it before proxy-training
    /// each discovered candidate and emits [`SearchEvent::CacheHit`] with
    /// the recalled evaluation instead of recomputing, (b) journals every
    /// fresh candidate, proxy score, and tuned latency, and (c) journals a
    /// [`Checkpoint`] of each scenario's position every
    /// [`progress_every`](SearchBuilder::progress_every) iterations
    /// (emitting [`SearchEvent::CheckpointWritten`]).
    pub fn store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches an already-open repository handle shared with other runs.
    ///
    /// Identical to [`store`](SearchBuilder::store) — the explicit name
    /// marks the sharing intent: several in-process runs (or a run next to
    /// a serving daemon) hand clones of one `Arc<Store>` around instead of
    /// each opening a path, exactly like the daemon shares its store across
    /// tenant sessions. Combine with [`StoreBuilder::writer`] shards when
    /// the *processes* are separate.
    ///
    /// [`StoreBuilder::writer`]: syno_store::StoreBuilder::writer
    pub fn store_handle(self, store: Arc<Store>) -> Self {
        self.store(store)
    }

    /// Attaches `store` *and* resumes interrupted scenarios from their
    /// journaled [`Checkpoint`]s.
    ///
    /// A resumed scenario re-adopts the checkpointed MCTS seed (the
    /// binding field — it keeps the replay aligned even when scenario
    /// ordering, and hence the default per-index seed, changed), so its
    /// deterministic rollout stream replays the interrupted run exactly.
    /// The cheap MCTS iterations of the completed prefix are re-rolled to
    /// rebuild the (unserialized) tree, but **no evaluation is repeated**:
    /// successfully evaluated candidates come back as
    /// [`SearchEvent::CacheHit`]s and journaled proxy *failures* are
    /// skipped from their stored marker, so the prefix costs recall, not
    /// training. The run then continues past where it was killed, and the
    /// final candidate set matches an uninterrupted run of the same
    /// configuration. The checkpoint's `iterations`/`discovered` fields
    /// are informational (progress reporting).
    #[must_use = "resume_from only configures the builder; call .start() or .run() to launch"]
    pub fn resume_from(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self.resume = true;
        self
    }

    /// Validates the configuration and launches the run in the background.
    ///
    /// Each scenario is bound to a proxy family here: auto-detected from
    /// its spec ([`syno_nn::resolve_family`] — 4-D specs go to the vision
    /// family, rank-1/2/3 sequence specs to the sequence/LM family), or
    /// the run-wide [`proxy_family`](SearchBuilder::proxy_family) override
    /// re-validated against every spec.
    ///
    /// # Errors
    ///
    /// [`SynthError::InvalidConfig`] (as [`SynoError::Synth`]) when no
    /// scenario was added; [`SynthError::InvalidSpec`] when a scenario's
    /// shapes do not evaluate under its variable table;
    /// [`SynoError::Proxy`] when no registered proxy family can score a
    /// scenario's spec (the error names the scenario, the families tried,
    /// and the spec ranks seen) — such a search would burn its whole
    /// iteration budget backpropagating zero rewards, so it is rejected
    /// before it runs.
    pub fn start(mut self) -> Result<SearchRun, SynoError> {
        if self.scenarios.is_empty() {
            return Err(SynthError::InvalidConfig("no scenarios added".into()).into());
        }
        let forced = self.proxy_family;
        for s in &mut self.scenarios {
            s.spec.validate(&s.vars).map_err(|e| {
                SynthError::InvalidSpec(format!("scenario '{}': {e}", s.label))
            })?;
            // Bind the scenario to a proxy family up front. Every rollout's
            // reward would hit the same typed error per candidate, but only
            // after the search already spent its iterations — fail fast.
            let resolved = match forced {
                Some(family) => family
                    .family()
                    .validate(&s.spec, &s.vars, 0)
                    .map(|()| family),
                None => resolve_family(&s.spec, &s.vars, 0),
            };
            s.family = Some(resolved.map_err(|e| match e {
                SynoError::Proxy { reason } => {
                    SynoError::proxy(format!("scenario '{}': {reason}", s.label))
                }
                other => other,
            })?);
        }

        let (sender, receiver) = channel();
        let cancel = self.cancel.clone();
        let total = self.mcts.iterations as u64;
        let progress = Arc::new(RunProgress {
            scenarios: self
                .scenarios
                .iter()
                .map(|s| ScenarioProgress::new(&s.label, total))
                .collect(),
            steps: AtomicU64::new(0),
            phases: PhaseNanos::default(),
        });
        let run_progress = Arc::clone(&progress);
        let handle = thread::spawn(move || supervise(self, progress, sender));
        Ok(SearchRun {
            events: receiver,
            cancel,
            progress: run_progress,
            handle,
        })
    }

    /// Convenience: starts the run, drains (and drops) all events, and
    /// returns the final report.
    pub fn run(self) -> Result<SearchReport, SynoError> {
        let run = self.start()?;
        for _event in run.events() {}
        run.join()
    }
}

/// A live streaming search.
///
/// Obtain events through [`events`](SearchRun::events) (an iterator that
/// blocks until the next event and ends when the run finishes), cancel
/// through [`cancel`](SearchRun::cancel), and collect the final
/// [`SearchReport`] with [`join`](SearchRun::join).
#[derive(Debug)]
pub struct SearchRun {
    events: Receiver<SearchEvent>,
    cancel: CancelToken,
    progress: Arc<RunProgress>,
    handle: thread::JoinHandle<SearchReport>,
}

impl SearchRun {
    /// Blocking iterator over the run's events; ends when the run finishes.
    pub fn events(&self) -> impl Iterator<Item = SearchEvent> + '_ {
        self.events.iter()
    }

    /// Non-blocking: the next event if one is ready.
    pub fn try_next_event(&self) -> Option<SearchEvent> {
        self.events.try_recv().ok()
    }

    /// The run's cancellation token (same token every call).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Live progress counters, shared with the run.
    ///
    /// Returns a borrow of the run's one [`RunProgress`]; every read is an
    /// atomic load, so polling this — even per status frame per client —
    /// neither locks nor allocates. Clone the `Arc` to keep polling after
    /// [`join`](SearchRun::join).
    pub fn progress(&self) -> &Arc<RunProgress> {
        &self.progress
    }

    /// Requests cooperative cancellation; the run stops between pipeline
    /// steps and [`join`](SearchRun::join) returns partial results.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Waits for the run to finish and returns the report.
    ///
    /// # Errors
    ///
    /// [`SynoError::Worker`] when the supervisor thread panicked.
    pub fn join(self) -> Result<SearchReport, SynoError> {
        drop(self.events); // unblock senders if the caller never drained
        self.handle
            .join()
            .map_err(|payload| SynoError::worker(panic_message(&payload)))
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_owned()
    }
}

/// Shared run state across scenario workers.
struct Shared {
    budget: Budget,
    cancel: CancelToken,
    started: Instant,
    /// Live counters (steps, per-scenario progress) shared with the
    /// caller-facing [`RunProgress`] handle.
    progress: Arc<RunProgress>,
    flops: Mutex<u128>,
    stop: Mutex<Option<StopReason>>,
}

impl Shared {
    /// Records `reason` if the run is not already stopping.
    fn request_stop(&self, reason: StopReason) {
        let mut slot = self.stop.lock().expect("stop lock");
        if slot.is_none() {
            *slot = Some(reason);
        }
    }

    /// Checks cancellation and budgets; records and returns the stop reason.
    fn should_stop(&self) -> Option<StopReason> {
        if let Some(reason) = *self.stop.lock().expect("stop lock") {
            return Some(reason);
        }
        if self.cancel.is_cancelled() {
            self.request_stop(StopReason::Cancelled);
            return Some(StopReason::Cancelled);
        }
        if let Some(max) = self.budget.max_wall {
            if self.started.elapsed() >= max {
                self.request_stop(StopReason::WallClock);
                return Some(StopReason::WallClock);
            }
        }
        if let Some(max) = self.budget.max_steps {
            if self.progress.steps() >= max {
                self.request_stop(StopReason::StepBudget);
                return Some(StopReason::StepBudget);
            }
        }
        if let Some(max) = self.budget.max_flops {
            if *self.flops.lock().expect("flops lock") >= max {
                self.request_stop(StopReason::FlopBudget);
                return Some(StopReason::FlopBudget);
            }
        }
        None
    }
}

/// Runs the whole search on the supervisor thread: a pool of `workers`
/// threads pulls scenarios off a shared queue until done or stopped.
fn supervise(
    builder: SearchBuilder,
    progress: Arc<RunProgress>,
    sender: Sender<SearchEvent>,
) -> SearchReport {
    let SearchBuilder {
        scenarios,
        synth,
        mcts,
        proxy,
        devices,
        compiler,
        workers,
        eval_workers,
        eval_pool,
        budget,
        cancel,
        progress_every,
        store,
        resume,
        proxy_family: _, // already resolved into each scenario by start()
        coalesce,
    } = builder;

    let shared = Arc::new(Shared {
        budget,
        cancel,
        started: Instant::now(),
        progress,
        flops: Mutex::new(0),
        stop: Mutex::new(None),
    });
    let devices = Arc::new(devices);
    let queue: Mutex<Vec<(usize, Scenario)>> = {
        let mut q: Vec<(usize, Scenario)> = scenarios.into_iter().enumerate().collect();
        q.reverse(); // pop() serves scenario 0 first
        Mutex::new(q)
    };
    let results: Mutex<Vec<Candidate>> = Mutex::new(Vec::new());

    let worker_count = workers.max(1);
    thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| loop {
                if shared.should_stop().is_some() {
                    break;
                }
                let next = queue.lock().expect("queue lock").pop();
                let Some((index, scenario)) = next else {
                    break;
                };
                let found = run_scenario(
                    index,
                    &scenario,
                    &synth,
                    mcts,
                    &proxy,
                    &devices,
                    compiler,
                    eval_workers,
                    eval_pool.as_ref(),
                    progress_every,
                    store.as_ref(),
                    resume,
                    coalesce.as_ref(),
                    &shared,
                    &sender,
                );
                shared.progress.scenarios[index]
                    .finished
                    .store(true, Ordering::Relaxed);
                let mut all = results.lock().expect("results lock");
                let _ = sender.send(SearchEvent::ScenarioFinished {
                    scenario: index,
                    candidates: found.len(),
                });
                all.extend(found);
            });
        }
    });

    let mut candidates = results.into_inner().expect("results lock");
    candidates.sort_by(|a, b| {
        b.accuracy
            .partial_cmp(&a.accuracy)
            .expect("accuracies are clamped and finite")
            .then_with(|| a.scenario.cmp(&b.scenario))
    });
    let stopped = shared
        .stop
        .lock()
        .expect("stop lock")
        .unwrap_or(StopReason::Completed);
    let steps = shared.progress.steps();
    let flops = *shared.flops.lock().expect("flops lock");
    let wall = shared.started.elapsed();
    SearchReport {
        candidates,
        stopped,
        steps,
        flops,
        phases: shared.progress.phases.snapshot(wall),
        wall,
    }
}

/// Everything one candidate evaluation needs — shared by the serial reward
/// closure, the per-run pipelined evaluator workers, and jobs submitted to
/// a shared [`EvalPool`], so all modes run the byte-identical store lookup
/// → proxy training → latency tuning sequence.
///
/// Owns (or `Arc`-shares) every field so a clone can ride inside a
/// `'static` pool job that outlives the submitting stack frame.
#[derive(Clone)]
struct EvalContext {
    index: usize,
    /// The proxy family start() bound this scenario to; provides the
    /// train-and-score step and tags journaled scores.
    family: ProxyFamilyId,
    proxy: ProxyConfig,
    devices: Arc<Vec<Device>>,
    compiler: CompilerKind,
    store: Option<Arc<Store>>,
    coalesce: Option<CoalesceTable>,
    shared: Arc<Shared>,
    candidates: Arc<Mutex<Vec<Candidate>>>,
}

impl EvalContext {
    /// This scenario's live progress counters.
    fn progress(&self) -> &ScenarioProgress {
        &self.shared.progress.scenarios[self.index]
    }

    /// Evaluates one discovered candidate, emitting its
    /// `ProxyScored`/`CacheHit`/`LatencyTuned`/`CandidateSkipped` events on
    /// `sender` (the `CandidateFound` announcement is the caller's job, so
    /// it always precedes these regardless of worker scheduling), and
    /// returns the reward to backpropagate.
    fn evaluate(&self, id: u64, graph: &PGraph, sender: &Sender<SearchEvent>) -> f64 {
        let _eval_span = syno_telemetry::span!("evaluate", candidate = id);
        syno_telemetry::counter!("syno_search_candidates_total").inc();
        let index = self.index;
        let contract =
            ScoreContract::new(self.family.name(), self.proxy.train.exec.reduce_width as u32);
        // Single-flight first: with a shared coalescing table, the first
        // evaluator of this `(hash, contract)` becomes the leader and
        // proceeds (store probe, then training); concurrent duplicates
        // park here and replay the leader's freshly-trained outcome as
        // their own bit-identical events. A leader whose probe recalls a
        // journaled score `release`s the claim instead of publishing, so
        // followers re-probe the store and surface their own `CacheHit` —
        // warm-run semantics are untouched.
        let mut leader = match self.coalesce.as_ref().map(|t| t.claim(id, &contract)) {
            Some(Claim::Ready(outcome)) => {
                return self.replay_coalesced(id, graph, outcome, sender);
            }
            Some(Claim::Leader(guard)) => Some(guard),
            None => None,
        };
        // Store second: a journaled evaluation makes proxy training (and
        // usually latency tuning) unnecessary — the cross-run analogue
        // of the paper's canonical-form dedup within a run. A score is
        // only served when its journaled family tag matches the
        // scenario's family (content hashes cover the spec, so a mismatch
        // cannot happen through the normal pipeline — this guards against
        // hand-edited or cross-version journals) *and* it was computed
        // under this run's reduction-tree width (the width fixes the FP
        // summation order, so a score from another width is a different
        // value — re-evaluated, not served).
        if let Some(store) = self.store.as_deref() {
            let recalled = {
                let span = syno_telemetry::span!("store_lookup", candidate = id);
                let recalled = store.score_for_contract(id, &contract);
                self.shared.progress.phases.add_store(span.elapsed());
                recalled
            };
            if let Some(accuracy) = recalled {
                // NaN is the journaled-failure marker: this candidate's
                // proxy training failed in a previous run, and it fails
                // deterministically — skip without re-training.
                if accuracy.is_nan() {
                    if let Some(guard) = leader.take() {
                        guard.release();
                    }
                    syno_telemetry::counter!("syno_search_skips_total").inc();
                    let _ = sender.send(SearchEvent::CandidateSkipped {
                        scenario: index,
                        id,
                        error: SynoError::proxy("proxy failure recalled from store"),
                    });
                    return 0.0;
                }
                if let Some(guard) = leader.take() {
                    guard.release();
                }
                let device_names: Vec<&str> = self.devices.iter().map(|d| d.name).collect();
                let priced = match store.latencies(id, &device_names, self.compiler.name()) {
                    Some(latencies) => Ok(Candidate {
                        scenario: index,
                        graph: graph.clone(),
                        accuracy,
                        flops: syno_core::analysis::naive_flops(graph, 0).unwrap_or(u128::MAX),
                        params: syno_core::analysis::parameter_count(graph, 0)
                            .unwrap_or(u128::MAX),
                        latencies,
                    }),
                    // Scored in a previous run but tuned for different
                    // devices: reuse the accuracy, re-tune the latency.
                    None => {
                        let span = syno_telemetry::span!("latency_tune", candidate = id);
                        let priced =
                            price_candidate(index, graph, accuracy, &self.devices, self.compiler);
                        self.shared.progress.phases.add_tune(span.elapsed());
                        drop(span);
                        if let Ok(candidate) = &priced {
                            for (device, latency) in self.devices.iter().zip(&candidate.latencies)
                            {
                                let _ = store.put_latency(
                                    id,
                                    device.name,
                                    self.compiler.name(),
                                    *latency,
                                );
                            }
                        }
                        priced
                    }
                };
                match priced {
                    Ok(candidate) => {
                        // Counted only now, when the recall is actually
                        // served: stats.cache_hits == CacheHit events.
                        store.record_hit();
                        syno_telemetry::counter!("syno_search_cache_hits_total").inc();
                        // Counters advance before the event is emitted, so
                        // a status poll racing the stream never undercounts
                        // what the consumer already saw.
                        self.progress().discovered.fetch_add(1, Ordering::Relaxed);
                        self.progress().candidates.fetch_add(1, Ordering::Relaxed);
                        let _ = sender.send(SearchEvent::CacheHit {
                            scenario: index,
                            id,
                            candidate: candidate.clone(),
                        });
                        self.candidates
                            .lock()
                            .expect("candidates lock")
                            .push(candidate);
                    }
                    Err(error) => {
                        syno_telemetry::counter!("syno_search_skips_total").inc();
                        let _ = sender.send(SearchEvent::CandidateSkipped {
                            scenario: index,
                            id,
                            error,
                        });
                    }
                }
                return accuracy;
            }
        }

        // A proxy panic (e.g. an exotic candidate the tape einsum cannot
        // differentiate) must not take down the whole run: demote it to
        // a typed skip, like any other per-candidate failure.
        let scored = {
            let span = syno_telemetry::span!("proxy_train", candidate = id);
            // The acceptance counter for coalescing: incremented only when
            // a training actually runs, never on recalls or replays.
            syno_telemetry::counter!("syno_search_proxy_train_total").inc();
            let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.family.family().score(graph, 0, &self.proxy)
            }))
            .unwrap_or_else(|payload| Err(SynoError::proxy(panic_message(&payload))));
            self.shared.progress.phases.add_eval(span.elapsed());
            scored
        };
        match scored {
            Ok(acc) => {
                let accuracy = (acc as f64).clamp(0.0, 1.0);
                // Publish before journaling: parked followers replay from
                // the memo, not the store, so they never wait on I/O.
                if let Some(guard) = leader.take() {
                    guard.publish(TrainOutcome::Scored { accuracy });
                }
                if let Some(flops) = syno_core::analysis::naive_flops(graph, 0) {
                    let mut total = self.shared.flops.lock().expect("flops lock");
                    *total = total.saturating_add(flops);
                }
                let _ = sender.send(SearchEvent::ProxyScored {
                    scenario: index,
                    id,
                    accuracy,
                });
                if let Some(store) = self.store.as_deref() {
                    // Journal best-effort: a full disk degrades the run
                    // to cache-less, it does not kill it.
                    let span = syno_telemetry::span!("store_append", candidate = id);
                    let _ = store.put_candidate(id, graph);
                    let _ = store.put_score(id, accuracy, &contract);
                    self.shared.progress.phases.add_store(span.elapsed());
                }
                self.progress().discovered.fetch_add(1, Ordering::Relaxed);
                // Latency-tune immediately: the candidate is complete in
                // the stream, and a cancelled run keeps every candidate
                // it has announced.
                let tune_span = syno_telemetry::span!("latency_tune", candidate = id);
                let priced = price_candidate(index, graph, accuracy, &self.devices, self.compiler);
                self.shared.progress.phases.add_tune(tune_span.elapsed());
                drop(tune_span);
                match priced {
                    Ok(candidate) => {
                        if let Some(store) = self.store.as_deref() {
                            for (device, latency) in self.devices.iter().zip(&candidate.latencies)
                            {
                                let _ = store.put_latency(
                                    id,
                                    device.name,
                                    self.compiler.name(),
                                    *latency,
                                );
                            }
                        }
                        self.progress().candidates.fetch_add(1, Ordering::Relaxed);
                        let _ = sender.send(SearchEvent::LatencyTuned {
                            scenario: index,
                            id,
                            candidate: candidate.clone(),
                        });
                        self.candidates
                            .lock()
                            .expect("candidates lock")
                            .push(candidate);
                    }
                    Err(error) => {
                        syno_telemetry::counter!("syno_search_skips_total").inc();
                        let _ = sender.send(SearchEvent::CandidateSkipped {
                            scenario: index,
                            id,
                            error,
                        });
                    }
                }
                accuracy
            }
            Err(error) => {
                // Failures train deterministically too: followers replay
                // the identical typed skip instead of re-failing.
                if let Some(guard) = leader.take() {
                    guard.publish(TrainOutcome::Failed(error.clone()));
                }
                if let Some(store) = self.store.as_deref() {
                    // Journal the failure (NaN marker) so resumed runs
                    // skip this candidate instead of re-training it.
                    let span = syno_telemetry::span!("store_append", candidate = id);
                    let _ = store.put_candidate(id, graph);
                    let _ = store.put_score(id, f64::NAN, &contract);
                    self.shared.progress.phases.add_store(span.elapsed());
                }
                syno_telemetry::counter!("syno_search_skips_total").inc();
                let _ = sender.send(SearchEvent::CandidateSkipped {
                    scenario: index,
                    id,
                    error,
                });
                0.0
            }
        }
    }

    /// Replays a coalesced training outcome as this scenario's own events.
    ///
    /// Training is deterministic, so the replayed `ProxyScored` accuracy is
    /// bit-identical to what a fresh training would have produced; latency
    /// tuning is re-run locally (it is deterministic and per-scenario
    /// cheap). The leader already journaled the score and counted the
    /// training's FLOPs, so this path journals nothing and adds no FLOPs —
    /// one training, many observers.
    fn replay_coalesced(
        &self,
        id: u64,
        graph: &PGraph,
        outcome: TrainOutcome,
        sender: &Sender<SearchEvent>,
    ) -> f64 {
        let index = self.index;
        match outcome {
            TrainOutcome::Scored { accuracy } => {
                let _ = sender.send(SearchEvent::ProxyScored {
                    scenario: index,
                    id,
                    accuracy,
                });
                self.progress().discovered.fetch_add(1, Ordering::Relaxed);
                let tune_span = syno_telemetry::span!("latency_tune", candidate = id);
                let priced = price_candidate(index, graph, accuracy, &self.devices, self.compiler);
                self.shared.progress.phases.add_tune(tune_span.elapsed());
                drop(tune_span);
                match priced {
                    Ok(candidate) => {
                        self.progress().candidates.fetch_add(1, Ordering::Relaxed);
                        let _ = sender.send(SearchEvent::LatencyTuned {
                            scenario: index,
                            id,
                            candidate: candidate.clone(),
                        });
                        self.candidates
                            .lock()
                            .expect("candidates lock")
                            .push(candidate);
                    }
                    Err(error) => {
                        syno_telemetry::counter!("syno_search_skips_total").inc();
                        let _ = sender.send(SearchEvent::CandidateSkipped {
                            scenario: index,
                            id,
                            error,
                        });
                    }
                }
                accuracy
            }
            TrainOutcome::Failed(error) => {
                syno_telemetry::counter!("syno_search_skips_total").inc();
                let _ = sender.send(SearchEvent::CandidateSkipped {
                    scenario: index,
                    id,
                    error,
                });
                0.0
            }
        }
    }
}

/// Synthesize → proxy-train → latency-tune for one scenario, streaming
/// events and pricing each distinct candidate as soon as it is scored.
///
/// With a store attached, every evaluation consults the journal first
/// (cache hits skip proxy training entirely) and the scenario's position is
/// checkpointed alongside each progress heartbeat. In resume mode the
/// journaled checkpoint's seed is re-adopted so the deterministic rollout
/// stream replays the interrupted run.
///
/// With `eval_workers > 1` the evaluation sequence runs on scoped worker
/// threads fed by a bounded queue while the tree search continues under a
/// virtual loss (see the module docs for the determinism contract). The
/// store keeps its single-writer discipline: every worker shares the one
/// process-locked [`Store`], whose internal mutex serializes journal
/// appends.
#[allow(clippy::too_many_arguments)]
fn run_scenario(
    index: usize,
    scenario: &Scenario,
    synth: &Option<SynthConfig>,
    mcts_config: MctsConfig,
    proxy: &ProxyConfig,
    devices: &Arc<Vec<Device>>,
    compiler: CompilerKind,
    eval_workers: usize,
    eval_pool: Option<&EvalPool>,
    progress_every: u64,
    store: Option<&Arc<Store>>,
    resume: bool,
    coalesce: Option<&CoalesceTable>,
    shared: &Arc<Shared>,
    sender: &Sender<SearchEvent>,
) -> Vec<Candidate> {
    let config = scenario
        .synth
        .clone()
        .or_else(|| synth.clone())
        .unwrap_or_else(|| SynthConfig::auto(&scenario.vars, 4));
    let enumerator = Enumerator::new(config);
    let root = PGraph::new(Arc::clone(&scenario.vars), scenario.spec.clone());
    let fingerprint = scenario.spec.fingerprint(&scenario.vars);
    // Distinct seeds keep concurrent scenarios on distinct rollout streams;
    // a resumed scenario re-adopts its journaled seed so the deterministic
    // replay matches the interrupted run.
    let base_seed = mcts_config.seed.wrapping_add(index as u64);
    let resumed_from = if resume {
        store.and_then(|s| s.checkpoint(&scenario.label, fingerprint))
    } else {
        None
    };
    let seed = resumed_from.as_ref().map_or(base_seed, |cp| cp.seed);
    // Journal the run's lifecycle into the repository's operation log so
    // this scenario's candidate collection has lineage. On resume, the op
    // log tells the continuation what it is continuing from (the newest
    // prior operation for this scenario, if any).
    if let Some(store) = store {
        let op = match &resumed_from {
            Some(cp) => {
                let prior = store
                    .last_operation(&scenario.label, fingerprint)
                    .map_or_else(String::new, |op| format!(" after {op}"));
                store.log_operation(
                    OpKind::RunResumed,
                    &scenario.label,
                    fingerprint,
                    format!("seed {seed} from iteration {}{prior}", cp.iterations),
                )
            }
            None => store.log_operation(
                OpKind::RunStarted,
                &scenario.label,
                fingerprint,
                format!("seed {seed}"),
            ),
        };
        let _ = op; // best-effort, like every journal append on the hot path
    }
    let mut mcts = Mcts::new(enumerator, MctsConfig { seed, ..mcts_config });

    let total_iterations = mcts_config.iterations as u64;
    let candidates: Arc<Mutex<Vec<Candidate>>> = Arc::new(Mutex::new(Vec::new()));
    let progress = &shared.progress.scenarios[index];

    let eval = EvalContext {
        index,
        // A missing family is a programming error (an internal caller
        // bypassed start()); failing loudly beats silently burning the
        // iteration budget on a family that rejects every candidate.
        family: scenario
            .family
            .expect("start() resolves a proxy family for every scenario"),
        proxy: *proxy,
        devices: Arc::clone(devices),
        compiler,
        store: store.map(Arc::clone),
        coalesce: coalesce.cloned(),
        shared: Arc::clone(shared),
        candidates: Arc::clone(&candidates),
    };

    let keep_going = |iteration: u64| {
        if shared.should_stop().is_some() {
            return false;
        }
        shared.progress.steps.fetch_add(1, Ordering::Relaxed);
        progress.iterations.store(iteration + 1, Ordering::Relaxed);
        if iteration > 0 && iteration.is_multiple_of(progress_every) {
            let discovered = progress.discovered();
            let _ = sender.send(SearchEvent::Progress {
                scenario: index,
                iterations: iteration,
                total_iterations,
                discovered,
            });
            if let Some(store) = store {
                let written = store.put_checkpoint(&Checkpoint {
                    label: scenario.label.clone(),
                    spec_fingerprint: fingerprint,
                    seed,
                    iterations: iteration,
                    discovered,
                });
                if written.is_ok() {
                    let _ = store.log_operation(
                        OpKind::Checkpoint,
                        &scenario.label,
                        fingerprint,
                        format!("iteration {iteration}"),
                    );
                    let _ = sender.send(SearchEvent::CheckpointWritten {
                        scenario: index,
                        iterations: iteration,
                    });
                }
            }
        }
        true
    };

    if let Some(pool) = eval_pool {
        run_pooled(index, &mut mcts, &root, pool, &eval, sender, keep_going);
    } else if eval_workers <= 1 {
        // Serial mode: evaluate inline in the reward closure — the exact
        // pre-pipeline behavior.
        mcts.search_while(
            &root,
            |graph| {
                let id = graph.content_hash();
                let _ = sender.send(SearchEvent::CandidateFound {
                    scenario: index,
                    id,
                    graph: graph.clone(),
                });
                eval.evaluate(id, graph, sender)
            },
            keep_going,
        );
    } else {
        // Pipelined mode: `CandidateFound` is announced from the search
        // thread at submission (so it precedes the candidate's evaluation
        // events no matter how workers are scheduled), then the bounded
        // queue hands the operator to an evaluator worker. One worker owns
        // a candidate end to end, keeping its event subsequence in
        // pipeline order.
        let (request_tx, request_rx) = sync_channel::<EvalRequest>(eval_workers * 2);
        let request_rx = Mutex::new(request_rx);
        let (outcome_tx, outcome_rx) = channel::<EvalOutcome>();
        thread::scope(|scope| {
            for _ in 0..eval_workers {
                let outcome_tx = outcome_tx.clone();
                let worker_sender = sender.clone();
                let request_rx = &request_rx;
                let eval = &eval;
                scope.spawn(move || loop {
                    // The mutex is held only across the blocking pop, not
                    // the evaluation, so workers truly run concurrently.
                    let request = request_rx.lock().expect("eval queue lock").recv();
                    let Ok(request) = request else { break };
                    // Every popped request MUST resolve to an outcome: a
                    // panic that escaped the evaluation (e.g. from latency
                    // tuning) would otherwise lose its reward while the
                    // surviving workers keep the outcome channel open, and
                    // the engine's drain would wait forever. Demote it to
                    // a typed skip, like any other per-candidate failure.
                    let reward = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        eval.evaluate(request.id, &request.graph, &worker_sender)
                    }))
                    .unwrap_or_else(|payload| {
                        let _ = worker_sender.send(SearchEvent::CandidateSkipped {
                            scenario: index,
                            id: request.id,
                            error: SynoError::worker(panic_message(&payload)),
                        });
                        0.0
                    });
                    if outcome_tx
                        .send(EvalOutcome {
                            id: request.id,
                            reward,
                        })
                        .is_err()
                    {
                        break;
                    }
                });
            }
            drop(outcome_tx);
            mcts.search_async_while(
                &root,
                |request| {
                    let _ = sender.send(SearchEvent::CandidateFound {
                        scenario: index,
                        id: request.id,
                        graph: request.graph.clone(),
                    });
                    let id = request.id;
                    let accepted = request_tx.send(request).is_ok();
                    if !accepted {
                        // Every worker died (each only exits early when the
                        // outcome channel is gone). The engine degrades this
                        // candidate to skip semantics; surface that as a
                        // typed per-candidate error instead of a silent 0.0.
                        let _ = sender.send(SearchEvent::CandidateSkipped {
                            scenario: index,
                            id,
                            error: SynoError::eval(
                                "candidate evaluation lost: every evaluator worker died",
                            ),
                        });
                    }
                    accepted
                },
                &outcome_rx,
                keep_going,
            );
            // Closing the queue lets idle workers exit; the scope joins
            // them only after everything still in flight has drained.
            drop(request_tx);
        });
    }

    // Fold the engine-side timings (selection + rollout synthesis, both
    // measured inside the engine loop) into the run's phase accounting.
    shared
        .progress
        .phases
        .add_synth_ns(mcts.stats.select_ns + mcts.stats.rollout_ns);

    // Final checkpoint: pins the scenario's end position so resume_from
    // knows completed scenarios replay (all hits) rather than re-train.
    if let Some(store) = store {
        let iterations = progress.iterations();
        let written = store.put_checkpoint(&Checkpoint {
            label: scenario.label.clone(),
            spec_fingerprint: fingerprint,
            seed,
            iterations,
            discovered: progress.discovered(),
        });
        if written.is_ok() {
            let _ = store.log_operation(
                OpKind::Checkpoint,
                &scenario.label,
                fingerprint,
                format!("iteration {iterations} (final)"),
            );
            let _ = sender.send(SearchEvent::CheckpointWritten {
                scenario: index,
                iterations,
            });
        }
    }

    // Pool workers may still be tearing down their job closures (each
    // holds a clone of the Arc), but every evaluation that completed has
    // already pushed — the search does not return before its outcomes
    // drained — so taking the vector here loses nothing.
    let found = std::mem::take(&mut *candidates.lock().expect("candidates lock"));

    // Journal the run's candidate collection as a named set, keyed by the
    // scenario label: the unit the derive algebra (union / intersection /
    // difference of two runs' discoveries) operates on. The set is
    // canonicalized (sorted + deduped hashes), so the same discoveries
    // always journal the same bytes regardless of evaluation order.
    if let Some(store) = store {
        let hashes: Vec<u64> = found.iter().map(|c| c.graph.content_hash()).collect();
        let set = CandidateSet::new(
            scenario.label.clone(),
            format!("run:{}", scenario.label),
            hashes,
        );
        let _ = store.put_set(&set);
    }
    found
}

/// Sends the one [`EvalOutcome`] its candidate is owed, no matter how the
/// pool job ends.
///
/// Armed at submission; [`complete`](OutcomeGuard::complete) reports a real
/// reward. If the job is instead *dropped* unrun — the shared pool was shut
/// down, or refused the submission — `Drop` surfaces the loss as a typed
/// [`SynoError::Eval`] through the event stream and reports reward 0.0, so
/// the engine's drain never deadlocks and the tenant sees exactly which
/// candidates a dying evaluator took with it.
struct OutcomeGuard {
    scenario: usize,
    id: u64,
    outcome_tx: Sender<EvalOutcome>,
    events: Sender<SearchEvent>,
    done: bool,
}

impl OutcomeGuard {
    fn complete(mut self, reward: f64) {
        self.done = true;
        let _ = self.outcome_tx.send(EvalOutcome {
            id: self.id,
            reward,
        });
    }
}

impl Drop for OutcomeGuard {
    fn drop(&mut self) {
        if !self.done {
            let _ = self.events.send(SearchEvent::CandidateSkipped {
                scenario: self.scenario,
                id: self.id,
                error: SynoError::eval(
                    "candidate evaluation lost: the evaluator pool shut down before the \
                     candidate was evaluated",
                ),
            });
            let _ = self.outcome_tx.send(EvalOutcome {
                id: self.id,
                reward: 0.0,
            });
        }
    }
}

/// The shared-pool evaluation mode: candidates are packaged as `'static`
/// jobs and submitted to `pool`, whose workers serve every concurrent run.
///
/// The determinism contract is the scoped pipeline's, per run: this run's
/// engine blocks on *its own* outcome channel before any UCB read that
/// could observe an unsettled reward, and outcomes are keyed by candidate
/// id, so sharing workers with other runs changes only scheduling, never
/// this run's selection decisions.
fn run_pooled(
    index: usize,
    mcts: &mut Mcts,
    root: &PGraph,
    pool: &EvalPool,
    eval: &EvalContext,
    sender: &Sender<SearchEvent>,
    keep_going: impl FnMut(u64) -> bool,
) {
    let (outcome_tx, outcome_rx) = channel::<EvalOutcome>();
    mcts.search_async_while(
        root,
        |request| {
            let _ = sender.send(SearchEvent::CandidateFound {
                scenario: index,
                id: request.id,
                graph: request.graph.clone(),
            });
            let guard = OutcomeGuard {
                scenario: index,
                id: request.id,
                outcome_tx: outcome_tx.clone(),
                events: sender.clone(),
                done: false,
            };
            let eval = eval.clone();
            let events = sender.clone();
            let EvalRequest { id, graph } = request;
            // One job owns the candidate end to end, keeping its event
            // subsequence in pipeline order. A panic that escapes the
            // evaluation is demoted to a typed skip (the pool also guards
            // itself, but by then the outcome would be lost).
            pool.submit(Box::new(move || {
                let reward = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    eval.evaluate(id, &graph, &events)
                }))
                .unwrap_or_else(|payload| {
                    let _ = events.send(SearchEvent::CandidateSkipped {
                        scenario: index,
                        id,
                        error: SynoError::worker(panic_message(&payload)),
                    });
                    0.0
                });
                guard.complete(reward);
            }))
            // A refused submission drops the job, so the guard has already
            // sent the skip event and the 0.0 outcome (which the engine
            // discards as stale — it records the refusal itself).
        },
        &outcome_rx,
        keep_going,
    );
}

/// Tunes one scored candidate on every device.
pub(crate) fn price_candidate(
    scenario: usize,
    graph: &PGraph,
    accuracy: f64,
    devices: &[Device],
    compiler: CompilerKind,
) -> Result<Candidate, SynoError> {
    let flops = syno_core::analysis::naive_flops(graph, 0).unwrap_or(u128::MAX);
    let params = syno_core::analysis::parameter_count(graph, 0).unwrap_or(u128::MAX);
    // Profile once (lowering enumerates materialization plans — the
    // expensive part), then compile the shared profile per device.
    let profile = syno_compiler::profile_graph(graph, 0, OperatorClass::Novel, "candidate")?;
    let mut latencies = Vec::with_capacity(devices.len());
    for device in devices {
        let compiled = syno_compiler::compile(&profile, device, compiler, DType::F32);
        latencies.push(compiled.latency);
    }
    Ok(Candidate {
        scenario,
        graph: graph.clone(),
        accuracy,
        flops,
        params,
        latencies,
    })
}

/// Re-evaluates already-discovered operators (the legacy pricing path).
pub(crate) fn price_discovered(
    discovered: &[Discovered],
    devices: &[Device],
    compiler: CompilerKind,
    workers: usize,
) -> Vec<Candidate> {
    let results: Mutex<Vec<(usize, Candidate)>> = Mutex::new(Vec::new());
    let next: Mutex<usize> = Mutex::new(0);
    let worker_count = workers.max(1);
    thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| loop {
                let idx = {
                    let mut guard = next.lock().expect("index lock");
                    let idx = *guard;
                    *guard += 1;
                    idx
                };
                if idx >= discovered.len() {
                    break;
                }
                let d = &discovered[idx];
                let candidate = price_candidate(0, &d.graph, d.reward, devices, compiler)
                    .unwrap_or_else(|_| Candidate {
                        scenario: 0,
                        graph: d.graph.clone(),
                        accuracy: d.reward,
                        flops: syno_core::analysis::naive_flops(&d.graph, 0)
                            .unwrap_or(u128::MAX),
                        params: syno_core::analysis::parameter_count(&d.graph, 0)
                            .unwrap_or(u128::MAX),
                        latencies: vec![f64::INFINITY; devices.len()],
                    });
                results.lock().expect("results lock").push((idx, candidate));
            });
        }
    });
    let mut out = results.into_inner().expect("results lock");
    out.sort_by_key(|(idx, _)| *idx);
    out.into_iter().map(|(_, c)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use syno_core::prelude::*;
    use syno_nn::TrainConfig;

    /// The 1-D pooling spec PR 3 rejected at `start()`; the sequence
    /// family now scores it.
    fn pool_scenario() -> (Arc<VarTable>, OperatorSpec) {
        let mut vars = VarTable::new();
        let h = vars.declare("H", VarKind::Primary);
        let s = vars.declare("s", VarKind::Coefficient);
        vars.push_valuation(vec![(h, 16), (s, 2)]);
        let vars = vars.into_shared();
        let spec = OperatorSpec::new(
            TensorShape::new(vec![Size::var(h)]),
            TensorShape::new(vec![Size::var(h).div(&Size::var(s))]),
        );
        (vars, spec)
    }

    /// A `[B, T, C] → [B, T, C]` sequence spec — the LM-workload analogue
    /// of [`conv_scenario`], scored by the sequence/LM proxy family.
    fn lm_scenario() -> (Arc<VarTable>, OperatorSpec) {
        let mut vars = VarTable::new();
        let b = vars.declare("B", VarKind::Primary);
        let t = vars.declare("T", VarKind::Primary);
        let c = vars.declare("C", VarKind::Primary);
        let k = vars.declare("k", VarKind::Coefficient);
        vars.push_valuation(vec![(b, 4), (t, 4), (c, 8), (k, 2)]);
        let vars = vars.into_shared();
        let spec = OperatorSpec::new(
            TensorShape::new(vec![Size::var(b), Size::var(t), Size::var(c)]),
            TensorShape::new(vec![Size::var(b), Size::var(t), Size::var(c)]),
        );
        (vars, spec)
    }

    /// No registered family scores rank 5.
    fn unscorable_scenario() -> (Arc<VarTable>, OperatorSpec) {
        let mut vars = VarTable::new();
        let h = vars.declare("H", VarKind::Primary);
        vars.push_valuation(vec![(h, 4)]);
        let vars = vars.into_shared();
        let dims = vec![Size::var(h); 5];
        let spec = OperatorSpec::new(
            TensorShape::new(dims.clone()),
            TensorShape::new(dims),
        );
        (vars, spec)
    }

    /// A tiny 4-D conv-like scenario the vision proxy can actually score.
    fn conv_scenario() -> (Arc<VarTable>, OperatorSpec) {
        let mut vars = VarTable::new();
        let n = vars.declare("N", VarKind::Primary);
        let cin = vars.declare("Cin", VarKind::Primary);
        let cout = vars.declare("Cout", VarKind::Primary);
        let h = vars.declare("H", VarKind::Primary);
        let w = vars.declare("W", VarKind::Primary);
        let k = vars.declare("k", VarKind::Coefficient);
        vars.push_valuation(vec![(n, 4), (cin, 3), (cout, 4), (h, 8), (w, 8), (k, 3)]);
        let vars = vars.into_shared();
        let spec = OperatorSpec::new(
            TensorShape::new(vec![
                Size::var(n),
                Size::var(cin),
                Size::var(h),
                Size::var(w),
            ]),
            TensorShape::new(vec![
                Size::var(n),
                Size::var(cout),
                Size::var(h),
                Size::var(w),
            ]),
        );
        (vars, spec)
    }

    fn quick_proxy() -> ProxyConfig {
        ProxyConfig {
            train: TrainConfig {
                steps: 2,
                batch: 4,
                eval_batches: 1,
                ..TrainConfig::default()
            },
            ..ProxyConfig::default()
        }
    }

    #[test]
    fn builder_without_scenarios_is_a_typed_error() {
        let err = SearchBuilder::new().start().expect_err("must fail");
        assert!(matches!(
            err,
            SynoError::Synth(SynthError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_scenario_spec_is_a_typed_error() {
        let mut vars = VarTable::new();
        let h = vars.declare("H", VarKind::Primary);
        let vars = vars.into_shared(); // no valuations pushed
        let spec = OperatorSpec::new(
            TensorShape::new(vec![Size::var(h)]),
            TensorShape::new(vec![Size::var(h)]),
        );
        let err = SearchBuilder::new()
            .scenario("bad", &vars, &spec)
            .start()
            .expect_err("must fail");
        assert!(matches!(err, SynoError::Synth(SynthError::InvalidSpec(_))));
    }

    #[test]
    fn events_stream_in_pipeline_order_per_candidate() {
        let (vars, spec) = conv_scenario();
        let run = SearchBuilder::new()
            .scenario("conv", &vars, &spec)
            .mcts(MctsConfig {
                iterations: 25,
                seed: 2,
                ..MctsConfig::default()
            })
            .proxy(quick_proxy())
            .progress_every(5)
            .start()
            .unwrap();

        let events: Vec<SearchEvent> = run.events().collect();
        let mut seen_found = std::collections::HashSet::new();
        let mut seen_scored = std::collections::HashSet::new();
        let mut tuned = 0usize;
        for event in &events {
            match event {
                SearchEvent::CandidateFound { id, .. } => {
                    assert!(seen_found.insert(*id), "duplicate CandidateFound for {id}");
                }
                SearchEvent::ProxyScored { id, .. } => {
                    assert!(seen_found.contains(id), "scored before found");
                    seen_scored.insert(*id);
                }
                SearchEvent::LatencyTuned { id, candidate, .. } => {
                    assert!(seen_scored.contains(id), "tuned before scored");
                    assert!(candidate.graph.is_complete());
                    tuned += 1;
                }
                _ => {}
            }
        }
        assert!(tuned > 0, "conv scenario must produce tuned candidates");

        let report = run.join().unwrap();
        assert_eq!(report.stopped, StopReason::Completed);
        assert_eq!(report.candidates.len(), tuned);
        assert!(report.steps > 0);
    }

    #[test]
    fn cancellation_stops_early_with_partial_results() {
        let (vars, spec) = conv_scenario();
        let token = CancelToken::new();
        let run = SearchBuilder::new()
            .scenario("conv", &vars, &spec)
            .mcts(MctsConfig {
                iterations: 100_000,
                seed: 3,
                ..MctsConfig::default()
            })
            .proxy(quick_proxy())
            .cancel_token(token.clone())
            .start()
            .unwrap();

        // Cancel as soon as the first candidate is fully through the
        // pipeline; the run must wind down and keep what it announced.
        let mut tuned_before_cancel = 0usize;
        for event in run.events() {
            if let SearchEvent::LatencyTuned { .. } = event {
                tuned_before_cancel += 1;
                if !token.is_cancelled() {
                    token.cancel();
                }
            }
        }
        let report = run.join().unwrap();
        assert_eq!(report.stopped, StopReason::Cancelled);
        assert!(tuned_before_cancel >= 1);
        assert_eq!(report.candidates.len(), tuned_before_cancel);
        assert!(
            report.steps < 100_000,
            "cancellation must cut the run short ({} steps)",
            report.steps
        );
    }

    #[test]
    fn step_budget_bounds_total_iterations() {
        let (vars, spec) = conv_scenario();
        let report = SearchBuilder::new()
            .scenario("conv", &vars, &spec)
            .mcts(MctsConfig {
                iterations: 100_000,
                seed: 4,
                ..MctsConfig::default()
            })
            .proxy(quick_proxy())
            .max_steps(30)
            .run()
            .unwrap();
        assert_eq!(report.stopped, StopReason::StepBudget);
        assert!(report.steps >= 30 && report.steps < 40, "{}", report.steps);
    }

    /// A spec no proxy family can score (here rank 5) must be rejected at
    /// `start()` with a typed error naming the scenario, every family
    /// tried, and the rank seen — instead of burning the whole iteration
    /// budget on zero rewards.
    #[test]
    fn unscorable_spec_is_rejected_at_start() {
        let (vars, spec) = unscorable_scenario();
        let err = SearchBuilder::new()
            .scenario("weird", &vars, &spec)
            .start()
            .expect_err("rank-5 specs are unscorable and must fail fast");
        match err {
            SynoError::Proxy { reason } => {
                assert!(reason.contains("weird"), "names the scenario: {reason}");
                assert!(reason.contains("vision"), "names the vision family: {reason}");
                assert!(reason.contains("sequence"), "names the sequence family: {reason}");
                assert!(reason.contains("rank 5"), "states the rank seen: {reason}");
            }
            other => panic!("expected SynoError::Proxy, got {other:?}"),
        }
    }

    /// The `proxy_family` override is re-validated per scenario: forcing
    /// the vision family onto a 1-D spec fails fast instead of zeroing
    /// every reward.
    #[test]
    fn family_override_is_validated_against_the_spec() {
        let (vars, spec) = pool_scenario();
        let err = SearchBuilder::new()
            .scenario("pool", &vars, &spec)
            .proxy_family(syno_nn::ProxyFamilyId::Vision)
            .start()
            .expect_err("vision cannot score a 1-D spec");
        assert!(matches!(err, SynoError::Proxy { .. }), "{err}");

        // The matching override works like auto-detection.
        let run = SearchBuilder::new()
            .scenario("pool", &vars, &spec)
            .proxy_family(syno_nn::ProxyFamilyId::Sequence)
            .mcts(MctsConfig {
                iterations: 3,
                seed: 1,
                ..MctsConfig::default()
            })
            .proxy(quick_proxy())
            .start()
            .expect("sequence override accepts the 1-D spec");
        run.join().unwrap();
    }

    /// The headline of the family registry: the 1-D pooling spec that
    /// PR 3's `start()` rejected now runs search end-to-end and produces
    /// scored candidates through the sequence family.
    #[test]
    fn pool_scenario_now_searches_end_to_end() {
        let (vars, spec) = pool_scenario();
        let run = SearchBuilder::new()
            .scenario("pool", &vars, &spec)
            .mcts(MctsConfig {
                iterations: 12,
                seed: 2,
                ..MctsConfig::default()
            })
            .proxy(quick_proxy())
            .start()
            .expect("1-D specs are scorable now");
        let events: Vec<SearchEvent> = run.events().collect();
        let scored: Vec<f64> = events
            .iter()
            .filter_map(|e| match e {
                SearchEvent::ProxyScored { accuracy, .. } => Some(*accuracy),
                _ => None,
            })
            .collect();
        assert!(!scored.is_empty(), "pool search must score candidates");
        assert!(
            scored.iter().any(|&a| a > 0.0),
            "sequence proxy must produce nonzero rewards: {scored:?}"
        );
        let report = run.join().unwrap();
        assert_eq!(report.stopped, StopReason::Completed);
        assert!(!report.candidates.is_empty());
    }

    /// Vision and LM scenarios run side by side in one multi-scenario
    /// search, each scored by its own family.
    #[test]
    fn mixed_vision_and_lm_scenarios_run_concurrently() {
        let (conv_vars, conv_spec) = conv_scenario();
        let (lm_vars, lm_spec) = lm_scenario();
        let report = SearchBuilder::new()
            .scenario("conv", &conv_vars, &conv_spec)
            .scenario("lm", &lm_vars, &lm_spec)
            .mcts(MctsConfig {
                iterations: 10,
                seed: 5,
                ..MctsConfig::default()
            })
            .proxy(quick_proxy())
            .workers(2)
            .run()
            .unwrap();
        let scenarios: std::collections::HashSet<usize> =
            report.candidates.iter().map(|c| c.scenario).collect();
        assert!(
            scenarios.contains(&0) && scenarios.contains(&1),
            "both families must contribute candidates: {scenarios:?}"
        );
    }

    #[test]
    fn scenarios_run_concurrently_and_tag_results() {
        let (vars, spec) = conv_scenario();
        let report = SearchBuilder::new()
            .scenario("conv-a", &vars, &spec)
            .scenario("conv-b", &vars, &spec)
            .mcts(MctsConfig {
                iterations: 20,
                seed: 5,
                ..MctsConfig::default()
            })
            .proxy(quick_proxy())
            .workers(2)
            .run()
            .unwrap();
        let scenarios: std::collections::HashSet<usize> =
            report.candidates.iter().map(|c| c.scenario).collect();
        assert!(scenarios.contains(&0) && scenarios.contains(&1), "{scenarios:?}");
        for pair in report.candidates.windows(2) {
            assert!(pair[0].accuracy >= pair[1].accuracy);
        }
    }

    #[test]
    fn warm_store_serves_cache_hits_without_retraining() {
        let dir = std::env::temp_dir().join(format!("syno-run-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (vars, spec) = conv_scenario();
        let mcts = MctsConfig {
            iterations: 15,
            seed: 9,
            ..MctsConfig::default()
        };

        let store = Arc::new(syno_store::StoreBuilder::new(&dir).open().unwrap());
        let cold = SearchBuilder::new()
            .scenario("conv", &vars, &spec)
            .mcts(mcts)
            .proxy(quick_proxy())
            .store(Arc::clone(&store))
            .start()
            .unwrap();
        let mut cold_scored = std::collections::HashSet::new();
        let mut cold_checkpoints = 0usize;
        for event in cold.events() {
            match event {
                SearchEvent::ProxyScored { id, .. } => {
                    cold_scored.insert(id);
                }
                SearchEvent::CacheHit { .. } => panic!("cold run cannot hit the cache"),
                SearchEvent::CheckpointWritten { .. } => cold_checkpoints += 1,
                _ => {}
            }
        }
        let cold_report = cold.join().unwrap();
        assert!(!cold_scored.is_empty());
        assert!(cold_checkpoints > 0, "store runs must journal checkpoints");

        // Same scenario, same store, fresh process state: every evaluation
        // must come back from the journal — zero duplicate proxy trainings.
        drop(store);
        let store = Arc::new(syno_store::StoreBuilder::new(&dir).open().unwrap());
        let warm = SearchBuilder::new()
            .scenario("conv", &vars, &spec)
            .mcts(mcts)
            .proxy(quick_proxy())
            .store(Arc::clone(&store))
            .start()
            .unwrap();
        let mut hits = 0usize;
        for event in warm.events() {
            match event {
                SearchEvent::ProxyScored { id, .. } => {
                    assert!(
                        !cold_scored.contains(&id),
                        "candidate {id:#x} was re-trained despite a warm store"
                    );
                }
                SearchEvent::CacheHit { id, candidate, .. } => {
                    assert!(cold_scored.contains(&id), "hit for unknown candidate");
                    assert!(candidate.latencies.iter().all(|l| l.is_finite()));
                    hits += 1;
                }
                _ => {}
            }
        }
        let warm_report = warm.join().unwrap();
        assert!(hits >= 1, "warm run must recall from the store");
        assert_eq!(
            store.stats().cache_hits,
            hits as u64,
            "store hit counter and events agree"
        );
        // Deterministic replay: the warm run rediscovers the same set.
        let ids = |r: &SearchReport| {
            let mut v: Vec<u64> = r.candidates.iter().map(|c| c.graph.content_hash()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(&cold_report), ids(&warm_report));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wall_clock_budget_stops_the_run() {
        let (vars, spec) = conv_scenario();
        let report = SearchBuilder::new()
            .scenario("conv", &vars, &spec)
            .mcts(MctsConfig {
                iterations: 1_000_000,
                seed: 6,
                ..MctsConfig::default()
            })
            .proxy(quick_proxy())
            .max_wall(Duration::from_millis(200))
            .run()
            .unwrap();
        assert_eq!(report.stopped, StopReason::WallClock);
        assert!(report.wall < Duration::from_secs(30));
    }

    /// The event-kind subsequence each candidate produced, in stream order
    /// (pipeline heartbeats and scenario bookkeeping excluded).
    fn per_candidate_sequences(
        events: &[SearchEvent],
    ) -> std::collections::HashMap<u64, Vec<&'static str>> {
        let mut map: std::collections::HashMap<u64, Vec<&'static str>> =
            std::collections::HashMap::new();
        for event in events {
            let (id, kind) = match event {
                SearchEvent::CandidateFound { id, .. } => (*id, "found"),
                SearchEvent::ProxyScored { id, .. } => (*id, "scored"),
                SearchEvent::CacheHit { id, .. } => (*id, "hit"),
                SearchEvent::LatencyTuned { id, .. } => (*id, "tuned"),
                SearchEvent::CandidateSkipped { id, .. } => (*id, "skipped"),
                _ => continue,
            };
            map.entry(id).or_default().push(kind);
        }
        map
    }

    /// The determinism contract of the evaluation pipeline: with a fixed
    /// seed, `eval_workers(4)` discovers exactly the serial run's candidate
    /// set (by content hash, with the same rewards) and every candidate
    /// sees the same event subsequence — only cross-candidate interleaving
    /// may differ.
    #[test]
    fn eval_pipeline_matches_serial_run() {
        let (vars, spec) = conv_scenario();
        let run_with = |eval_workers: usize| {
            let run = SearchBuilder::new()
                .scenario("conv", &vars, &spec)
                .mcts(MctsConfig {
                    iterations: 25,
                    seed: 2,
                    ..MctsConfig::default()
                })
                .proxy(quick_proxy())
                .eval_workers(eval_workers)
                .start()
                .unwrap();
            let events: Vec<SearchEvent> = run.events().collect();
            let report = run.join().unwrap();
            (events, report)
        };

        let (serial_events, serial_report) = run_with(1);
        let (piped_events, piped_report) = run_with(4);

        assert_eq!(serial_report.stopped, StopReason::Completed);
        assert_eq!(piped_report.stopped, StopReason::Completed);
        assert_eq!(serial_report.steps, piped_report.steps);

        // Identical candidate sets, accuracies included.
        let ids = |r: &SearchReport| {
            let mut v: Vec<(u64, u64)> = r
                .candidates
                .iter()
                .map(|c| (c.graph.content_hash(), c.accuracy.to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        assert!(!serial_report.candidates.is_empty());
        assert_eq!(ids(&serial_report), ids(&piped_report));

        // Identical per-candidate event subsequences.
        let serial_seq = per_candidate_sequences(&serial_events);
        let piped_seq = per_candidate_sequences(&piped_events);
        assert_eq!(serial_seq, piped_seq);
        for (id, seq) in &piped_seq {
            assert_eq!(seq[0], "found", "candidate {id:#x} out of order: {seq:?}");
        }
    }

    /// Cancelling a pipelined run must drain in-flight evaluations
    /// cleanly: every announced candidate still reaches a terminal event
    /// (tuned or skipped) and the report keeps everything announced.
    #[test]
    fn eval_pipeline_cancellation_drains_in_flight() {
        let (vars, spec) = conv_scenario();
        let token = CancelToken::new();
        let run = SearchBuilder::new()
            .scenario("conv", &vars, &spec)
            .mcts(MctsConfig {
                iterations: 100_000,
                seed: 3,
                ..MctsConfig::default()
            })
            .proxy(quick_proxy())
            .eval_workers(3)
            .cancel_token(token.clone())
            .start()
            .unwrap();

        let mut events = Vec::new();
        for event in run.events() {
            if let SearchEvent::LatencyTuned { .. } = event {
                if !token.is_cancelled() {
                    token.cancel();
                }
            }
            events.push(event);
        }
        let report = run.join().unwrap();
        assert_eq!(report.stopped, StopReason::Cancelled);
        assert!(
            report.steps < 100_000,
            "cancellation must cut the run short ({} steps)",
            report.steps
        );

        let sequences = per_candidate_sequences(&events);
        assert!(!sequences.is_empty());
        let mut tuned = 0usize;
        for (id, seq) in &sequences {
            assert_eq!(seq[0], "found", "candidate {id:#x}: {seq:?}");
            let terminal = seq.last().unwrap();
            assert!(
                *terminal == "tuned" || *terminal == "skipped" || *terminal == "hit",
                "candidate {id:#x} was announced but never finished: {seq:?}"
            );
            if *terminal == "tuned" {
                tuned += 1;
            }
        }
        assert!(tuned >= 1);
        assert_eq!(
            report.candidates.len(),
            tuned,
            "a cancelled pipelined run keeps exactly what it finished"
        );
    }

    /// The shared-pool mode upholds the pipeline determinism contract:
    /// runs fed through one `EvalPool` — even two of them concurrently —
    /// discover exactly the serial run's candidate set with the same
    /// per-candidate event subsequences.
    #[test]
    fn shared_eval_pool_matches_serial_run() {
        let (vars, spec) = conv_scenario();
        let mcts = MctsConfig {
            iterations: 25,
            seed: 2,
            ..MctsConfig::default()
        };
        let serial = SearchBuilder::new()
            .scenario("conv", &vars, &spec)
            .mcts(mcts)
            .proxy(quick_proxy())
            .start()
            .unwrap();
        let serial_events: Vec<SearchEvent> = serial.events().collect();
        let serial_report = serial.join().unwrap();

        let pool = EvalPool::new(3);
        let start_pooled = || {
            SearchBuilder::new()
                .scenario("conv", &vars, &spec)
                .mcts(mcts)
                .proxy(quick_proxy())
                .eval_pool(pool.clone())
                .start()
                .unwrap()
        };
        // Two concurrent runs share the one pool — the daemon's shape.
        let run_a = start_pooled();
        let run_b = start_pooled();
        let events_a: Vec<SearchEvent> = run_a.events().collect();
        let events_b: Vec<SearchEvent> = run_b.events().collect();
        let report_a = run_a.join().unwrap();
        let report_b = run_b.join().unwrap();
        pool.shutdown().expect("no evaluation panicked");

        let ids = |r: &SearchReport| {
            let mut v: Vec<(u64, u64)> = r
                .candidates
                .iter()
                .map(|c| (c.graph.content_hash(), c.accuracy.to_bits()))
                .collect();
            v.sort_unstable();
            v
        };
        assert!(!serial_report.candidates.is_empty());
        assert_eq!(ids(&serial_report), ids(&report_a));
        assert_eq!(ids(&serial_report), ids(&report_b));
        let serial_seq = per_candidate_sequences(&serial_events);
        assert_eq!(serial_seq, per_candidate_sequences(&events_a));
        assert_eq!(serial_seq, per_candidate_sequences(&events_b));
    }

    /// A pool shut down mid-run must degrade loudly: every candidate whose
    /// evaluation was lost surfaces a typed `SynoError::Eval` through the
    /// event stream instead of silently scoring 0.0.
    #[test]
    fn dead_pool_surfaces_typed_eval_errors() {
        let (vars, spec) = conv_scenario();
        let pool = EvalPool::new(1);
        pool.shutdown().expect("no evaluation panicked");
        let run = SearchBuilder::new()
            .scenario("conv", &vars, &spec)
            .mcts(MctsConfig {
                iterations: 10,
                seed: 2,
                ..MctsConfig::default()
            })
            .proxy(quick_proxy())
            .eval_pool(pool)
            .start()
            .unwrap();
        let events: Vec<SearchEvent> = run.events().collect();
        let skips: Vec<&SynoError> = events
            .iter()
            .filter_map(|e| match e {
                SearchEvent::CandidateSkipped { error, .. } => Some(error),
                _ => None,
            })
            .collect();
        assert!(!skips.is_empty(), "a dead pool must report lost candidates");
        for error in &skips {
            assert!(
                matches!(error, SynoError::Eval { .. }),
                "lost evaluations carry SynoError::Eval, got {error:?}"
            );
        }
        // Every announced candidate still reaches a terminal event.
        for (id, seq) in per_candidate_sequences(&events) {
            assert_eq!(seq.first(), Some(&"found"), "candidate {id:#x}: {seq:?}");
            assert_eq!(seq.last(), Some(&"skipped"), "candidate {id:#x}: {seq:?}");
        }
        let report = run.join().unwrap();
        assert!(report.candidates.is_empty());
    }

    /// `SearchRun::progress` exposes live counters without cloning: the
    /// handle is the same `Arc` throughout, counters advance while the run
    /// streams, and the final values agree with the report.
    #[test]
    fn progress_counters_track_the_run_allocation_free() {
        let (vars, spec) = conv_scenario();
        let run = SearchBuilder::new()
            .scenario("conv", &vars, &spec)
            .mcts(MctsConfig {
                iterations: 20,
                seed: 2,
                ..MctsConfig::default()
            })
            .proxy(quick_proxy())
            .start()
            .unwrap();
        let progress = Arc::clone(run.progress());
        assert_eq!(progress.scenarios().len(), 1);
        assert_eq!(progress.scenarios()[0].label(), "conv");
        assert_eq!(progress.scenarios()[0].total_iterations(), 20);
        assert!(Arc::ptr_eq(&progress, run.progress()), "same Arc every poll");

        let mut tuned = 0u64;
        for event in run.events() {
            if let SearchEvent::LatencyTuned { .. } = event {
                tuned += 1;
                assert!(
                    progress.scenarios()[0].candidates() >= tuned,
                    "candidate counter advances with the stream"
                );
            }
        }
        let report = run.join().unwrap();
        assert!(progress.finished());
        assert_eq!(progress.steps(), report.steps);
        assert_eq!(
            progress.scenarios()[0].candidates() as usize,
            report.candidates.len()
        );
        assert!(progress.scenarios()[0].discovered() >= tuned);
    }
}
