//! End-to-end orchestration: Algorithm 1's outer loop.
//!
//! `Search(model, d_max)` in the paper extracts the operators of a backbone,
//! synthesizes substitutions with MCTS, trains each candidate for accuracy,
//! and tunes the survivors for latency. The orchestrator here runs the same
//! pipeline against the reproduction's substrates: the accuracy proxy of
//! `syno-nn` and the compiler simulator of `syno-compiler`. Candidate
//! evaluation fans out over a thread pool (the paper's distributed
//! multi-GPU search reduced to one process).

use crate::discovered::Discovered;
use crate::mcts::{Mcts, MctsConfig};
use parking_lot::Mutex;
use syno_compiler::{compile, CompilerKind, DType, Device, OperatorClass};
use syno_core::graph::PGraph;
use syno_core::spec::OperatorSpec;
use syno_core::synth::{Enumerator, SynthConfig};
use syno_core::var::VarTable;
use syno_nn::{operator_accuracy, ProxyConfig};
use std::sync::Arc;

/// A fully evaluated candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The operator.
    pub graph: PGraph,
    /// Proxy accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Naive FLOPs under valuation 0.
    pub flops: u128,
    /// Parameter count under valuation 0.
    pub params: u128,
    /// Tuned latency per requested device, in input order.
    pub latencies: Vec<f64>,
}

/// Orchestration settings.
#[derive(Clone, Debug)]
pub struct SearchSettings {
    /// Synthesis budgets and parameter candidates.
    pub synth: SynthConfig,
    /// MCTS settings.
    pub mcts: MctsConfig,
    /// Accuracy-proxy settings.
    pub proxy: ProxyConfig,
    /// Devices to tune for.
    pub devices: Vec<Device>,
    /// Compiler used for the latency column.
    pub compiler: CompilerKind,
    /// Worker threads for candidate evaluation.
    pub workers: usize,
}

/// Runs the full pipeline for one operator specification.
///
/// Returns candidates sorted by descending accuracy.
pub fn search_substitutions(
    vars: &Arc<VarTable>,
    spec: &OperatorSpec,
    settings: &SearchSettings,
) -> Vec<Candidate> {
    let enumerator = Enumerator::new(settings.synth.clone());
    let root = PGraph::new(Arc::clone(vars), spec.clone());
    let mut mcts = Mcts::new(enumerator, settings.mcts);

    // Reward = proxy accuracy (sequential inside MCTS: the tree is
    // sequential by nature; the paper parallelizes across substitution
    // sites, mirrored by callers invoking this per layer).
    let proxy = settings.proxy;
    let discovered = mcts.search(&root, |graph| operator_accuracy(graph, 0, &proxy) as f64);

    // Fan out latency evaluation across workers.
    evaluate_candidates(&discovered, settings)
}

/// Tunes every discovered operator on every device, in parallel.
pub fn evaluate_candidates(
    discovered: &[Discovered],
    settings: &SearchSettings,
) -> Vec<Candidate> {
    let results: Mutex<Vec<(usize, Candidate)>> = Mutex::new(Vec::new());
    let workers = settings.workers.max(1);
    let next: Mutex<usize> = Mutex::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let idx = {
                    let mut guard = next.lock();
                    let idx = *guard;
                    *guard += 1;
                    idx
                };
                if idx >= discovered.len() {
                    break;
                }
                let d = &discovered[idx];
                let flops = syno_core::analysis::naive_flops(&d.graph, 0).unwrap_or(u128::MAX);
                let params =
                    syno_core::analysis::parameter_count(&d.graph, 0).unwrap_or(u128::MAX);
                let latencies: Vec<f64> = match syno_compiler::profile_graph(
                    &d.graph,
                    0,
                    OperatorClass::Novel,
                    "candidate",
                ) {
                    Ok(profile) => settings
                        .devices
                        .iter()
                        .map(|dev| compile(&profile, dev, settings.compiler, DType::F32).latency)
                        .collect(),
                    Err(_) => vec![f64::INFINITY; settings.devices.len()],
                };
                results.lock().push((
                    idx,
                    Candidate {
                        graph: d.graph.clone(),
                        accuracy: d.reward,
                        flops,
                        params,
                        latencies,
                    },
                ));
            });
        }
    })
    .expect("worker threads join");

    let mut out = results.into_inner();
    out.sort_by_key(|(idx, _)| *idx);
    let mut candidates: Vec<Candidate> = out.into_iter().map(|(_, c)| c).collect();
    candidates.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).expect("finite"));
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use syno_core::prelude::*;
    use syno_nn::TrainConfig;

    #[test]
    fn pipeline_finds_and_prices_candidates() {
        // Tiny conv-like spec so the whole pipeline runs in seconds.
        let mut vars = VarTable::new();
        let n = vars.declare("N", VarKind::Primary);
        let cin = vars.declare("Cin", VarKind::Primary);
        let cout = vars.declare("Cout", VarKind::Primary);
        let h = vars.declare("H", VarKind::Primary);
        let w = vars.declare("W", VarKind::Primary);
        let k = vars.declare("k", VarKind::Coefficient);
        vars.push_valuation(vec![(n, 8), (cin, 3), (cout, 4), (h, 8), (w, 8), (k, 3)]);
        let vars = vars.into_shared();
        let spec = OperatorSpec::new(
            TensorShape::new(vec![
                Size::var(n),
                Size::var(cin),
                Size::var(h),
                Size::var(w),
            ]),
            TensorShape::new(vec![
                Size::var(n),
                Size::var(cout),
                Size::var(h),
                Size::var(w),
            ]),
        );
        let settings = SearchSettings {
            synth: SynthConfig::auto(&vars, 4),
            mcts: MctsConfig {
                iterations: 12,
                seed: 5,
                ..MctsConfig::default()
            },
            proxy: ProxyConfig {
                train: TrainConfig {
                    steps: 6,
                    batch: 8,
                    eval_batches: 1,
                    ..TrainConfig::default()
                },
                ..ProxyConfig::default()
            },
            devices: vec![Device::mobile_cpu(), Device::server_gpu()],
            compiler: CompilerKind::Tvm,
            workers: 2,
        };
        let candidates = search_substitutions(&vars, &spec, &settings);
        assert!(!candidates.is_empty(), "search must discover operators");
        for c in &candidates {
            assert!(c.graph.is_complete());
            assert_eq!(c.latencies.len(), 2);
            assert!(c.latencies.iter().all(|l| l.is_finite() && *l > 0.0));
            assert!(c.flops > 0);
        }
        // Sorted by accuracy.
        for pair in candidates.windows(2) {
            assert!(pair[0].accuracy >= pair[1].accuracy);
        }
    }
}
