//! Legacy blocking entry points for Algorithm 1's outer loop.
//!
//! These are **documented thin wrappers** over the streaming
//! [`SearchBuilder`](crate::run::SearchBuilder)/[`SearchRun`](crate::run::SearchRun)
//! driver, kept so early scripts keep compiling. New code should use the
//! builder API (or the `syno::Session` facade), which adds event streaming,
//! cancellation, budgets, and multi-scenario concurrency.

use crate::discovered::Discovered;
use crate::mcts::{Mcts, MctsConfig};
use crate::run::Candidate;
use std::sync::Arc;
use syno_compiler::{CompilerKind, Device};
use syno_core::graph::PGraph;
use syno_core::spec::OperatorSpec;
use syno_core::synth::{Enumerator, SynthConfig};
use syno_core::var::VarTable;
use syno_nn::{operator_accuracy, ProxyConfig};

/// Orchestration settings for the legacy one-spec entry point.
#[derive(Clone, Debug)]
pub struct SearchSettings {
    /// Synthesis budgets and parameter candidates.
    pub synth: SynthConfig,
    /// MCTS settings.
    pub mcts: MctsConfig,
    /// Accuracy-proxy settings.
    pub proxy: ProxyConfig,
    /// Devices to tune for.
    pub devices: Vec<Device>,
    /// Compiler used for the latency column.
    pub compiler: CompilerKind,
    /// Worker threads for candidate evaluation.
    pub workers: usize,
}

/// Runs the full pipeline for one operator specification, blocking until
/// done. Returns candidates sorted by descending accuracy.
///
/// Thin wrapper composing the same MCTS and pricing primitives as the
/// streaming `SearchRun` driver, with the seed's exact semantics: every
/// discovered operator appears in the result, and candidates that cannot
/// be profiled keep infinite latencies instead of being skipped (the
/// streaming API reports those as typed `CandidateSkipped` events
/// instead). New code should use the builder API for events, budgets, and
/// cancellation.
pub fn search_substitutions(
    vars: &Arc<VarTable>,
    spec: &OperatorSpec,
    settings: &SearchSettings,
) -> Vec<Candidate> {
    let enumerator = Enumerator::new(settings.synth.clone());
    let root = PGraph::new(Arc::clone(vars), spec.clone());
    let mut mcts = Mcts::new(enumerator, settings.mcts);
    let proxy = settings.proxy;
    let discovered = mcts.search(&root, |graph| operator_accuracy(graph, 0, &proxy) as f64);
    evaluate_candidates(&discovered, settings)
}

/// Tunes every already-discovered operator on every device, in parallel
/// over `settings.workers` threads.
///
/// Thin wrapper over the streaming driver's pricing stage; kept for callers
/// that run MCTS themselves. Candidates are returned sorted by descending
/// accuracy, with unpriceable operators pinned to infinite latency (the
/// seed behavior).
pub fn evaluate_candidates(
    discovered: &[Discovered],
    settings: &SearchSettings,
) -> Vec<Candidate> {
    let mut candidates = crate::run::price_discovered(
        discovered,
        &settings.devices,
        settings.compiler,
        settings.workers,
    );
    candidates.sort_by(|a, b| {
        b.accuracy
            .partial_cmp(&a.accuracy)
            .expect("accuracies are clamped and finite")
    });
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use syno_core::prelude::*;
    use syno_nn::TrainConfig;

    #[test]
    fn pipeline_finds_and_prices_candidates() {
        // Tiny conv-like spec so the whole pipeline runs in seconds.
        let mut vars = VarTable::new();
        let n = vars.declare("N", VarKind::Primary);
        let cin = vars.declare("Cin", VarKind::Primary);
        let cout = vars.declare("Cout", VarKind::Primary);
        let h = vars.declare("H", VarKind::Primary);
        let w = vars.declare("W", VarKind::Primary);
        let k = vars.declare("k", VarKind::Coefficient);
        vars.push_valuation(vec![(n, 8), (cin, 3), (cout, 4), (h, 8), (w, 8), (k, 3)]);
        let vars = vars.into_shared();
        let spec = OperatorSpec::new(
            TensorShape::new(vec![
                Size::var(n),
                Size::var(cin),
                Size::var(h),
                Size::var(w),
            ]),
            TensorShape::new(vec![
                Size::var(n),
                Size::var(cout),
                Size::var(h),
                Size::var(w),
            ]),
        );
        let settings = SearchSettings {
            synth: SynthConfig::auto(&vars, 4),
            mcts: MctsConfig {
                iterations: 12,
                seed: 5,
                ..MctsConfig::default()
            },
            proxy: ProxyConfig {
                train: TrainConfig {
                    steps: 6,
                    batch: 8,
                    eval_batches: 1,
                    ..TrainConfig::default()
                },
                ..ProxyConfig::default()
            },
            devices: vec![Device::mobile_cpu(), Device::server_gpu()],
            compiler: CompilerKind::Tvm,
            workers: 2,
        };
        let candidates = search_substitutions(&vars, &spec, &settings);
        assert!(!candidates.is_empty(), "search must discover operators");
        for c in &candidates {
            assert!(c.graph.is_complete());
            assert_eq!(c.latencies.len(), 2);
            assert!(c.latencies.iter().all(|l| l.is_finite() && *l > 0.0));
            assert!(c.flops > 0);
        }
        // Sorted by accuracy.
        for pair in candidates.windows(2) {
            assert!(pair[0].accuracy >= pair[1].accuracy);
        }
    }
}
