//! Monte Carlo Tree Search over partial pGraphs (§7.2).
//!
//! The search space is a Markov decision process: states are partial
//! pGraphs, actions are canonical primitive applications, and terminal
//! states are complete operators. Rewards come from the accuracy proxy
//! (FLOPs are a *hard* ceiling enforced by the synthesis budgets, per the
//! paper: "we set a hard upper limit for FLOPs and use accuracy as the
//! reward"). The implementation is UCT with a transposition table keyed by
//! the semantic state hash, shape-distance-feasible child filtering, and
//! guided rollouts.

use crate::discovered::Discovered;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use syno_core::distance::shape_distance;
use syno_core::graph::PGraph;
use syno_core::primitive::Action;
use syno_core::synth::{rollout, Enumerator, RolloutResult};

/// MCTS tunables.
#[derive(Clone, Copy, Debug)]
pub struct MctsConfig {
    /// Search iterations (select → expand → rollout → backprop).
    pub iterations: usize,
    /// UCB exploration constant.
    pub exploration: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig {
            iterations: 200,
            exploration: 1.2,
            seed: 0,
        }
    }
}

#[derive(Debug, Default)]
struct TreeNode {
    visits: u64,
    total_reward: f64,
    /// Feasible actions and the child node index once taken.
    children: Vec<(Action, Option<usize>)>,
    expanded: bool,
}

/// The tree searcher.
///
/// Nodes form a proper tree keyed by action path (coordinate identifiers
/// are history-dependent, so semantically-equal states from different
/// histories cannot share tree nodes; result deduplication still uses the
/// semantic state hash).
#[derive(Debug)]
pub struct Mcts {
    enumerator: Enumerator,
    config: MctsConfig,
    nodes: Vec<TreeNode>,
    /// Search statistics.
    pub stats: MctsStats,
}

/// Counters reported by a search run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MctsStats {
    /// Rollouts that reached a complete operator.
    pub completed_rollouts: u64,
    /// Rollouts that failed (dead end or over budget).
    pub failed_rollouts: u64,
    /// Distinct complete operators discovered.
    pub distinct_operators: u64,
}

impl Mcts {
    /// Creates a searcher around an enumerator (which carries the synthesis
    /// budgets and canonicalization rules).
    pub fn new(enumerator: Enumerator, config: MctsConfig) -> Self {
        Mcts {
            enumerator,
            config,
            nodes: vec![TreeNode::default()],
            stats: MctsStats::default(),
        }
    }

    /// Feasible canonical actions from a state: children whose shape
    /// distance still fits the remaining step budget (Algorithm 1 line 20).
    fn feasible_children(&self, state: &PGraph) -> Vec<Action> {
        let max_steps = self.enumerator.config().max_steps;
        if state.len() >= max_steps {
            return Vec::new();
        }
        let remaining = max_steps - state.len() - 1;
        self.enumerator
            .children(state)
            .into_iter()
            .filter(|action| {
                state
                    .apply(action)
                    .map(|child| {
                        let d = shape_distance(
                            &child.frontier_sizes(),
                            child.spec().input.dims(),
                            child.vars(),
                        );
                        (d as usize) <= remaining
                    })
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Runs the search from `root`, scoring complete operators with
    /// `reward` (in `[0, 1]`), and returns the distinct discoveries sorted
    /// by descending reward.
    pub fn search(
        &mut self,
        root: &PGraph,
        reward: impl FnMut(&PGraph) -> f64,
    ) -> Vec<Discovered> {
        self.search_while(root, reward, |_| true)
    }

    /// Like [`search`](Mcts::search), but consults `keep_going` with the
    /// upcoming iteration index before every iteration; returning `false`
    /// stops the search early and yields the discoveries so far. This is the
    /// cancellation/budget hook used by the streaming `SearchRun` driver.
    pub fn search_while(
        &mut self,
        root: &PGraph,
        mut reward: impl FnMut(&PGraph) -> f64,
        mut keep_going: impl FnMut(u64) -> bool,
    ) -> Vec<Discovered> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut found: HashMap<u64, Discovered> = HashMap::new();

        for iteration in 0..self.config.iterations {
            if !keep_going(iteration as u64) {
                break;
            }
            // Selection: walk down by UCB until an unexpanded node.
            let mut path: Vec<usize> = vec![0];
            let mut state = root.clone();
            let mut current = 0usize;
            loop {
                let exploration = self.config.exploration;
                if !self.nodes[current].expanded {
                    let children: Vec<(Action, Option<usize>)> = self
                        .feasible_children(&state)
                        .into_iter()
                        .map(|a| (a, None))
                        .collect();
                    let node = &mut self.nodes[current];
                    node.children = children;
                    node.expanded = true;
                    break;
                }
                let (children, parent_visits) = {
                    let node = &self.nodes[current];
                    (node.children.clone(), node.visits.max(1) as f64)
                };
                if children.is_empty() {
                    break; // dead end or terminal
                }
                // Pick an untried child first, else best UCB.
                let pick = if let Some(idx) = children.iter().position(|(_, c)| c.is_none()) {
                    idx
                } else {
                    let mut best = 0;
                    let mut best_score = f64::NEG_INFINITY;
                    for (idx, (_, child)) in children.iter().enumerate() {
                        let child_id = child.expect("all tried");
                        let c = &self.nodes[child_id];
                        let (v, q) = (c.visits.max(1) as f64, c.total_reward);
                        let ucb = q / v + exploration * (parent_visits.ln() / v).sqrt();
                        if ucb > best_score {
                            best_score = ucb;
                            best = idx;
                        }
                    }
                    best
                };
                let action = children[pick].0.clone();
                let child_state = state.apply(&action).expect("feasible child applies");
                let child_id = match children[pick].1 {
                    Some(id) => id,
                    None => {
                        let id = self.nodes.len();
                        self.nodes.push(TreeNode::default());
                        self.nodes[current].children[pick].1 = Some(id);
                        id
                    }
                };
                let is_new = !self.nodes[child_id].expanded;
                state = child_state;
                current = child_id;
                path.push(current);
                if is_new && self.nodes[current].visits == 0 {
                    break;
                }
            }

            // Rollout from the reached state.
            let value = match rollout(&mut rng, &self.enumerator, &state, true) {
                RolloutResult::Complete(graph) => {
                    self.stats.completed_rollouts += 1;
                    let hash = graph.state_hash();
                    if let Some(existing) = found.get(&hash) {
                        existing.reward
                    } else {
                        let r = reward(&graph).clamp(0.0, 1.0);
                        found.insert(
                            hash,
                            Discovered {
                                graph: *graph,
                                reward: r,
                            },
                        );
                        self.stats.distinct_operators += 1;
                        r
                    }
                }
                _ => {
                    self.stats.failed_rollouts += 1;
                    0.0
                }
            };

            // Backpropagation.
            for id in path {
                let node = &mut self.nodes[id];
                node.visits += 1;
                node.total_reward += value;
            }
            // Small jitter to the seed stream keeps rollouts diverse even
            // from identical states.
            let _ = rng.random::<u32>();
        }

        let mut results: Vec<Discovered> = found.into_values().collect();
        results.sort_by(|a, b| b.reward.partial_cmp(&a.reward).expect("finite rewards"));
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use syno_core::prelude::*;

    fn pool_root() -> (Enumerator, PGraph) {
        let mut vars = VarTable::new();
        let h = vars.declare("H", VarKind::Primary);
        let s = vars.declare("s", VarKind::Coefficient);
        vars.push_valuation(vec![(h, 16), (s, 2)]);
        let vars = vars.into_shared();
        let spec = OperatorSpec::new(
            TensorShape::new(vec![Size::var(h)]),
            TensorShape::new(vec![Size::var(h).div(&Size::var(s))]),
        );
        let config = SynthConfig::auto(&vars, 3);
        (Enumerator::new(config), PGraph::new(vars, spec))
    }

    #[test]
    fn mcts_discovers_operators() {
        let (enumerator, root) = pool_root();
        let mut mcts = Mcts::new(
            enumerator,
            MctsConfig {
                iterations: 60,
                ..MctsConfig::default()
            },
        );
        let results = mcts.search(&root, |_| 0.5);
        assert!(!results.is_empty(), "stats: {:?}", mcts.stats);
        assert!(results.iter().all(|d| d.graph.is_complete()));
        assert!(mcts.stats.completed_rollouts > 0);
    }

    #[test]
    fn rewards_guide_ranking() {
        let (enumerator, root) = pool_root();
        let mut mcts = Mcts::new(
            enumerator,
            MctsConfig {
                iterations: 80,
                seed: 3,
                ..MctsConfig::default()
            },
        );
        // Reward smaller graphs more.
        let results = mcts.search(&root, |g| 1.0 / (1.0 + g.len() as f64));
        assert!(!results.is_empty());
        for pair in results.windows(2) {
            assert!(pair[0].reward >= pair[1].reward);
        }
    }

    #[test]
    fn search_is_deterministic_under_seed() {
        let (enumerator, root) = pool_root();
        let run = |seed| {
            let mut mcts = Mcts::new(
                Enumerator::new(enumerator.config().clone()),
                MctsConfig {
                    iterations: 40,
                    seed,
                    ..MctsConfig::default()
                },
            );
            let mut r = mcts.search(&root, |g| 1.0 / (1.0 + g.len() as f64));
            r.sort_by_key(|d| d.graph.state_hash());
            r.iter().map(|d| d.graph.state_hash()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn distinct_operator_count_matches_results() {
        let (enumerator, root) = pool_root();
        let mut mcts = Mcts::new(
            enumerator,
            MctsConfig {
                iterations: 50,
                seed: 11,
                ..MctsConfig::default()
            },
        );
        let results = mcts.search(&root, |_| 0.1);
        assert_eq!(results.len() as u64, mcts.stats.distinct_operators);
    }
}
