//! Monte Carlo Tree Search over partial pGraphs (§7.2).
//!
//! The search space is a Markov decision process: states are partial
//! pGraphs, actions are canonical primitive applications, and terminal
//! states are complete operators. Rewards come from the accuracy proxy
//! (FLOPs are a *hard* ceiling enforced by the synthesis budgets, per the
//! paper: "we set a hard upper limit for FLOPs and use accuracy as the
//! reward"). The implementation is UCT with shape-distance-feasible child
//! filtering and guided rollouts.
//!
//! # Evaluation modes
//!
//! The searcher does not train proxies itself — it asks its caller for
//! rewards, in one of two modes:
//!
//! * **Serial** ([`search`](Mcts::search)/[`search_while`](Mcts::search_while)):
//!   the reward closure runs inline, blocking the tree between iterations.
//! * **Pipelined** ([`search_async_while`](Mcts::search_async_while)): new
//!   distinct candidates are *submitted* as [`EvalRequest`]s to an external
//!   evaluator pool and the iteration continues under a virtual loss; the
//!   matching [`EvalOutcome`]s are backpropagated as they drain. Tree reads
//!   that would observe a not-yet-applied reward block until it lands, so a
//!   seeded pipelined run makes exactly the selection decisions of the
//!   serial run and discovers the identical candidate set (see the module
//!   docs of [`crate::run`] for the determinism contract).

use crate::discovered::Discovered;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::Receiver;
use syno_core::distance::shape_distance;
use syno_core::graph::PGraph;
use syno_core::primitive::Action;
use syno_core::synth::{rollout, Enumerator, RolloutResult};

/// MCTS tunables.
#[derive(Clone, Copy, Debug)]
pub struct MctsConfig {
    /// Search iterations (select → expand → rollout → backprop).
    pub iterations: usize,
    /// UCB exploration constant.
    pub exploration: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig {
            iterations: 200,
            exploration: 1.2,
            seed: 0,
        }
    }
}

/// A candidate handed to an external evaluator by
/// [`Mcts::search_async_while`].
#[derive(Clone, Debug)]
pub struct EvalRequest {
    /// Stable candidate identity ([`PGraph::content_hash`]) — the same key
    /// the event stream and the `syno-store` journal use.
    pub id: u64,
    /// The complete operator to evaluate.
    pub graph: PGraph,
}

/// The evaluator's answer to an [`EvalRequest`].
#[derive(Clone, Copy, Debug)]
pub struct EvalOutcome {
    /// The candidate identity echoed from the request.
    pub id: u64,
    /// Reward in `[0, 1]` (clamped on application).
    pub reward: f64,
}

#[derive(Debug, Default)]
struct TreeNode {
    visits: u64,
    total_reward: f64,
    /// Feasible actions and the child node index once taken.
    children: Vec<(Action, Option<usize>)>,
    expanded: bool,
    /// Outstanding asynchronous evaluations whose reward has not been
    /// folded into `total_reward` yet. While non-zero, the node's visit
    /// count already includes those iterations (the *virtual loss*), so
    /// UCB reads must wait for the count to return to zero.
    pending: u32,
}

/// A submitted evaluation the tree is still waiting on: the operator (for
/// the final [`Discovered`] record) and every selection path that reached
/// it, each owed one reward backpropagation.
struct PendingEval {
    graph: PGraph,
    paths: Vec<Vec<usize>>,
}

/// How the engine obtains rewards: inline (serial) or from an external
/// evaluator pool (pipelined). Private — the public surface is the pair of
/// `search_while`/`search_async_while` entry points.
trait EvalBridge {
    /// Hands a new distinct candidate to the evaluator. Returns `false`
    /// when the evaluator is gone (the search degrades to zero rewards
    /// instead of deadlocking).
    fn submit(&mut self, request: EvalRequest) -> bool;
    /// A completed outcome, if one is ready right now.
    fn try_next(&mut self) -> Option<EvalOutcome>;
    /// Blocks until an outcome completes; `None` when the evaluator is
    /// gone and nothing further will arrive.
    fn wait_next(&mut self) -> Option<EvalOutcome>;
}

/// Serial mode: evaluate inline at submission, so every outcome is ready
/// before the iteration ends — the exact legacy `search_while` behavior.
struct SerialBridge<F> {
    reward: F,
    ready: VecDeque<EvalOutcome>,
}

impl<F: FnMut(&PGraph) -> f64> EvalBridge for SerialBridge<F> {
    fn submit(&mut self, request: EvalRequest) -> bool {
        let reward = (self.reward)(&request.graph);
        self.ready.push_back(EvalOutcome {
            id: request.id,
            reward,
        });
        true
    }

    fn try_next(&mut self) -> Option<EvalOutcome> {
        self.ready.pop_front()
    }

    fn wait_next(&mut self) -> Option<EvalOutcome> {
        self.ready.pop_front()
    }
}

/// Pipelined mode: submission goes through a caller-provided hook (which
/// typically announces the candidate and sends it down a bounded queue) and
/// outcomes drain from a channel fed by the evaluator pool.
struct ChannelBridge<'a, S> {
    submit: S,
    outcomes: &'a Receiver<EvalOutcome>,
}

impl<S: FnMut(EvalRequest) -> bool> EvalBridge for ChannelBridge<'_, S> {
    fn submit(&mut self, request: EvalRequest) -> bool {
        (self.submit)(request)
    }

    fn try_next(&mut self) -> Option<EvalOutcome> {
        self.outcomes.try_recv().ok()
    }

    fn wait_next(&mut self) -> Option<EvalOutcome> {
        self.outcomes.recv().ok()
    }
}

/// The tree searcher.
///
/// Nodes form a proper tree keyed by action path (coordinate identifiers
/// are history-dependent, so semantically-equal states from different
/// histories cannot share tree nodes; result deduplication uses the stable
/// content hash, the same key as the event stream and the store journal).
#[derive(Debug)]
pub struct Mcts {
    enumerator: Enumerator,
    config: MctsConfig,
    nodes: Vec<TreeNode>,
    /// Search statistics.
    pub stats: MctsStats,
}

/// Counters reported by a search run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MctsStats {
    /// Rollouts that reached a complete operator.
    pub completed_rollouts: u64,
    /// Rollouts that failed (dead end or over budget).
    pub failed_rollouts: u64,
    /// Distinct complete operators discovered (keyed by
    /// [`PGraph::content_hash`], so this agrees with the per-candidate
    /// event stream and the store journal).
    pub distinct_operators: u64,
    /// Nanoseconds spent in UCB selection/expansion (excluding time parked
    /// waiting for evaluator outcomes). Telemetry-derived: stays 0 while
    /// telemetry is disabled (`syno_telemetry::set_enabled`), and is
    /// strictly out-of-band — it never influences the search.
    pub select_ns: u64,
    /// Nanoseconds spent in rollouts (synthesis proper). Telemetry-derived
    /// like [`select_ns`](MctsStats::select_ns).
    pub rollout_ns: u64,
}

impl Mcts {
    /// Creates a searcher around an enumerator (which carries the synthesis
    /// budgets and canonicalization rules).
    pub fn new(enumerator: Enumerator, config: MctsConfig) -> Self {
        Mcts {
            enumerator,
            config,
            nodes: vec![TreeNode::default()],
            stats: MctsStats::default(),
        }
    }

    /// Feasible canonical actions from a state: children whose shape
    /// distance still fits the remaining step budget (Algorithm 1 line 20).
    fn feasible_children(&self, state: &PGraph) -> Vec<Action> {
        let max_steps = self.enumerator.config().max_steps;
        if state.len() >= max_steps {
            return Vec::new();
        }
        let remaining = max_steps - state.len() - 1;
        self.enumerator
            .children(state)
            .into_iter()
            .filter(|action| {
                state
                    .apply(action)
                    .map(|child| {
                        let d = shape_distance(
                            &child.frontier_sizes(),
                            child.spec().input.dims(),
                            child.vars(),
                        );
                        (d as usize) <= remaining
                    })
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Runs the search from `root`, scoring complete operators with
    /// `reward` (in `[0, 1]`), and returns the distinct discoveries sorted
    /// by descending reward.
    pub fn search(
        &mut self,
        root: &PGraph,
        reward: impl FnMut(&PGraph) -> f64,
    ) -> Vec<Discovered> {
        self.search_while(root, reward, |_| true)
    }

    /// Like [`search`](Mcts::search), but consults `keep_going` with the
    /// upcoming iteration index before every iteration; returning `false`
    /// stops the search early and yields the discoveries so far. This is the
    /// cancellation/budget hook used by the streaming `SearchRun` driver.
    pub fn search_while(
        &mut self,
        root: &PGraph,
        reward: impl FnMut(&PGraph) -> f64,
        keep_going: impl FnMut(u64) -> bool,
    ) -> Vec<Discovered> {
        let mut bridge = SerialBridge {
            reward,
            ready: VecDeque::new(),
        };
        self.engine(root, &mut bridge, keep_going)
    }

    /// Pipelined search: every new distinct complete operator is handed to
    /// `submit` as an [`EvalRequest`] (typically feeding a bounded queue
    /// drained by evaluator workers) and the search continues under a
    /// virtual loss until the matching [`EvalOutcome`] arrives on
    /// `outcomes`, at which point the reward is backpropagated along every
    /// selection path that reached the candidate.
    ///
    /// # Determinism
    ///
    /// A UCB comparison never reads a node with outstanding evaluations —
    /// the engine blocks on `outcomes` until the relevant rewards have been
    /// applied. Selection is otherwise reward-independent (untried children
    /// are taken first), so for a fixed seed the tree evolves exactly as in
    /// [`search_while`](Mcts::search_while) regardless of evaluator timing,
    /// and the discovered candidate set is identical to the serial run's.
    ///
    /// `submit` returning `false`, or `outcomes` disconnecting while
    /// evaluations are outstanding, means the evaluator pool died; the
    /// search then scores the affected candidates 0.0 (the skip semantics)
    /// instead of deadlocking. Before returning — normally or through
    /// `keep_going` — the engine blocks until every in-flight evaluation
    /// has drained, so cancellation never abandons a submitted candidate.
    pub fn search_async_while(
        &mut self,
        root: &PGraph,
        submit: impl FnMut(EvalRequest) -> bool,
        outcomes: &Receiver<EvalOutcome>,
        keep_going: impl FnMut(u64) -> bool,
    ) -> Vec<Discovered> {
        let mut bridge = ChannelBridge { submit, outcomes };
        self.engine(root, &mut bridge, keep_going)
    }

    /// The select → expand → rollout → backprop loop shared by both modes.
    fn engine<B: EvalBridge>(
        &mut self,
        root: &PGraph,
        bridge: &mut B,
        mut keep_going: impl FnMut(u64) -> bool,
    ) -> Vec<Discovered> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut found: HashMap<u64, Discovered> = HashMap::new();
        let mut pending: HashMap<u64, PendingEval> = HashMap::new();

        for iteration in 0..self.config.iterations {
            if !keep_going(iteration as u64) {
                break;
            }
            // Selection: walk down by UCB until an unexpanded node. Time
            // parked in `settle_children` (waiting on evaluator outcomes)
            // is traced as its own nested span and excluded from the
            // selection phase accounting.
            let select_span = syno_telemetry::span!("ucb_select");
            let mut settled = std::time::Duration::ZERO;
            let mut path: Vec<usize> = vec![0];
            let mut state = root.clone();
            let mut current = 0usize;
            loop {
                if !self.nodes[current].expanded {
                    let children: Vec<(Action, Option<usize>)> = self
                        .feasible_children(&state)
                        .into_iter()
                        .map(|a| (a, None))
                        .collect();
                    let node = &mut self.nodes[current];
                    node.children = children;
                    node.expanded = true;
                    break;
                }
                if self.nodes[current].children.is_empty() {
                    break; // dead end or terminal
                }
                // Pick an untried child first (reward-independent), else
                // best UCB over fully-applied statistics.
                let untried = self.nodes[current]
                    .children
                    .iter()
                    .position(|(_, c)| c.is_none());
                let pick = match untried {
                    Some(idx) => idx,
                    None => {
                        let wait_span = syno_telemetry::span!("eval_wait");
                        self.settle_children(current, bridge, &mut found, &mut pending);
                        settled += wait_span.elapsed();
                        drop(wait_span);
                        self.best_ucb_child(current)
                    }
                };
                let action = self.nodes[current].children[pick].0.clone();
                let child_state = state.apply(&action).expect("feasible child applies");
                let child_id = match self.nodes[current].children[pick].1 {
                    Some(id) => id,
                    None => {
                        let id = self.nodes.len();
                        self.nodes.push(TreeNode::default());
                        self.nodes[current].children[pick].1 = Some(id);
                        id
                    }
                };
                let is_new = !self.nodes[child_id].expanded;
                state = child_state;
                current = child_id;
                path.push(current);
                if is_new && self.nodes[current].visits == 0 {
                    break;
                }
            }

            self.stats.select_ns += select_span
                .elapsed()
                .saturating_sub(settled)
                .as_nanos() as u64;
            drop(select_span);

            // Rollout from the reached state. A known reward (failure,
            // rediscovery) backpropagates immediately; a new candidate is
            // submitted for evaluation and leaves the path under a virtual
            // loss (the visit counts now, the reward lands on drain).
            let synth_span = syno_telemetry::span!("synthesis");
            let rolled = rollout(&mut rng, &self.enumerator, &state, true);
            self.stats.rollout_ns += synth_span.elapsed().as_nanos() as u64;
            drop(synth_span);
            let value: Option<f64> = match rolled {
                RolloutResult::Complete(graph) => {
                    self.stats.completed_rollouts += 1;
                    let id = graph.content_hash();
                    if let Some(existing) = found.get(&id) {
                        Some(existing.reward)
                    } else if let Some(p) = pending.get_mut(&id) {
                        // Rediscovered while in flight: this path is owed
                        // the same reward once the evaluation drains.
                        p.paths.push(path.clone());
                        None
                    } else {
                        self.stats.distinct_operators += 1;
                        if bridge.submit(EvalRequest {
                            id,
                            graph: (*graph).clone(),
                        }) {
                            pending.insert(
                                id,
                                PendingEval {
                                    graph: *graph,
                                    paths: vec![path.clone()],
                                },
                            );
                            None
                        } else {
                            // Evaluator gone: degrade to skip semantics.
                            found.insert(
                                id,
                                Discovered {
                                    graph: *graph,
                                    reward: 0.0,
                                },
                            );
                            Some(0.0)
                        }
                    }
                }
                _ => {
                    self.stats.failed_rollouts += 1;
                    Some(0.0)
                }
            };

            // Backpropagation. Visits always count now; the reward either
            // lands now (known) or when the outcome drains (pending).
            match value {
                Some(value) => {
                    for &id in &path {
                        let node = &mut self.nodes[id];
                        node.visits += 1;
                        node.total_reward += value;
                    }
                }
                None => {
                    for &id in &path {
                        let node = &mut self.nodes[id];
                        node.visits += 1;
                        node.pending += 1;
                    }
                }
            }
            // Small jitter to the seed stream keeps rollouts diverse even
            // from identical states.
            let _ = rng.random::<u32>();

            // Absorb whatever the evaluator finished in the meantime. In
            // serial mode the just-computed reward is ready here, so it is
            // applied before the next iteration — the legacy behavior.
            while let Some(outcome) = bridge.try_next() {
                self.apply_outcome(outcome, &mut found, &mut pending);
            }
        }

        // Drain every in-flight evaluation before reporting: a stopped or
        // cancelled run still keeps (and scores) everything it submitted.
        let _drain_span = syno_telemetry::span!("eval_wait");
        while !pending.is_empty() {
            match bridge.wait_next() {
                Some(outcome) => self.apply_outcome(outcome, &mut found, &mut pending),
                None => {
                    self.abandon_pending(&mut found, &mut pending);
                    break;
                }
            }
        }

        let mut results: Vec<Discovered> = found.into_values().collect();
        results.sort_by(|a, b| b.reward.partial_cmp(&a.reward).expect("finite rewards"));
        results
    }

    /// Best child of `current` by UCB; callers must have settled pending
    /// rewards first so the comparison reads final statistics.
    fn best_ucb_child(&self, current: usize) -> usize {
        let node = &self.nodes[current];
        let parent_visits = node.visits.max(1) as f64;
        let exploration = self.config.exploration;
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (idx, (_, child)) in node.children.iter().enumerate() {
            let child_id = child.expect("all tried");
            let c = &self.nodes[child_id];
            let (v, q) = (c.visits.max(1) as f64, c.total_reward);
            let ucb = q / v + exploration * (parent_visits.ln() / v).sqrt();
            if ucb > best_score {
                best_score = ucb;
                best = idx;
            }
        }
        best
    }

    /// Blocks until no child of `current` carries a pending reward, so the
    /// following UCB comparison observes exactly the statistics the serial
    /// search would.
    fn settle_children<B: EvalBridge>(
        &mut self,
        current: usize,
        bridge: &mut B,
        found: &mut HashMap<u64, Discovered>,
        pending: &mut HashMap<u64, PendingEval>,
    ) {
        loop {
            let unsettled = self.nodes[current]
                .children
                .iter()
                .any(|(_, c)| c.is_some_and(|id| self.nodes[id].pending > 0));
            if !unsettled {
                return;
            }
            match bridge.wait_next() {
                Some(outcome) => self.apply_outcome(outcome, found, pending),
                None => {
                    self.abandon_pending(found, pending);
                    return;
                }
            }
        }
    }

    /// Folds a completed evaluation into the tree: the clamped reward is
    /// added along every path that reached the candidate (their visits were
    /// already counted at submission) and the discovery becomes final.
    fn apply_outcome(
        &mut self,
        outcome: EvalOutcome,
        found: &mut HashMap<u64, Discovered>,
        pending: &mut HashMap<u64, PendingEval>,
    ) {
        let Some(entry) = pending.remove(&outcome.id) else {
            return; // stale or duplicate outcome
        };
        let reward = outcome.reward.clamp(0.0, 1.0);
        for path in &entry.paths {
            for &id in path {
                let node = &mut self.nodes[id];
                node.total_reward += reward;
                node.pending = node.pending.saturating_sub(1);
            }
        }
        found.insert(
            outcome.id,
            Discovered {
                graph: entry.graph,
                reward,
            },
        );
    }

    /// The evaluator died with evaluations outstanding: score them 0.0 so
    /// counters stay consistent and the search can report what it has.
    fn abandon_pending(
        &mut self,
        found: &mut HashMap<u64, Discovered>,
        pending: &mut HashMap<u64, PendingEval>,
    ) {
        let ids: Vec<u64> = pending.keys().copied().collect();
        for id in ids {
            self.apply_outcome(EvalOutcome { id, reward: 0.0 }, found, pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::mpsc::channel;
    use syno_core::prelude::*;

    fn pool_root() -> (Enumerator, PGraph) {
        let mut vars = VarTable::new();
        let h = vars.declare("H", VarKind::Primary);
        let s = vars.declare("s", VarKind::Coefficient);
        vars.push_valuation(vec![(h, 16), (s, 2)]);
        let vars = vars.into_shared();
        let spec = OperatorSpec::new(
            TensorShape::new(vec![Size::var(h)]),
            TensorShape::new(vec![Size::var(h).div(&Size::var(s))]),
        );
        let config = SynthConfig::auto(&vars, 3);
        (Enumerator::new(config), PGraph::new(vars, spec))
    }

    #[test]
    fn mcts_discovers_operators() {
        let (enumerator, root) = pool_root();
        let mut mcts = Mcts::new(
            enumerator,
            MctsConfig {
                iterations: 60,
                ..MctsConfig::default()
            },
        );
        let results = mcts.search(&root, |_| 0.5);
        assert!(!results.is_empty(), "stats: {:?}", mcts.stats);
        assert!(results.iter().all(|d| d.graph.is_complete()));
        assert!(mcts.stats.completed_rollouts > 0);
    }

    #[test]
    fn rewards_guide_ranking() {
        let (enumerator, root) = pool_root();
        let mut mcts = Mcts::new(
            enumerator,
            MctsConfig {
                iterations: 80,
                seed: 3,
                ..MctsConfig::default()
            },
        );
        // Reward smaller graphs more.
        let results = mcts.search(&root, |g| 1.0 / (1.0 + g.len() as f64));
        assert!(!results.is_empty());
        for pair in results.windows(2) {
            assert!(pair[0].reward >= pair[1].reward);
        }
    }

    #[test]
    fn search_is_deterministic_under_seed() {
        let (enumerator, root) = pool_root();
        let run = |seed| {
            let mut mcts = Mcts::new(
                Enumerator::new(enumerator.config().clone()),
                MctsConfig {
                    iterations: 40,
                    seed,
                    ..MctsConfig::default()
                },
            );
            let mut r = mcts.search(&root, |g| 1.0 / (1.0 + g.len() as f64));
            r.sort_by_key(|d| d.graph.content_hash());
            r.iter().map(|d| d.graph.content_hash()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn distinct_operator_count_matches_results() {
        let (enumerator, root) = pool_root();
        let mut mcts = Mcts::new(
            enumerator,
            MctsConfig {
                iterations: 50,
                seed: 11,
                ..MctsConfig::default()
            },
        );
        let results = mcts.search(&root, |_| 0.1);
        assert_eq!(results.len() as u64, mcts.stats.distinct_operators);
    }

    /// The async engine against a threaded evaluator must discover the
    /// exact candidate set (and rewards) of the serial run, regardless of
    /// evaluator timing — the pipeline determinism contract at the tree
    /// level, exercised under pool-spec UCB pressure (few children, many
    /// iterations, so selection really does read rewards).
    #[test]
    fn async_search_matches_serial_candidate_set() {
        let (enumerator, root) = pool_root();
        let config = MctsConfig {
            iterations: 60,
            seed: 13,
            ..MctsConfig::default()
        };
        let reward_of = |g: &PGraph| 1.0 / (1.0 + g.len() as f64);

        let serial = {
            let mut mcts = Mcts::new(Enumerator::new(enumerator.config().clone()), config);
            let mut r = mcts.search(&root, reward_of);
            r.sort_by_key(|d| d.graph.content_hash());
            (r, mcts.stats)
        };

        let (request_tx, request_rx) = channel::<EvalRequest>();
        let (outcome_tx, outcome_rx) = channel::<EvalOutcome>();
        let evaluator = std::thread::spawn(move || {
            for request in request_rx {
                // Stagger replies so outcomes genuinely lag submissions —
                // a yield hands the core back to the engine thread without
                // the fixed wall-clock sleep the first cut used (which
                // cost 2ms per candidate and measured nothing).
                std::thread::yield_now();
                let reward = 1.0 / (1.0 + request.graph.len() as f64);
                if outcome_tx
                    .send(EvalOutcome {
                        id: request.id,
                        reward,
                    })
                    .is_err()
                {
                    break;
                }
            }
        });
        let asynchronous = {
            let mut mcts = Mcts::new(Enumerator::new(enumerator.config().clone()), config);
            let mut r = mcts.search_async_while(
                &root,
                |request| request_tx.send(request).is_ok(),
                &outcome_rx,
                |_| true,
            );
            r.sort_by_key(|d| d.graph.content_hash());
            (r, mcts.stats)
        };
        drop(request_tx);
        evaluator.join().unwrap();

        let ids = |r: &[Discovered]| {
            r.iter()
                .map(|d| (d.graph.content_hash(), d.reward.to_bits()))
                .collect::<Vec<_>>()
        };
        assert!(!serial.0.is_empty());
        assert_eq!(ids(&serial.0), ids(&asynchronous.0));
        assert_eq!(
            serial.1.completed_rollouts,
            asynchronous.1.completed_rollouts
        );
        assert_eq!(
            serial.1.distinct_operators,
            asynchronous.1.distinct_operators
        );
    }

    /// A dead evaluator must not deadlock the search: outstanding
    /// candidates degrade to zero reward and the run still reports them.
    #[test]
    fn async_search_survives_evaluator_death() {
        let (enumerator, root) = pool_root();
        let mut mcts = Mcts::new(
            enumerator,
            MctsConfig {
                iterations: 40,
                seed: 5,
                ..MctsConfig::default()
            },
        );
        // The outcome channel's sender is dropped immediately and every
        // submission is refused.
        let (outcome_tx, outcome_rx) = channel::<EvalOutcome>();
        drop(outcome_tx);
        let results = mcts.search_async_while(&root, |_| false, &outcome_rx, |_| true);
        assert!(!results.is_empty());
        assert!(results.iter().all(|d| d.reward == 0.0));
        assert_eq!(results.len() as u64, mcts.stats.distinct_operators);
    }
}
