//! The eager code generator (the paper's PyTorch backend, §8).
//!
//! Walks a complete pGraph in reverse application order — i.e. in dataflow
//! order from the input tensor toward the output — lowering each view
//! primitive to its `syno-tensor` counterpart and each weight to a single
//! einsum, exactly as the paper lowers views to PyTorch view ops and
//! contractions to `einsum`.
//!
//! The walk maintains the invariant that after processing node *t* (in
//! reverse), the live tensor's axes correspond one-to-one to the pGraph
//! frontier after node *t−1*. Each weight tensor is multiplied in at the
//! latest point where **all** of its dimension expressions are live as axes
//! (computed from a forward replay of frontier states); `MatchWeight` dims
//! become broadcast axes first, so the weight product is always a pure
//! elementwise einsum over shared axes.
//!
//! The generator is generic over an [`Executor`] so the identical lowering
//! drives both the plain tensor runtime (inference) and the autodiff tape
//! (training).

use syno_core::expr::ExprId;
use syno_core::graph::{CoordId, PGraph};
use syno_core::primitive::Action;
use syno_tensor::{ops, Tape, Tensor, Var};

use std::error::Error;
use std::fmt;

/// Errors from eager lowering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EagerError {
    /// The graph's frontier does not match its input specification.
    Incomplete,
    /// A symbolic size failed to evaluate under the chosen valuation.
    BadValuation,
    /// No program point exists where all dimensions of a weight tensor are
    /// simultaneously live; the operator is loop-nest-expressible but not
    /// eager-expressible (rare; such candidates are skipped by the search).
    WeightNotRealizable(usize),
    /// Provided tensors disagree with the declared shapes.
    ShapeMismatch(&'static str),
}

impl fmt::Display for EagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EagerError::Incomplete => write!(f, "graph is not complete"),
            EagerError::BadValuation => write!(f, "sizes do not evaluate under the valuation"),
            EagerError::WeightNotRealizable(w) => {
                write!(f, "weight {w} has no point where all dims are live")
            }
            EagerError::ShapeMismatch(what) => write!(f, "shape mismatch for {what}"),
        }
    }
}

impl Error for EagerError {}

impl From<EagerError> for syno_core::error::SynoError {
    fn from(e: EagerError) -> Self {
        syno_core::error::SynoError::eager(e)
    }
}

/// The operations the eager generator needs from its execution substrate.
pub trait Executor {
    /// Handle to a tensor value.
    type Handle: Copy;

    /// Shape of a handle, borrowed from the executor — implementations
    /// return their stored shape directly instead of cloning a `Vec` per
    /// call (the eager walk queries shapes at every step).
    fn shape(&self, h: Self::Handle) -> &[usize];
    /// Reinterpret shape.
    fn reshape(&mut self, h: Self::Handle, shape: &[usize]) -> Self::Handle;
    /// Permute axes.
    fn permute(&mut self, h: Self::Handle, perm: &[usize]) -> Self::Handle;
    /// Sliding-window extraction (zero-padded), trailing window axis.
    fn unfold(&mut self, h: Self::Handle, axis: usize, k: usize) -> Self::Handle;
    /// Axis rotation.
    fn roll(&mut self, h: Self::Handle, axis: usize, amount: i64) -> Self::Handle;
    /// Strided selection.
    fn strided(&mut self, h: Self::Handle, axis: usize, s: usize) -> Self::Handle;
    /// Axis insertion with repetition.
    fn repeat(&mut self, h: Self::Handle, axis: usize, times: usize) -> Self::Handle;
    /// Axis summation.
    fn sum_axis(&mut self, h: Self::Handle, axis: usize) -> Self::Handle;
    /// Einstein summation.
    fn einsum(&mut self, spec: &str, inputs: &[Self::Handle]) -> Self::Handle;
}

/// Plain-tensor executor with a scratch-buffer pool and a cached einsum
/// engine: [`TensorExecutor::reset`] reclaims every value buffer while
/// keeping the compiled plans, so repeated executions of the same operator
/// stop allocating after the first.
#[derive(Debug, Default)]
pub struct TensorExecutor {
    values: Vec<Tensor>,
    pool: syno_tensor::ScratchPool,
    engine: syno_tensor::EinsumEngine,
}

impl TensorExecutor {
    /// Creates an empty executor under the default (pinned) execution
    /// policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty executor whose einsums run under `policy` (thread
    /// count and deterministic reduction-tree width).
    pub fn with_policy(policy: syno_tensor::ExecPolicy) -> Self {
        TensorExecutor {
            engine: syno_tensor::EinsumEngine::with_policy(policy),
            ..Self::default()
        }
    }

    /// Registers a tensor, returning its handle.
    pub fn insert(&mut self, t: Tensor) -> usize {
        self.values.push(t);
        self.values.len() - 1
    }

    /// The tensor behind a handle.
    pub fn tensor(&self, h: usize) -> &Tensor {
        &self.values[h]
    }

    /// Drops all values, recycling their buffers for the next execution;
    /// compiled einsum plans survive.
    pub fn reset(&mut self) {
        let TensorExecutor { values, pool, .. } = self;
        for t in values.drain(..) {
            pool.recycle(t);
        }
    }
}

impl Executor for TensorExecutor {
    type Handle = usize;

    fn shape(&self, h: usize) -> &[usize] {
        self.values[h].shape()
    }
    fn reshape(&mut self, h: usize, shape: &[usize]) -> usize {
        let t = ops::reshape_in(&mut self.pool, &self.values[h], shape);
        self.insert(t)
    }
    fn permute(&mut self, h: usize, perm: &[usize]) -> usize {
        let t = ops::permute_in(&mut self.pool, &self.values[h], perm);
        self.insert(t)
    }
    fn unfold(&mut self, h: usize, axis: usize, k: usize) -> usize {
        let t = ops::unfold_in(&mut self.pool, &self.values[h], axis, k);
        self.insert(t)
    }
    fn roll(&mut self, h: usize, axis: usize, amount: i64) -> usize {
        let t = ops::roll_in(&mut self.pool, &self.values[h], axis, amount);
        self.insert(t)
    }
    fn strided(&mut self, h: usize, axis: usize, s: usize) -> usize {
        let t = ops::strided_in(&mut self.pool, &self.values[h], axis, s);
        self.insert(t)
    }
    fn repeat(&mut self, h: usize, axis: usize, times: usize) -> usize {
        let t = ops::repeat_in(&mut self.pool, &self.values[h], axis, times);
        self.insert(t)
    }
    fn sum_axis(&mut self, h: usize, axis: usize) -> usize {
        let t = ops::sum_axis_in(&mut self.pool, &self.values[h], axis);
        self.insert(t)
    }
    fn einsum(&mut self, spec: &str, inputs: &[usize]) -> usize {
        let TensorExecutor { values, pool, engine } = self;
        let tensors: Vec<&Tensor> = inputs.iter().map(|&h| &values[h]).collect();
        let t = engine
            .einsum(spec, &tensors, pool)
            .expect("eager einsum shapes are consistent");
        self.insert(t)
    }
}

/// Autodiff-tape executor.
#[derive(Debug)]
pub struct TapeExecutor<'a> {
    tape: &'a mut Tape,
}

impl<'a> TapeExecutor<'a> {
    /// Wraps a tape.
    pub fn new(tape: &'a mut Tape) -> Self {
        TapeExecutor { tape }
    }
}

impl Executor for TapeExecutor<'_> {
    type Handle = Var;

    fn shape(&self, h: Var) -> &[usize] {
        self.tape.value(h).shape()
    }
    fn reshape(&mut self, h: Var, shape: &[usize]) -> Var {
        self.tape.reshape(h, shape)
    }
    fn permute(&mut self, h: Var, perm: &[usize]) -> Var {
        self.tape.permute(h, perm)
    }
    fn unfold(&mut self, h: Var, axis: usize, k: usize) -> Var {
        self.tape.unfold(h, axis, k)
    }
    fn roll(&mut self, h: Var, axis: usize, amount: i64) -> Var {
        self.tape.roll(h, axis, amount)
    }
    fn strided(&mut self, h: Var, axis: usize, s: usize) -> Var {
        self.tape.strided(h, axis, s)
    }
    fn repeat(&mut self, h: Var, axis: usize, times: usize) -> Var {
        self.tape.repeat(h, axis, times)
    }
    fn sum_axis(&mut self, h: Var, axis: usize) -> Var {
        self.tape.sum_axis(h, axis)
    }
    fn einsum(&mut self, spec: &str, inputs: &[Var]) -> Var {
        self.tape.einsum(spec, inputs)
    }
}

/// Concrete weight shapes of `graph` under `valuation`, in slot order —
/// callers allocate weights with these shapes.
///
/// # Errors
///
/// Returns [`EagerError::BadValuation`] when a dimension fails to evaluate.
pub fn weight_shapes(graph: &PGraph, valuation: usize) -> Result<Vec<Vec<usize>>, EagerError> {
    let vars = graph.vars();
    graph
        .weights()
        .iter()
        .map(|w| {
            w.dims
                .iter()
                .map(|d| {
                    d.domain
                        .eval(vars, valuation)
                        .map(|v| v as usize)
                        .ok_or(EagerError::BadValuation)
                })
                .collect()
        })
        .collect()
}

/// Per-slot multiply points: the latest node index `T` such that every dim
/// expression of the slot is live in the frontier after node `T`.
fn multiply_points(graph: &PGraph) -> Result<Vec<usize>, EagerError> {
    // Forward replay of frontier states (as expression sets).
    let n = graph.len();
    let mut frontier_exprs: Vec<Vec<ExprId>> = Vec::with_capacity(n + 1);
    {
        // Reconstruct by replaying actions on a fresh graph.
        let mut replay = PGraph::new(graph.vars().clone(), graph.spec().clone());
        let exprs_of = |g: &PGraph| -> Vec<ExprId> {
            g.frontier().iter().map(|&c| g.coord_expr(c)).collect()
        };
        frontier_exprs.push(exprs_of(&replay));
        for node in graph.nodes() {
            replay = replay
                .apply(&node.action)
                .map_err(|_| EagerError::Incomplete)?;
            frontier_exprs.push(exprs_of(&replay));
        }
    }
    let mut points = Vec::new();
    for (w, weight) in graph.weights().iter().enumerate() {
        let mut found = None;
        for t in (0..=n).rev() {
            let live = &frontier_exprs[t];
            if weight.dims.iter().all(|d| live.contains(&d.expr)) {
                found = Some(t);
                break;
            }
        }
        points.push(found.ok_or(EagerError::WeightNotRealizable(w))?);
    }
    Ok(points)
}

const LETTERS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// Lowers and executes `graph` on an executor, returning the output handle.
///
/// `input` must be shaped like the graph's input spec under `valuation`;
/// `weights[w]` like [`weight_shapes`] reports.
///
/// # Errors
///
/// See [`EagerError`].
pub fn lower_eager<E: Executor>(
    exec: &mut E,
    graph: &PGraph,
    valuation: usize,
    input: E::Handle,
    weights: &[E::Handle],
) -> Result<E::Handle, EagerError> {
    let vars = graph.vars().clone();
    let perm = graph.match_input().ok_or(EagerError::Incomplete)?;
    if weights.len() != graph.weight_count() {
        return Err(EagerError::ShapeMismatch("weight count"));
    }
    let eval = |e: ExprId| -> Result<usize, EagerError> {
        graph
            .arena()
            .domain(e)
            .eval(&vars, valuation)
            .map(|v| v as usize)
            .ok_or(EagerError::BadValuation)
    };

    // Check declared input shape.
    let want_input: Vec<usize> = graph
        .spec()
        .input
        .eval(&vars, valuation)
        .ok_or(EagerError::BadValuation)?
        .iter()
        .map(|&v| v as usize)
        .collect();
    if exec.shape(input) != want_input.as_slice() {
        return Err(EagerError::ShapeMismatch("input"));
    }

    let points = multiply_points(graph)?;

    // Axes state: axes[i] = frontier coordinate carried by tensor axis i.
    // Start: permute the input so axis i corresponds to frontier coord i.
    // perm[slot] = input dim for frontier slot => permutation for
    // `ops::permute` is exactly `perm` (output axis slot reads input axis
    // perm[slot]).
    let mut current = exec.permute(input, &perm);
    let mut axes: Vec<CoordId> = graph.frontier().to_vec();

    // Multiply weights scheduled at T = n (before visiting any node).
    let n = graph.len();
    multiply_due(exec, graph, &points, n, &mut current, &axes, weights)?;

    for t in (0..n).rev() {
        let node = &graph.nodes()[t];
        match &node.action {
            Action::Split { lhs, rhs } => {
                // Reverse: axis(product) -> axes (lhs, rhs) via reshape.
                let product = node.produced[0];
                let pos = axis_of(&axes, product)?;
                let g = eval(graph.coord_expr(*lhs))?;
                let b = eval(graph.coord_expr(*rhs))?;
                let mut shape = exec.shape(current).to_vec();
                shape.splice(pos..=pos, [g, b]);
                current = exec.reshape(current, &shape);
                axes.splice(pos..=pos, [*lhs, *rhs]);
            }
            Action::Merge { coord, .. } => {
                // Reverse: axes (q, r) -> axis(coord) via permute+reshape.
                let q = node.produced[0];
                let r = node.produced[1];
                let qpos = axis_of(&axes, q)?;
                let rpos = axis_of(&axes, r)?;
                // Bring r right after q.
                if rpos != qpos + 1 {
                    let mut order: Vec<usize> = (0..axes.len()).collect();
                    order.remove(rpos);
                    let qpos_now = order.iter().position(|&i| i == qpos).expect("q present");
                    order.insert(qpos_now + 1, rpos);
                    current = exec.permute(current, &order);
                    axes = order.iter().map(|&i| axes[i]).collect();
                }
                let qpos = axis_of(&axes, q)?;
                let mut shape = exec.shape(current).to_vec();
                let merged = shape[qpos] * shape[qpos + 1];
                shape.splice(qpos..=qpos + 1, [merged]);
                current = exec.reshape(current, &shape);
                axes.splice(qpos..=qpos + 1, [*coord]);
            }
            Action::Shift { coord } => {
                let out = node.produced[0];
                let pos = axis_of(&axes, out)?;
                current = exec.roll(current, pos, 1);
                axes[pos] = *coord;
            }
            Action::Stride { coord, .. } => {
                let out = node.produced[0];
                let pos = axis_of(&axes, out)?;
                let k = eval(graph.coord_expr(*coord))?;
                let total = exec.shape(current)[pos];
                current = exec.strided(current, pos, total / k);
                axes[pos] = *coord;
            }
            Action::Unfold { base, window } => {
                let out = node.produced[0];
                let pos = axis_of(&axes, out)?;
                let k = eval(graph.coord_expr(*window))?;
                current = exec.unfold(current, pos, k);
                axes[pos] = *base;
                axes.push(*window);
            }
            Action::Expand { coord } => {
                let times = eval(graph.coord_expr(*coord))?;
                let pos = axes.len();
                current = exec.repeat(current, pos, times);
                axes.push(*coord);
            }
            Action::Reduce { .. } => {
                let out = node.produced[0];
                let pos = axis_of(&axes, out)?;
                current = exec.sum_axis(current, pos);
                axes.remove(pos);
            }
            Action::Share { coord, .. } => {
                let copy = node.produced[0];
                let pos = axis_of(&axes, copy)?;
                axes[pos] = *coord;
            }
            Action::MatchWeight { coord, .. } => {
                // Reverse: create a broadcast axis; the weight einsum (at an
                // earlier reverse step, i.e. already executed) selected it.
                // Here the axis must be *introduced* since below this node
                // the coordinate exists on the frontier.
                let times = eval(graph.coord_expr(*coord))?;
                let pos = axes.len();
                current = exec.repeat(current, pos, times);
                axes.push(*coord);
            }
        }
        multiply_due(exec, graph, &points, t, &mut current, &axes, weights)?;
    }

    // Axes now carry the output coordinates; order them per output spec.
    let out_coords: Vec<CoordId> = graph.output_coords();
    if axes.len() != out_coords.len() {
        return Err(EagerError::Incomplete);
    }
    let perm_out: Vec<usize> = out_coords
        .iter()
        .map(|c| axis_of(&axes, *c))
        .collect::<Result<_, _>>()?;
    Ok(exec.permute(current, &perm_out))
}

fn axis_of(axes: &[CoordId], coord: CoordId) -> Result<usize, EagerError> {
    axes.iter()
        .position(|&c| c == coord)
        .ok_or(EagerError::Incomplete)
}

/// Multiplies every weight whose scheduled point is `t` into the current
/// tensor via a single elementwise-shared einsum.
#[allow(clippy::too_many_arguments)]
fn multiply_due<E: Executor>(
    exec: &mut E,
    graph: &PGraph,
    points: &[usize],
    t: usize,
    current: &mut E::Handle,
    axes: &[CoordId],
    weights: &[E::Handle],
) -> Result<(), EagerError> {
    for (w, &point) in points.iter().enumerate() {
        if point != t {
            continue;
        }
        let weight = &graph.weights()[w];
        // Bind each weight dim to the live axis carrying its expression;
        // the multiply is a pure elementwise-shared einsum (reductions are
        // handled by the Reduce nodes themselves).
        let data_letters: Vec<u8> = (0..axes.len()).map(|i| LETTERS[i]).collect();
        let mut weight_letters = Vec::new();
        for dim in &weight.dims {
            let axis = axes.iter().position(|&c| graph.coord_expr(c) == dim.expr);
            match axis {
                Some(pos) => weight_letters.push(data_letters[pos]),
                // Scheduling guarantees liveness; a miss means the graph is
                // not eager-realizable after all.
                None => return Err(EagerError::WeightNotRealizable(w)),
            }
        }
        let spec = format!(
            "{},{}->{}",
            String::from_utf8_lossy(&data_letters),
            String::from_utf8_lossy(&weight_letters),
            String::from_utf8_lossy(&data_letters),
        );
        *current = exec.einsum(&spec, &[*current, weights[w]]);
    }
    Ok(())
}

/// Executes `graph` eagerly on plain tensors.
///
/// # Errors
///
/// See [`EagerError`].
pub fn execute(
    graph: &PGraph,
    valuation: usize,
    input: &Tensor,
    weights: &[Tensor],
) -> Result<Tensor, EagerError> {
    let mut exec = TensorExecutor::new();
    let ih = exec.insert(input.clone());
    let whs: Vec<usize> = weights.iter().map(|w| exec.insert(w.clone())).collect();
    let out = lower_eager(&mut exec, graph, valuation, ih, &whs)?;
    Ok(exec.tensor(out).clone())
}

/// Records `graph`'s forward pass on an autodiff tape.
///
/// # Errors
///
/// See [`EagerError`].
pub fn record(
    tape: &mut Tape,
    graph: &PGraph,
    valuation: usize,
    input: Var,
    weights: &[Var],
) -> Result<Var, EagerError> {
    let mut exec = TapeExecutor::new(tape);
    lower_eager(&mut exec, graph, valuation, input, weights)
}
