//! # syno-ir — loop-nest IR, lowering, and the two code generators
//!
//! This crate implements §8 of the paper:
//!
//! * [`kernel`] — the TE-style loop-nest IR with its reference interpreter;
//! * [`plan`] — the stride-compiled execution engine: per-stage index
//!   expressions lowered once to flat instruction programs re-evaluated
//!   incrementally per loop level, with hoisted clip guards — bit-identical
//!   to the reference interpreter and differentially tested against it;
//! * [`lower`] — pGraph → kernel lowering, naive and with the
//!   *materialized reduction* optimization (Fig. 4), which enumerates
//!   reduction orderings and splits stages to minimize FLOPs;
//! * [`eager`] — the PyTorch-style eager generator that replays a pGraph as
//!   `syno-tensor` view ops and einsums, generically over plain tensors or
//!   an autodiff tape.
//!
//! The two backends implement the *same semantics* from the same pGraph; the
//! crate's tests (and the cross-crate property tests) assert they agree
//! element-wise, which is what makes the accuracy-side and latency-side
//! evaluations of the reproduction mutually consistent.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod eager;
pub mod kernel;
pub mod lower;
pub mod plan;

pub use eager::{execute, record, weight_shapes, EagerError};
pub use kernel::{Kernel, Stage};
pub use lower::{lower_naive, lower_optimized, LowerError};
pub use plan::CompiledKernel;
