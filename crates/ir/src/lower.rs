//! Lowering complete pGraphs to loop-nest kernels, including the
//! *materialized reduction* optimization of §8 (Fig. 4).
//!
//! A complete pGraph denotes
//!
//! ```text
//! out[o₀…] = Σ_{reduce atoms} input[frontier exprs] · Π_w weight_w[dim exprs]
//! ```
//!
//! The naive lowering emits this as a single loop nest, iterating the
//! product of all output and reduction domains. The optimized lowering
//! enumerates *plans* — ordered partitions of the reduction atoms — and for
//! each group emits a stage that sums only the operands reaching those
//! atoms, materializing an intermediate buffer indexed by the maximal
//! subexpressions free of the group ("cuts"). Exactly as the paper observes,
//! summing *before* a 1-to-many `Unfold` duplicates data cuts FLOPs from
//! `k·H` to `(1 + k/s)·H` in the Fig. 4 example.

use crate::kernel::{Kernel, LoopDef, Operand, OperandRef, Stage};
use syno_core::expr::{AtomId, AtomKind, ExprArena, ExprId, ExprNode};
use syno_core::graph::PGraph;
use syno_core::primitive::Action;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Errors from lowering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LowerError {
    /// The graph's frontier does not match its input specification.
    Incomplete,
    /// A symbolic size failed to evaluate under the chosen valuation.
    BadValuation,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Incomplete => write!(f, "graph is not complete"),
            LowerError::BadValuation => write!(f, "sizes do not evaluate under the valuation"),
        }
    }
}

impl Error for LowerError {}

impl From<LowerError> for syno_core::error::SynoError {
    fn from(e: LowerError) -> Self {
        syno_core::error::SynoError::lower(e)
    }
}

/// Does `expr` mention any atom in `atoms`?
fn mentions(arena: &ExprArena, expr: ExprId, atoms: &HashSet<AtomId>) -> bool {
    arena.atoms_of(expr).iter().any(|a| atoms.contains(a))
}

/// Does `expr` contain an `Unfold` (i.e. carry zero-padding clip semantics)?
fn has_clip(arena: &ExprArena, expr: ExprId) -> bool {
    match *arena.node(expr) {
        ExprNode::Atom(_) => false,
        ExprNode::Affine { lhs, rhs, .. } => has_clip(arena, lhs) || has_clip(arena, rhs),
        ExprNode::Div { inner, .. }
        | ExprNode::Mod { inner, .. }
        | ExprNode::Shift { inner, .. }
        | ExprNode::Stride { inner, .. } => has_clip(arena, inner),
        ExprNode::Unfold { .. } => true,
    }
}

/// Collects maximal subtrees of `expr` that do not mention `atoms`.
fn cuts_of(arena: &ExprArena, expr: ExprId, atoms: &HashSet<AtomId>, out: &mut Vec<ExprId>) {
    if !mentions(arena, expr, atoms) {
        if !out.contains(&expr) {
            out.push(expr);
        }
        return;
    }
    match *arena.node(expr) {
        ExprNode::Atom(_) => {} // a reduced atom itself: no cut below it
        ExprNode::Affine { lhs, rhs, .. } => {
            cuts_of(arena, lhs, atoms, out);
            cuts_of(arena, rhs, atoms, out);
        }
        ExprNode::Div { inner, .. }
        | ExprNode::Mod { inner, .. }
        | ExprNode::Shift { inner, .. }
        | ExprNode::Stride { inner, .. } => cuts_of(arena, inner, atoms, out),
        ExprNode::Unfold { base, window, .. } => {
            cuts_of(arena, base, atoms, out);
            cuts_of(arena, window, atoms, out);
        }
    }
}

/// Rewrites `expr`, replacing every expression in `subst` by its image.
fn substitute(
    arena: &mut ExprArena,
    expr: ExprId,
    subst: &HashMap<ExprId, ExprId>,
) -> ExprId {
    if let Some(&to) = subst.get(&expr) {
        return to;
    }
    match arena.node(expr).clone() {
        ExprNode::Atom(_) => expr,
        ExprNode::Affine { lhs, rhs, .. } => {
            let l = substitute(arena, lhs, subst);
            let r = substitute(arena, rhs, subst);
            arena.affine(l, r)
        }
        ExprNode::Div { inner, block } => {
            let i = substitute(arena, inner, subst);
            arena.div(i, block)
        }
        ExprNode::Mod { inner, block } => {
            let i = substitute(arena, inner, subst);
            arena.modulo(i, block)
        }
        ExprNode::Shift { inner, .. } => {
            let i = substitute(arena, inner, subst);
            arena.shift(i)
        }
        ExprNode::Stride { inner, stride } => {
            let i = substitute(arena, inner, subst);
            arena.stride(i, stride)
        }
        ExprNode::Unfold { base, window, .. } => {
            let b = substitute(arena, base, subst);
            let w = substitute(arena, window, subst);
            arena.unfold(b, w)
        }
    }
}

/// A lowering plan: reduction atoms, partitioned into ordered groups.
type Plan = Vec<Vec<AtomId>>;

/// Enumerates ordered set partitions of `atoms` (all orders of all
/// partitions); for more than `cap` atoms only the single-group plan is
/// returned.
fn ordered_partitions(atoms: &[AtomId], cap: usize) -> Vec<Plan> {
    if atoms.is_empty() {
        return vec![vec![]];
    }
    if atoms.len() > cap {
        return vec![vec![atoms.to_vec()]];
    }
    // Recursive: choose the first group (any non-empty subset), recurse.
    let mut plans = Vec::new();
    let n = atoms.len();
    for mask in 1u32..(1 << n) {
        let first: Vec<AtomId> = (0..n).filter(|i| mask & (1 << i) != 0).map(|i| atoms[i]).collect();
        let rest: Vec<AtomId> = (0..n).filter(|i| mask & (1 << i) == 0).map(|i| atoms[i]).collect();
        for mut tail in ordered_partitions(&rest, cap) {
            let mut plan = vec![first.clone()];
            plan.append(&mut tail);
            plans.push(plan);
        }
    }
    plans
}

/// Lowers `graph` under `plan` at `valuation`.
fn lower_with_plan(graph: &PGraph, valuation: usize, plan: &Plan) -> Result<Kernel, LowerError> {
    let perm = graph.match_input().ok_or(LowerError::Incomplete)?;
    let vars = graph.vars().clone();
    let mut arena = graph.arena().clone();
    let eval = |arena: &ExprArena, e: ExprId| -> Result<u64, LowerError> {
        arena
            .domain(e)
            .eval(&vars, valuation)
            .ok_or(LowerError::BadValuation)
    };

    // Concrete boundary shapes.
    let input_shape: Vec<usize> = graph
        .spec()
        .input
        .eval(&vars, valuation)
        .ok_or(LowerError::BadValuation)?
        .iter()
        .map(|&v| v as usize)
        .collect();
    let output_shape: Vec<usize> = graph
        .spec()
        .output
        .eval(&vars, valuation)
        .ok_or(LowerError::BadValuation)?
        .iter()
        .map(|&v| v as usize)
        .collect();
    let mut weight_shapes = Vec::new();
    for w in graph.weights() {
        let mut dims = Vec::new();
        for d in &w.dims {
            dims.push(
                d.domain
                    .eval(&vars, valuation)
                    .ok_or(LowerError::BadValuation)? as usize,
            );
        }
        weight_shapes.push(dims);
    }

    // Initial operands: input (indices ordered by input dimension) and
    // weights (indices in dim order).
    let mut input_index_slots: Vec<Option<ExprId>> = vec![None; input_shape.len()];
    for (slot, &coord) in graph.frontier().iter().enumerate() {
        input_index_slots[perm[slot]] = Some(graph.coord_expr(coord));
    }
    let input_indices: Vec<ExprId> = input_index_slots
        .into_iter()
        .map(|e| e.expect("match_input covers every input dimension"))
        .collect();
    let mut operands: Vec<Operand> = vec![Operand {
        source: OperandRef::Input,
        indices: input_indices,
    }];
    for (w, weight) in graph.weights().iter().enumerate() {
        operands.push(Operand {
            source: OperandRef::Weight(w),
            indices: weight.dims.iter().map(|d| d.expr).collect(),
        });
    }

    // Clip predicates of coordinates discarded by `Expand`: no operand reads
    // them, but an `Unfold` in their history still zeroes out-of-window
    // terms, so they must survive lowering as stage guards.
    let mut pending_guards: Vec<ExprId> = graph
        .nodes()
        .iter()
        .filter(|node| matches!(node.action, Action::Expand { .. }))
        .map(|node| graph.coord_expr(node.consumed[0]))
        .filter(|&e| has_clip(&arena, e))
        .collect();

    let mut stages: Vec<Stage> = Vec::new();

    for group in plan {
        let group_set: HashSet<AtomId> = group.iter().copied().collect();
        // Partition operands: those mentioning the group get consumed.
        let (consumed, kept): (Vec<Operand>, Vec<Operand>) = operands
            .into_iter()
            .partition(|op| op.indices.iter().any(|&e| mentions(&arena, e, &group_set)));
        // Guards binding the group's atoms must be evaluated inside this
        // stage's reduction.
        let (consumed_guards, kept_guards): (Vec<ExprId>, Vec<ExprId>) = pending_guards
            .into_iter()
            .partition(|&e| mentions(&arena, e, &group_set));
        pending_guards = kept_guards;
        // A reduction no operand mentions is a pure multiplier; summing all
        // remaining operands over it keeps the semantics.
        let (consumed, kept) = if consumed.is_empty() {
            (kept, Vec::new())
        } else {
            (consumed, kept)
        };
        let (stage, mut new_op) =
            build_stage(&mut arena, &vars, valuation, consumed, consumed_guards, group)?;
        stages.push(stage);
        new_op.source = OperandRef::Buffer(stages.len() - 1);
        operands = kept;
        operands.insert(0, new_op);
    }

    // Final combine stage over the output atoms (skipped when the last
    // intermediate already *is* the output up to permutation).
    let output_atoms = graph.output_atoms().to_vec();
    let out_exprs: Vec<ExprId> = {
        // Bare atom expressions already exist in the arena (they seeded the
        // frontier), so interning them again is a lookup.
        let mut v = Vec::new();
        for &a in &output_atoms {
            v.push(arena.expr_atom(a));
        }
        v
    };

    let identity_final = pending_guards.is_empty()
        && operands.len() == 1
        && matches!(operands[0].source, OperandRef::Buffer(_))
        && {
            let key = &operands[0].indices;
            key.len() == out_exprs.len() && {
                let mut remaining: Vec<ExprId> = out_exprs.clone();
                key.iter().all(|e| {
                    if let Some(pos) = remaining.iter().position(|o| o == e) {
                        remaining.remove(pos);
                        true
                    } else {
                        false
                    }
                })
            }
        };

    let (final_loops_key, output_perm) = if identity_final {
        // Map output dim d to the buffer axis holding its atom.
        let key = operands[0].indices.clone();
        let perm: Vec<usize> = out_exprs
            .iter()
            .map(|e| key.iter().position(|k| k == e).expect("matched above"))
            .collect();
        (None, perm)
    } else {
        (Some(out_exprs.clone()), (0..out_exprs.len()).collect())
    };

    if let Some(key) = final_loops_key {
        let mut loops = Vec::new();
        for (&a, &e) in output_atoms.iter().zip(&key) {
            let extent = eval(&arena, e)?;
            loops.push(LoopDef { atom: a, extent });
        }
        stages.push(Stage {
            loops,
            reduce: Vec::new(),
            operands,
            guards: pending_guards,
            output_key: key,
        });
    }

    Ok(Kernel {
        arena,
        vars,
        valuation,
        input_shape,
        weight_shapes,
        output_shape,
        stages,
        output_perm,
    })
}

/// Builds one reduction stage over `group`, returning the stage and the
/// operand later stages use to read its buffer.
fn build_stage(
    arena: &mut ExprArena,
    vars: &std::sync::Arc<syno_core::var::VarTable>,
    valuation: usize,
    consumed: Vec<Operand>,
    guards: Vec<ExprId>,
    group: &[AtomId],
) -> Result<(Stage, Operand), LowerError> {
    let group_set: HashSet<AtomId> = group.iter().copied().collect();
    // Collect cuts across all consumed index expressions (guards included:
    // their group-independent subtrees must become stage axes too, so the
    // buffer is materialized per guard-relevant value).
    let mut cuts: Vec<ExprId> = Vec::new();
    for op in &consumed {
        for &e in &op.indices {
            cuts_of(arena, e, &group_set, &mut cuts);
        }
    }
    for &e in &guards {
        cuts_of(arena, e, &group_set, &mut cuts);
    }
    // Fresh atoms substitute for the cuts inside this stage.
    let mut subst: HashMap<ExprId, ExprId> = HashMap::new();
    let mut loops = Vec::new();
    for &cut in &cuts {
        let extent = arena
            .domain(cut)
            .eval(vars, valuation)
            .ok_or(LowerError::BadValuation)?;
        let fresh = arena.atom(AtomKind::Output, arena.domain(cut).clone());
        let fresh_expr = arena.expr_atom(fresh);
        subst.insert(cut, fresh_expr);
        loops.push(LoopDef {
            atom: fresh,
            extent,
        });
    }
    let mut reduce = Vec::new();
    for &a in group {
        let extent = arena
            .atom_info(a)
            .domain
            .eval(vars, valuation)
            .ok_or(LowerError::BadValuation)?;
        reduce.push(LoopDef { atom: a, extent });
    }
    let operands: Vec<Operand> = consumed
        .into_iter()
        .map(|op| {
            let indices = op
                .indices
                .iter()
                .map(|&e| substitute(arena, e, &subst))
                .collect();
            Operand {
                source: op.source,
                indices,
            }
        })
        .collect();
    let guards = guards
        .into_iter()
        .map(|e| substitute(arena, e, &subst))
        .collect();
    let stage = Stage {
        loops,
        reduce,
        operands,
        guards,
        output_key: cuts.clone(),
    };
    Ok((
        stage,
        Operand {
            // Patched by the caller to the just-pushed stage's buffer id.
            source: OperandRef::Buffer(0),
            indices: cuts,
        },
    ))
}

/// Lowers `graph` as a single fused loop nest (no materialization).
///
/// # Errors
///
/// Returns [`LowerError::Incomplete`] for incomplete graphs and
/// [`LowerError::BadValuation`] when sizes fail to evaluate.
pub fn lower_naive(graph: &PGraph, valuation: usize) -> Result<Kernel, LowerError> {
    let reduce_atoms = graph.reduce_atoms().to_vec();
    let plan: Plan = if reduce_atoms.is_empty() {
        vec![]
    } else {
        vec![reduce_atoms]
    };
    lower_with_plan(graph, valuation, &plan)
}

/// Lowers `graph`, choosing the materialization plan with minimum FLOPs —
/// the §8 materialized-reduction optimization.
///
/// # Errors
///
/// Returns [`LowerError::Incomplete`] for incomplete graphs and
/// [`LowerError::BadValuation`] when sizes fail to evaluate.
pub fn lower_optimized(graph: &PGraph, valuation: usize) -> Result<Kernel, LowerError> {
    let reduce_atoms = graph.reduce_atoms().to_vec();
    let mut best: Option<Kernel> = None;
    for plan in ordered_partitions(&reduce_atoms, 4) {
        let kernel = lower_with_plan(graph, valuation, &plan)?;
        match &best {
            Some(b) if b.flops() <= kernel.flops() => {}
            _ => best = Some(kernel),
        }
    }
    best.ok_or(LowerError::Incomplete)
}
