//! Stride-compiled execution of lowered kernels.
//!
//! The reference interpreter in [`crate::kernel`] re-walks each operand's
//! [`ExprArena`] index-expression tree for **every element** of every stage
//! — a recursive descent with a symbolic [`Size`](syno_core::size::Size)
//! evaluation at each node. This module compiles each [`Stage`] once into a
//! flat program:
//!
//! * every expression node becomes one instruction over an `i64` register
//!   file, with all symbolic sizes evaluated to constants at compile time;
//! * every instruction carries a *level* — one past the deepest loop
//!   (spatial then reduction, in interpreter order) it depends on — and the
//!   instruction list is sorted by level, so when loop `d` ticks only the
//!   suffix `first_at_level[d + 1]..` is re-evaluated (the "incremental per
//!   loop level" evaluation);
//! * `Unfold` clips become per-register poison flags that propagate through
//!   dependent instructions, exactly mirroring the `Option` threading of
//!   [`ExprArena::eval`];
//! * [`Stage::guards`] whose registers depend only on spatial loops are
//!   **hoisted**: they are checked once per output element, skipping the
//!   entire reduction nest (which would have contributed zero anyway).
//!
//! Iteration order — and therefore FP summation order — is identical to the
//! reference interpreter, so compiled and interpreted execution are
//! **bit-identical**; the differential test suite pins this. A stage whose
//! expressions cannot be compiled (an atom outside the stage's loops, which
//! a well-formed lowering never produces) falls back to the reference
//! interpreter for the whole kernel.

use crate::kernel::{Kernel, OperandRef, Stage};
use syno_core::expr::{ExprArena, ExprId, ExprNode};
use syno_tensor::Tensor;

use std::collections::HashMap;

/// One compiled expression node. `dst`/`src` index the stage's register
/// file; all block/stride/window sizes are pre-evaluated constants.
#[derive(Clone, Copy, Debug)]
enum Instr {
    /// `r[dst] = block * r[lhs] + r[rhs]`.
    Affine { dst: usize, lhs: usize, rhs: usize, block: i64 },
    /// `r[dst] = r[src].div_euclid(block)`.
    Div { dst: usize, src: usize, block: i64 },
    /// `r[dst] = r[src].rem_euclid(block)`.
    Mod { dst: usize, src: usize, block: i64 },
    /// `r[dst] = (r[src] + 1).rem_euclid(modulus)`.
    Shift { dst: usize, src: usize, modulus: i64 },
    /// `r[dst] = factor * r[src]`.
    Mul { dst: usize, src: usize, factor: i64 },
    /// `r[dst] = r[base] + r[window] - half`, poisoned outside `[0, extent)`.
    Unfold {
        dst: usize,
        base: usize,
        window: usize,
        half: i64,
        extent: i64,
    },
    /// A size failed to evaluate at compile time: the register is always
    /// poisoned (the reference interpreter's per-element `None`).
    Poison { dst: usize },
}

/// One axis of one operand: which register indexes it, the axis extent to
/// bounds-check against, and the row-major stride to scale by.
#[derive(Clone, Copy, Debug)]
struct AxisRef {
    reg: usize,
    dim: i64,
    stride: usize,
}

/// A compiled operand: its data source plus per-axis access program.
#[derive(Clone, Debug)]
struct OperandAccess {
    source: OperandRef,
    axes: Vec<AxisRef>,
}

/// The compiled program for one [`Stage`].
#[derive(Clone, Debug)]
struct StageProgram {
    /// Spatial extents (the stage buffer shape).
    spatial_dims: Vec<usize>,
    /// Reduction extents.
    reduce_dims: Vec<usize>,
    /// Register count; registers `0..n_loops` are the loop counters
    /// (spatial then reduction, interpreter order).
    n_regs: usize,
    /// Instructions sorted ascending by level.
    instrs: Vec<Instr>,
    /// `first_at_level[d]`: index of the first instruction at level ≥ `d`.
    /// Levels run `0..=n_loops`; level `d` means "depends on loop `d − 1`".
    first_at_level: Vec<usize>,
    /// Compiled operand accesses.
    operands: Vec<OperandAccess>,
    /// Guard registers depending only on spatial loops — checked once per
    /// output element, skipping the whole reduction nest (the hoist).
    spatial_guards: Vec<usize>,
    /// Guard registers that bind reduction loops — checked per reduction
    /// point, as the interpreter does.
    reduce_guards: Vec<usize>,
}

/// A kernel compiled for repeated execution.
///
/// Built by [`Kernel::compile`]; execution is bit-identical to
/// [`Kernel::execute_reference`].
#[derive(Clone, Debug)]
pub struct CompiledKernel<'k> {
    kernel: &'k Kernel,
    /// `None` when some stage could not be compiled — execution falls back
    /// to the reference interpreter.
    stages: Option<Vec<StageProgram>>,
}

struct StageCompiler<'a> {
    arena: &'a ExprArena,
    kernel: &'a Kernel,
    /// Atom index → loop register, for atoms bound by this stage's loops.
    atom_reg: HashMap<usize, usize>,
    /// Memoized expression registers (expressions are hash-consed, so one
    /// register per distinct subexpression per stage).
    expr_reg: HashMap<ExprId, usize>,
    /// Level per register (`0` = loop-invariant).
    reg_level: Vec<usize>,
    /// Emitted instructions with their levels, in postorder.
    emitted: Vec<(usize, Instr)>,
    n_loops: usize,
}

impl<'a> StageCompiler<'a> {
    fn new(kernel: &'a Kernel, stage: &Stage) -> Self {
        let mut atom_reg = HashMap::new();
        let n_loops = stage.loops.len() + stage.reduce.len();
        for (j, l) in stage.loops.iter().chain(&stage.reduce).enumerate() {
            atom_reg.insert(l.atom.index(), j);
        }
        StageCompiler {
            arena: &kernel.arena,
            kernel,
            atom_reg,
            expr_reg: HashMap::new(),
            // Loop-counter registers: register j is loop j, level j + 1.
            reg_level: (1..=n_loops).collect(),
            emitted: Vec::new(),
            n_loops,
        }
    }

    fn eval_size(&self, size: &syno_core::size::Size) -> Option<i64> {
        size.eval(&self.kernel.vars, self.kernel.valuation)
            .map(|v| v as i64)
    }

    fn fresh(&mut self, level: usize) -> usize {
        self.reg_level.push(level);
        self.reg_level.len() - 1
    }

    /// Compiles `expr`, returning its register, or `None` when the
    /// expression references an atom outside the stage's loops (fallback).
    fn compile_expr(&mut self, expr: ExprId) -> Option<usize> {
        if let Some(&reg) = self.expr_reg.get(&expr) {
            return Some(reg);
        }
        let reg = match *self.arena.node(expr) {
            ExprNode::Atom(a) => *self.atom_reg.get(&a.index())?,
            ExprNode::Affine { lhs, rhs, ref block } => {
                let block = block.clone();
                let l = self.compile_expr(lhs)?;
                let r = self.compile_expr(rhs)?;
                let level = self.reg_level[l].max(self.reg_level[r]);
                let dst = self.fresh(level);
                match self.eval_size(&block) {
                    Some(b) => self.emitted.push((
                        level,
                        Instr::Affine {
                            dst,
                            lhs: l,
                            rhs: r,
                            block: b,
                        },
                    )),
                    None => self.emitted.push((0, Instr::Poison { dst })),
                }
                dst
            }
            ExprNode::Div { inner, ref block } => {
                let block = block.clone();
                self.unary(inner, &block, |dst, src, b| Instr::Div { dst, src, block: b })?
            }
            ExprNode::Mod { inner, ref block } => {
                let block = block.clone();
                self.unary(inner, &block, |dst, src, b| Instr::Mod { dst, src, block: b })?
            }
            ExprNode::Shift { inner, ref domain } => {
                let domain = domain.clone();
                self.unary(inner, &domain, |dst, src, m| Instr::Shift {
                    dst,
                    src,
                    modulus: m,
                })?
            }
            ExprNode::Stride { inner, ref stride } => {
                let stride = stride.clone();
                self.unary(inner, &stride, |dst, src, f| Instr::Mul {
                    dst,
                    src,
                    factor: f,
                })?
            }
            ExprNode::Unfold {
                base,
                window,
                ref window_size,
            } => {
                let window_size = window_size.clone();
                let extent = self.arena.domain(base).clone();
                let b = self.compile_expr(base)?;
                let w = self.compile_expr(window)?;
                let level = self.reg_level[b].max(self.reg_level[w]);
                let dst = self.fresh(level);
                match (self.eval_size(&window_size), self.eval_size(&extent)) {
                    (Some(k), Some(n)) => self.emitted.push((
                        level,
                        Instr::Unfold {
                            dst,
                            base: b,
                            window: w,
                            half: k / 2,
                            extent: n,
                        },
                    )),
                    _ => self.emitted.push((0, Instr::Poison { dst })),
                }
                dst
            }
        };
        self.expr_reg.insert(expr, reg);
        Some(reg)
    }

    /// Emits a single-child instruction whose constant is `size`.
    fn unary(
        &mut self,
        inner: ExprId,
        size: &syno_core::size::Size,
        build: impl FnOnce(usize, usize, i64) -> Instr,
    ) -> Option<usize> {
        let src = self.compile_expr(inner)?;
        let level = self.reg_level[src];
        let dst = self.fresh(level);
        match self.eval_size(size) {
            Some(v) => self.emitted.push((level, build(dst, src, v))),
            None => self.emitted.push((0, Instr::Poison { dst })),
        }
        Some(dst)
    }

    fn finish(self, stage: &Stage, operands: Vec<OperandAccess>, guards: Vec<usize>) -> StageProgram {
        let mut emitted = self.emitted;
        // Stable by level: children precede parents within a level because
        // they were emitted first (postorder), and levels never decrease
        // from child to parent.
        emitted.sort_by_key(|&(level, _)| level);
        let mut first_at_level = vec![emitted.len(); self.n_loops + 2];
        for (i, &(level, _)) in emitted.iter().enumerate().rev() {
            for slot in first_at_level.iter_mut().take(level + 1) {
                *slot = i;
            }
        }
        let m = stage.loops.len();
        let (spatial_guards, reduce_guards) = guards
            .into_iter()
            .partition(|&reg| self.reg_level[reg] <= m);
        StageProgram {
            spatial_dims: stage.loops.iter().map(|l| l.extent as usize).collect(),
            reduce_dims: stage.reduce.iter().map(|l| l.extent as usize).collect(),
            n_regs: self.reg_level.len(),
            instrs: emitted.into_iter().map(|(_, i)| i).collect(),
            first_at_level,
            operands,
            spatial_guards,
            reduce_guards,
        }
    }
}

/// Compiles one stage; `None` requests interpreter fallback.
fn compile_stage(kernel: &Kernel, stage: &Stage) -> Option<StageProgram> {
    let mut c = StageCompiler::new(kernel, stage);
    let mut operands = Vec::with_capacity(stage.operands.len());
    for op in &stage.operands {
        let dims: Vec<usize> = match op.source {
            OperandRef::Input => kernel.input_shape.clone(),
            OperandRef::Weight(w) => kernel.weight_shapes[w].clone(),
            OperandRef::Buffer(b) => kernel.stages[b].shape(),
        };
        let strides = Tensor::strides_of(&dims);
        let mut axes = Vec::with_capacity(op.indices.len());
        for (expr, (&dim, &stride)) in op.indices.iter().zip(dims.iter().zip(&strides)) {
            let reg = c.compile_expr(*expr)?;
            axes.push(AxisRef {
                reg,
                dim: dim as i64,
                stride,
            });
        }
        operands.push(OperandAccess {
            source: op.source,
            axes,
        });
    }
    let mut guards = Vec::with_capacity(stage.guards.len());
    for &g in &stage.guards {
        guards.push(c.compile_expr(g)?);
    }
    Some(c.finish(stage, operands, guards))
}

/// Compiles every stage of `kernel`; `None` requests interpreter fallback.
fn compile_kernel(kernel: &Kernel) -> Option<Vec<StageProgram>> {
    kernel
        .stages
        .iter()
        .map(|stage| compile_stage(kernel, stage))
        .collect()
}

/// Advances a little-endian-last odometer; returns the outermost changed
/// dim (everything deeper was reset to zero).
fn advance(idx: &mut [usize], dims: &[usize]) -> usize {
    for d in (0..idx.len()).rev() {
        idx[d] += 1;
        if idx[d] < dims[d] {
            return d;
        }
        idx[d] = 0;
    }
    0
}

impl StageProgram {
    /// Re-evaluates instructions from `from` (a `first_at_level` entry).
    fn run_instrs(&self, from: usize, regs: &mut [i64], poison: &mut [bool]) {
        for instr in &self.instrs[from..] {
            match *instr {
                Instr::Affine { dst, lhs, rhs, block } => {
                    regs[dst] = block * regs[lhs] + regs[rhs];
                    poison[dst] = poison[lhs] || poison[rhs];
                }
                Instr::Div { dst, src, block } => {
                    regs[dst] = regs[src].div_euclid(block);
                    poison[dst] = poison[src];
                }
                Instr::Mod { dst, src, block } => {
                    regs[dst] = regs[src].rem_euclid(block);
                    poison[dst] = poison[src];
                }
                Instr::Shift { dst, src, modulus } => {
                    regs[dst] = (regs[src] + 1).rem_euclid(modulus);
                    poison[dst] = poison[src];
                }
                Instr::Mul { dst, src, factor } => {
                    regs[dst] = factor * regs[src];
                    poison[dst] = poison[src];
                }
                Instr::Unfold {
                    dst,
                    base,
                    window,
                    half,
                    extent,
                } => {
                    let v = regs[base] + regs[window] - half;
                    regs[dst] = v;
                    poison[dst] = poison[base] || poison[window] || v < 0 || v >= extent;
                }
                Instr::Poison { dst } => poison[dst] = true,
            }
        }
    }

    /// Executes the stage into `out` (zeroed, of the stage's spatial size).
    fn execute(
        &self,
        out: &mut [f32],
        input: &Tensor,
        weights: &[Tensor],
        buffers: &[Tensor],
    ) {
        let data_of = |source: OperandRef| -> &[f32] {
            match source {
                OperandRef::Input => input.data(),
                OperandRef::Weight(w) => weights[w].data(),
                OperandRef::Buffer(b) => buffers[b].data(),
            }
        };
        let sources: Vec<&[f32]> = self.operands.iter().map(|op| data_of(op.source)).collect();

        let m = self.spatial_dims.len();
        let k = self.reduce_dims.len();
        let spatial_total: usize = self.spatial_dims.iter().product::<usize>().max(1);
        let reduce_total: usize = self.reduce_dims.iter().product::<usize>().max(1);

        let mut regs = vec![0i64; self.n_regs];
        let mut poison = vec![false; self.n_regs];
        let mut sidx = vec![0usize; m];
        let mut ridx = vec![0usize; k];
        // All loop counters start at zero; evaluate everything once.
        self.run_instrs(0, &mut regs, &mut poison);

        for (flat, slot) in out.iter_mut().enumerate().take(spatial_total) {
            if flat > 0 {
                let d = advance(&mut sidx, &self.spatial_dims);
                for (j, &v) in sidx.iter().enumerate().skip(d) {
                    regs[j] = v as i64;
                }
                // Reduction counters restart for this output element.
                for (j, r) in ridx.iter_mut().enumerate() {
                    *r = 0;
                    regs[m + j] = 0;
                }
                self.run_instrs(self.first_at_level[d + 1], &mut regs, &mut poison);
            }
            // Hoisted guards: a clipped spatial-only guard zeroes the whole
            // reduction (every term would have been skipped).
            if self.spatial_guards.iter().any(|&g| poison[g]) {
                *slot = 0.0;
                continue;
            }
            let mut acc = 0.0f32;
            for rflat in 0..reduce_total {
                if rflat > 0 {
                    let d = advance(&mut ridx, &self.reduce_dims);
                    for (j, &v) in ridx.iter().enumerate().skip(d) {
                        regs[m + j] = v as i64;
                    }
                    self.run_instrs(self.first_at_level[m + d + 1], &mut regs, &mut poison);
                }
                if self.reduce_guards.iter().any(|&g| poison[g]) {
                    continue;
                }
                let mut product = 1.0f32;
                let mut clipped = false;
                'operands: for (op, data) in self.operands.iter().zip(&sources) {
                    let mut off = 0usize;
                    for ax in &op.axes {
                        let v = regs[ax.reg];
                        if poison[ax.reg] || v < 0 || v >= ax.dim {
                            clipped = true;
                            break 'operands;
                        }
                        off += v as usize * ax.stride;
                    }
                    product *= data[off];
                }
                if !clipped {
                    acc += product;
                }
            }
            *slot = acc;
        }
    }
}

impl<'k> CompiledKernel<'k> {
    /// Compiles `kernel`, falling back to the reference interpreter when a
    /// stage is not compilable.
    pub fn new(kernel: &'k Kernel) -> Self {
        CompiledKernel {
            kernel,
            stages: compile_kernel(kernel),
        }
    }

    /// `true` when every stage runs the stride-compiled fast path.
    pub fn is_compiled(&self) -> bool {
        self.stages.is_some()
    }

    /// Executes the kernel; bit-identical to
    /// [`Kernel::execute_reference`].
    ///
    /// # Panics
    ///
    /// Panics when tensor shapes disagree with the kernel's declared shapes.
    pub fn execute(&self, input: &Tensor, weights: &[Tensor]) -> Tensor {
        let Some(stages) = &self.stages else {
            return self.kernel.execute_reference(input, weights);
        };
        let kernel = self.kernel;
        assert_eq!(input.shape(), &kernel.input_shape[..], "input shape");
        assert_eq!(weights.len(), kernel.weight_shapes.len(), "weight count");
        for (w, s) in weights.iter().zip(&kernel.weight_shapes) {
            assert_eq!(w.shape(), &s[..], "weight shape");
        }

        let mut buffers: Vec<Tensor> = Vec::with_capacity(stages.len());
        for (program, stage) in stages.iter().zip(&kernel.stages) {
            let mut out = Tensor::zeros(&stage.shape());
            program.execute(out.data_mut(), input, weights, &buffers);
            buffers.push(out);
        }
        let last = buffers.pop().expect("at least one stage");
        syno_tensor::ops::permute(&last, &kernel.output_perm)
    }
}
