//! Stride-compiled execution of lowered kernels.
//!
//! The reference interpreter in [`crate::kernel`] re-walks each operand's
//! [`ExprArena`] index-expression tree for **every element** of every stage
//! — a recursive descent with a symbolic [`Size`](syno_core::size::Size)
//! evaluation at each node. This module compiles each [`Stage`] once into a
//! flat program:
//!
//! * every expression node becomes one instruction over an `i64` register
//!   file, with all symbolic sizes evaluated to constants at compile time;
//! * every instruction carries a *level* — one past the deepest loop
//!   (spatial then reduction, in interpreter order) it depends on — and the
//!   instruction list is sorted by level, so when loop `d` ticks only the
//!   suffix `first_at_level[d + 1]..` is re-evaluated (the "incremental per
//!   loop level" evaluation);
//! * `Unfold` clips become per-register poison flags that propagate through
//!   dependent instructions, exactly mirroring the `Option` threading of
//!   [`ExprArena::eval`];
//! * [`Stage::guards`] whose registers depend only on spatial loops are
//!   **hoisted**: they are checked once per output element, skipping the
//!   entire reduction nest (which would have contributed zero anyway).
//!
//! Two further passes run at compile (record) time:
//!
//! * **View fusion** — a stage that is a pure view (single operand, no
//!   reduction, no guards) read by exactly one consumer is *fused into* that
//!   consumer: the consumer's operand access composes the view's index
//!   expressions directly (binding the view's loop atoms to the consumer's
//!   index registers), and the view's buffer is never materialized. Fusion
//!   chains through stacked views. The elided buffer's bounds survive as
//!   explicit checks: the consumer-level bounds still *clip* the term (as
//!   reading the buffer out of range did), while deeper bounds *zero* the
//!   factor (the elided buffer stored `0.0` there) — preserving bit
//!   identity including signed-zero behavior.
//! * **Innermost specialization** — when every operand's index registers
//!   are affine in the innermost loop counter and every relevant guard is
//!   invariant to it (decided by a compile-time slope analysis), the
//!   innermost loop runs as a tight constant-stride loop: bounds are checked
//!   once at the run's endpoints and the register file is bypassed
//!   entirely. Runs that straddle a clip boundary fall back to the general
//!   per-iteration body, so order — and therefore every bit — is preserved.
//!
//! Iteration order — and therefore FP summation order — is identical to the
//! reference interpreter, so compiled and interpreted execution are
//! **bit-identical**; the differential test suite pins this. A stage whose
//! expressions cannot be compiled (an atom outside the stage's loops, which
//! a well-formed lowering never produces) falls back to the reference
//! interpreter for the whole kernel.

use crate::kernel::{Kernel, OperandRef, Stage};
use syno_core::expr::{ExprArena, ExprId, ExprNode};
use syno_tensor::Tensor;

use std::collections::HashMap;

/// One compiled expression node. `dst`/`src` index the stage's register
/// file; all block/stride/window sizes are pre-evaluated constants.
#[derive(Clone, Copy, Debug)]
enum Instr {
    /// `r[dst] = block * r[lhs] + r[rhs]`.
    Affine { dst: usize, lhs: usize, rhs: usize, block: i64 },
    /// `r[dst] = r[src].div_euclid(block)`.
    Div { dst: usize, src: usize, block: i64 },
    /// `r[dst] = r[src].rem_euclid(block)`.
    Mod { dst: usize, src: usize, block: i64 },
    /// `r[dst] = (r[src] + 1).rem_euclid(modulus)`.
    Shift { dst: usize, src: usize, modulus: i64 },
    /// `r[dst] = factor * r[src]`.
    Mul { dst: usize, src: usize, factor: i64 },
    /// `r[dst] = r[base] + r[window] - half`, poisoned outside `[0, extent)`.
    Unfold {
        dst: usize,
        base: usize,
        window: usize,
        half: i64,
        extent: i64,
    },
    /// A size failed to evaluate at compile time: the register is always
    /// poisoned (the reference interpreter's per-element `None`).
    Poison { dst: usize },
}

/// One axis of one operand: which register indexes it, the axis extent to
/// bounds-check against, and the row-major stride to scale by.
#[derive(Clone, Copy, Debug)]
struct AxisRef {
    reg: usize,
    dim: i64,
    stride: usize,
}

/// Bounds of elided view buffers along a fusion chain.
#[derive(Clone, Debug)]
struct FusedAccess {
    /// Consumer-level bounds against the first elided buffer: `(reg, dim)`.
    /// Poison/out-of-range **clips** the term, exactly as reading the
    /// materialized buffer out of range did.
    outer: Vec<(usize, i64)>,
    /// Bounds against deeper elided buffers. Poison/out-of-range **zeroes**
    /// the factor — the elided buffer stored `0.0` at such points.
    mid: Vec<(usize, i64)>,
}

/// A compiled operand: its data source plus per-axis access program.
#[derive(Clone, Debug)]
struct OperandAccess {
    source: OperandRef,
    axes: Vec<AxisRef>,
    /// `Some` when this operand reads through one or more fused (elided)
    /// view stages; `axes` then index the chain's ultimate source, and an
    /// `axes` bounds failure zeroes the factor instead of clipping.
    fused: Option<FusedAccess>,
}

/// The compiled program for one [`Stage`].
#[derive(Clone, Debug)]
struct StageProgram {
    /// Spatial extents (the stage buffer shape).
    spatial_dims: Vec<usize>,
    /// Reduction extents.
    reduce_dims: Vec<usize>,
    /// Register count; registers `0..n_loops` are the loop counters
    /// (spatial then reduction, interpreter order).
    n_regs: usize,
    /// Instructions sorted ascending by level.
    instrs: Vec<Instr>,
    /// `first_at_level[d]`: index of the first instruction at level ≥ `d`.
    /// Levels run `0..=n_loops`; level `d` means "depends on loop `d − 1`".
    first_at_level: Vec<usize>,
    /// Compiled operand accesses.
    operands: Vec<OperandAccess>,
    /// Guard registers depending only on spatial loops — checked once per
    /// output element, skipping the whole reduction nest (the hoist).
    spatial_guards: Vec<usize>,
    /// Guard registers that bind reduction loops — checked per reduction
    /// point, as the interpreter does.
    reduce_guards: Vec<usize>,
    /// Innermost-loop specialization, when the slope analysis admits one.
    spec: Option<SpecInfo>,
}

/// Per-operand data for the innermost tight loop.
#[derive(Clone, Debug)]
struct OpSpec {
    /// Flat-offset advance per innermost tick: Σ axis-slope × stride.
    step: i64,
    /// d(axis register)/d(innermost counter), one per operand axis — used
    /// for the endpoint bounds check.
    axis_slopes: Vec<i64>,
    /// Slopes of the fused consumer-level bound registers.
    outer_slopes: Vec<i64>,
    /// Slopes of the fused deeper bound registers.
    mid_slopes: Vec<i64>,
}

/// An `Unfold` whose value moves with the innermost counter: its clip (and
/// thus every poison flag downstream of it) is only run-invariant when the
/// value stays inside `[0, extent)` across the whole run — checked at the
/// endpoints before any other classification.
#[derive(Clone, Copy, Debug)]
struct UnfoldCheck {
    reg: usize,
    extent: i64,
    slope: i64,
}

/// Compile-time proof that the innermost loop is dense affine: every
/// operand axis register moves linearly with the innermost counter and all
/// relevant guards' poison flags are invariant to it (conditional on the
/// unfold endpoint checks passing).
#[derive(Clone, Debug)]
struct SpecInfo {
    ops: Vec<OpSpec>,
    unfold_checks: Vec<UnfoldCheck>,
}

/// How one innermost run executes, decided per run at its `t = 0` state.
enum RunKind {
    /// Every term is clipped (or guarded out): the run contributes nothing.
    Skip,
    /// All bounds hold across the whole run: tight constant-stride loop.
    Tight,
    /// Mixed (a clip boundary crosses the run, or a factor zeroes): fall
    /// back to the general per-iteration body for this run only.
    PerIter,
}

/// A kernel compiled for repeated execution.
///
/// Built by [`Kernel::compile`]; execution is bit-identical to
/// [`Kernel::execute_reference`].
#[derive(Clone, Debug)]
pub struct CompiledKernel<'k> {
    kernel: &'k Kernel,
    /// `None` when some stage could not be compiled — execution falls back
    /// to the reference interpreter.
    stages: Option<Vec<StageProgram>>,
    /// `elided[i]`: stage `i` was fused into its sole consumer and is never
    /// materialized (a placeholder keeps the buffer indices aligned).
    elided: Vec<bool>,
}

struct StageCompiler<'a> {
    arena: &'a ExprArena,
    kernel: &'a Kernel,
    /// Atom index → loop register, for atoms bound by this stage's loops.
    atom_reg: HashMap<usize, usize>,
    /// Memoized expression registers (expressions are hash-consed, so one
    /// register per distinct subexpression per stage).
    expr_reg: HashMap<ExprId, usize>,
    /// Level per register (`0` = loop-invariant).
    reg_level: Vec<usize>,
    /// Emitted instructions with their levels, in postorder.
    emitted: Vec<(usize, Instr)>,
    n_loops: usize,
}

impl<'a> StageCompiler<'a> {
    fn new(kernel: &'a Kernel, stage: &Stage) -> Self {
        let mut atom_reg = HashMap::new();
        let n_loops = stage.loops.len() + stage.reduce.len();
        for (j, l) in stage.loops.iter().chain(&stage.reduce).enumerate() {
            atom_reg.insert(l.atom.index(), j);
        }
        StageCompiler {
            arena: &kernel.arena,
            kernel,
            atom_reg,
            expr_reg: HashMap::new(),
            // Loop-counter registers: register j is loop j, level j + 1.
            reg_level: (1..=n_loops).collect(),
            emitted: Vec::new(),
            n_loops,
        }
    }

    fn eval_size(&self, size: &syno_core::size::Size) -> Option<i64> {
        size.eval(&self.kernel.vars, self.kernel.valuation)
            .map(|v| v as i64)
    }

    fn fresh(&mut self, level: usize) -> usize {
        self.reg_level.push(level);
        self.reg_level.len() - 1
    }

    /// Compiles `expr`, returning its register, or `None` when the
    /// expression references an atom outside the stage's loops (fallback).
    fn compile_expr(&mut self, expr: ExprId) -> Option<usize> {
        if let Some(&reg) = self.expr_reg.get(&expr) {
            return Some(reg);
        }
        let reg = match *self.arena.node(expr) {
            ExprNode::Atom(a) => *self.atom_reg.get(&a.index())?,
            ExprNode::Affine { lhs, rhs, ref block } => {
                let block = block.clone();
                let l = self.compile_expr(lhs)?;
                let r = self.compile_expr(rhs)?;
                let level = self.reg_level[l].max(self.reg_level[r]);
                let dst = self.fresh(level);
                match self.eval_size(&block) {
                    Some(b) => self.emitted.push((
                        level,
                        Instr::Affine {
                            dst,
                            lhs: l,
                            rhs: r,
                            block: b,
                        },
                    )),
                    None => self.emitted.push((0, Instr::Poison { dst })),
                }
                dst
            }
            ExprNode::Div { inner, ref block } => {
                let block = block.clone();
                self.unary(inner, &block, |dst, src, b| Instr::Div { dst, src, block: b })?
            }
            ExprNode::Mod { inner, ref block } => {
                let block = block.clone();
                self.unary(inner, &block, |dst, src, b| Instr::Mod { dst, src, block: b })?
            }
            ExprNode::Shift { inner, ref domain } => {
                let domain = domain.clone();
                self.unary(inner, &domain, |dst, src, m| Instr::Shift {
                    dst,
                    src,
                    modulus: m,
                })?
            }
            ExprNode::Stride { inner, ref stride } => {
                let stride = stride.clone();
                self.unary(inner, &stride, |dst, src, f| Instr::Mul {
                    dst,
                    src,
                    factor: f,
                })?
            }
            ExprNode::Unfold {
                base,
                window,
                ref window_size,
            } => {
                let window_size = window_size.clone();
                let extent = self.arena.domain(base).clone();
                let b = self.compile_expr(base)?;
                let w = self.compile_expr(window)?;
                let level = self.reg_level[b].max(self.reg_level[w]);
                let dst = self.fresh(level);
                match (self.eval_size(&window_size), self.eval_size(&extent)) {
                    (Some(k), Some(n)) => self.emitted.push((
                        level,
                        Instr::Unfold {
                            dst,
                            base: b,
                            window: w,
                            half: k / 2,
                            extent: n,
                        },
                    )),
                    _ => self.emitted.push((0, Instr::Poison { dst })),
                }
                dst
            }
        };
        self.expr_reg.insert(expr, reg);
        Some(reg)
    }

    /// Emits a single-child instruction whose constant is `size`.
    fn unary(
        &mut self,
        inner: ExprId,
        size: &syno_core::size::Size,
        build: impl FnOnce(usize, usize, i64) -> Instr,
    ) -> Option<usize> {
        let src = self.compile_expr(inner)?;
        let level = self.reg_level[src];
        let dst = self.fresh(level);
        match self.eval_size(size) {
            Some(v) => self.emitted.push((level, build(dst, src, v))),
            None => self.emitted.push((0, Instr::Poison { dst })),
        }
        Some(dst)
    }

    /// Concrete shape of an operand source.
    fn operand_dims(&self, source: OperandRef) -> Vec<usize> {
        match source {
            OperandRef::Input => self.kernel.input_shape.clone(),
            OperandRef::Weight(w) => self.kernel.weight_shapes[w].clone(),
            OperandRef::Buffer(b) => self.kernel.stages[b].shape(),
        }
    }

    /// Compiles one operand access, fusing through view stages when legal.
    fn compile_operand(
        &mut self,
        op: &crate::kernel::Operand,
        fusible: &[bool],
        fused_away: &mut [bool],
    ) -> Option<OperandAccess> {
        let regs: Vec<usize> = op
            .indices
            .iter()
            .map(|&e| self.compile_expr(e))
            .collect::<Option<_>>()?;
        let dims = self.operand_dims(op.source);
        if let OperandRef::Buffer(b) = op.source {
            if fusible[b] {
                if let Some(access) = self.try_fuse(b, &regs, &dims, fusible, fused_away) {
                    return Some(access);
                }
            }
        }
        Some(OperandAccess {
            source: op.source,
            axes: direct_axes(&regs, &dims),
            fused: None,
        })
    }

    /// Attempts to fuse the read of view buffer `b`: compile the view's
    /// index expressions with its loop atoms bound to the consumer's index
    /// registers `regs`. On failure every side effect is rolled back and
    /// the caller materializes the buffer as before.
    fn try_fuse(
        &mut self,
        b: usize,
        regs: &[usize],
        dims: &[usize],
        fusible: &[bool],
        fused_away: &mut [bool],
    ) -> Option<OperandAccess> {
        let memo = self.expr_reg.clone();
        let atoms = self.atom_reg.clone();
        let emitted_len = self.emitted.len();
        let reg_len = self.reg_level.len();
        let mut mid = Vec::new();
        let mut chain = Vec::new();
        let kernel = self.kernel;
        let result = (|| {
            let mut buf = b;
            let mut regs = regs.to_vec();
            loop {
                let view = &kernel.stages[buf];
                if view.loops.len() != regs.len() {
                    return None;
                }
                for (l, &r) in view.loops.iter().zip(&regs) {
                    self.atom_reg.insert(l.atom.index(), r);
                }
                chain.push(buf);
                let vop = &view.operands[0];
                let vregs: Vec<usize> = vop
                    .indices
                    .iter()
                    .map(|&e| self.compile_expr(e))
                    .collect::<Option<_>>()?;
                let vdims = self.operand_dims(vop.source);
                if let OperandRef::Buffer(u) = vop.source {
                    if fusible[u] {
                        mid.extend(vregs.iter().zip(&vdims).map(|(&r, &d)| (r, d as i64)));
                        buf = u;
                        regs = vregs;
                        continue;
                    }
                }
                return Some((vop.source, direct_axes(&vregs, &vdims)));
            }
        })();
        self.expr_reg = memo;
        self.atom_reg = atoms;
        match result {
            Some((source, axes)) => {
                for &s in &chain {
                    fused_away[s] = true;
                }
                Some(OperandAccess {
                    source,
                    axes,
                    fused: Some(FusedAccess {
                        outer: regs
                            .iter()
                            .zip(dims)
                            .map(|(&r, &d)| (r, d as i64))
                            .collect(),
                        mid,
                    }),
                })
            }
            None => {
                self.emitted.truncate(emitted_len);
                self.reg_level.truncate(reg_len);
                None
            }
        }
    }

    fn finish(self, stage: &Stage, operands: Vec<OperandAccess>, guards: Vec<usize>) -> StageProgram {
        let mut emitted = self.emitted;
        // Stable by level: children precede parents within a level because
        // they were emitted first (postorder), and levels never decrease
        // from child to parent.
        emitted.sort_by_key(|&(level, _)| level);
        let mut first_at_level = vec![emitted.len(); self.n_loops + 2];
        for (i, &(level, _)) in emitted.iter().enumerate().rev() {
            for slot in first_at_level.iter_mut().take(level + 1) {
                *slot = i;
            }
        }
        let m = stage.loops.len();
        let (spatial_guards, reduce_guards) = guards
            .into_iter()
            .partition(|&reg| self.reg_level[reg] <= m);
        let mut program = StageProgram {
            spatial_dims: stage.loops.iter().map(|l| l.extent as usize).collect(),
            reduce_dims: stage.reduce.iter().map(|l| l.extent as usize).collect(),
            n_regs: self.reg_level.len(),
            instrs: emitted.into_iter().map(|(_, i)| i).collect(),
            first_at_level,
            operands,
            spatial_guards,
            reduce_guards,
            spec: None,
        };
        program.spec = analyze_spec(&program);
        program
    }
}

/// Zips index registers with source dims/strides into axis accesses.
fn direct_axes(regs: &[usize], dims: &[usize]) -> Vec<AxisRef> {
    let strides = Tensor::strides_of(dims);
    regs.iter()
        .zip(dims.iter().zip(&strides))
        .map(|(&reg, (&dim, &stride))| AxisRef {
            reg,
            dim: dim as i64,
            stride,
        })
        .collect()
}

/// Compile-time slope analysis: per register, `Some(s)` when its value is
/// affine in the innermost loop counter with slope `s` (`None` = non-affine)
/// plus whether its *poison flag* is invariant to that counter.
fn analyze_spec(p: &StageProgram) -> Option<SpecInfo> {
    let m = p.spatial_dims.len();
    let k = p.reduce_dims.len();
    let n_loops = m + k;
    if n_loops == 0 {
        return None;
    }
    let inner = n_loops - 1;
    let mut slope: Vec<Option<i64>> = vec![Some(0); p.n_regs];
    // `stable[r]`: the poison flag of `r` is run-invariant, *conditional on*
    // every collected unfold endpoint check passing.
    let mut stable = vec![true; p.n_regs];
    let mut unfold_checks = Vec::new();
    for (j, s) in slope.iter_mut().enumerate().take(n_loops) {
        *s = Some(i64::from(j == inner));
    }
    // Instructions are in dependency order (children precede parents).
    for instr in &p.instrs {
        match *instr {
            Instr::Affine { dst, lhs, rhs, block } => {
                slope[dst] = match (slope[lhs], slope[rhs]) {
                    (Some(a), Some(b)) => Some(block * a + b),
                    _ => None,
                };
                stable[dst] = stable[lhs] && stable[rhs];
            }
            Instr::Div { dst, src, .. } | Instr::Mod { dst, src, .. } | Instr::Shift { dst, src, .. } => {
                slope[dst] = (slope[src] == Some(0)).then_some(0);
                stable[dst] = stable[src];
            }
            Instr::Mul { dst, src, factor } => {
                slope[dst] = slope[src].map(|s| factor * s);
                stable[dst] = stable[src];
            }
            Instr::Unfold { dst, base, window, extent, .. } => {
                slope[dst] = match (slope[base], slope[window]) {
                    (Some(a), Some(b)) => Some(a + b),
                    _ => None,
                };
                stable[dst] = stable[base] && stable[window] && slope[dst].is_some();
                // A moving clip window stays run-invariant only while the
                // value holds inside [0, extent) — endpoint-checked per run.
                if stable[dst] {
                    if let Some(s) = slope[dst] {
                        if s != 0 {
                            unfold_checks.push(UnfoldCheck {
                                reg: dst,
                                extent,
                                slope: s,
                            });
                        }
                    }
                }
            }
            Instr::Poison { dst } => {
                slope[dst] = Some(0);
                stable[dst] = true; // constantly poisoned
            }
        }
    }
    // Guards evaluated inside the innermost loop only contribute their
    // poison flag, which must be run-invariant (given the checks).
    let hot_guards = if k > 0 { &p.reduce_guards } else { &p.spatial_guards };
    if !hot_guards.iter().all(|&g| stable[g]) {
        return None;
    }
    let mut ops = Vec::with_capacity(p.operands.len());
    for op in &p.operands {
        let bound_slopes = |bounds: &[(usize, i64)]| -> Option<Vec<i64>> {
            bounds
                .iter()
                .map(|&(r, _)| if stable[r] { slope[r] } else { None })
                .collect()
        };
        let (outer_slopes, mid_slopes) = match &op.fused {
            Some(f) => (bound_slopes(&f.outer)?, bound_slopes(&f.mid)?),
            None => (Vec::new(), Vec::new()),
        };
        let mut step = 0i64;
        let mut axis_slopes = Vec::with_capacity(op.axes.len());
        for ax in &op.axes {
            let s = slope[ax.reg]?;
            if !stable[ax.reg] {
                return None;
            }
            axis_slopes.push(s);
            step += s * ax.stride as i64;
        }
        ops.push(OpSpec {
            step,
            axis_slopes,
            outer_slopes,
            mid_slopes,
        });
    }
    Some(SpecInfo { ops, unfold_checks })
}

/// Compiles one stage; `None` requests interpreter fallback.
fn compile_stage(
    kernel: &Kernel,
    stage: &Stage,
    fusible: &[bool],
    fused_away: &mut [bool],
) -> Option<StageProgram> {
    let mut c = StageCompiler::new(kernel, stage);
    let mut operands = Vec::with_capacity(stage.operands.len());
    for op in &stage.operands {
        operands.push(c.compile_operand(op, fusible, fused_away)?);
    }
    let mut guards = Vec::with_capacity(stage.guards.len());
    for &g in &stage.guards {
        guards.push(c.compile_expr(g)?);
    }
    Some(c.finish(stage, operands, guards))
}

/// Compiles every stage of `kernel`, fusing single-consumer view stages into
/// their consumers; `None` requests interpreter fallback. The second return
/// marks stages elided by fusion.
fn compile_kernel(kernel: &Kernel) -> Option<(Vec<StageProgram>, Vec<bool>)> {
    let n = kernel.stages.len();
    let mut consumers = vec![0usize; n];
    for stage in &kernel.stages {
        for op in &stage.operands {
            if let OperandRef::Buffer(b) = op.source {
                consumers[b] += 1;
            }
        }
    }
    // A fusion source must be a pure view (single operand, no reduction, no
    // guards) with exactly one consumer — fusing a multi-consumer view would
    // duplicate its index work per consumer.
    let fusible: Vec<bool> = kernel
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            consumers[i] == 1
                && s.reduce.is_empty()
                && s.guards.is_empty()
                && s.operands.len() == 1
        })
        .collect();
    let mut fused_away = vec![false; n];
    let programs = kernel
        .stages
        .iter()
        .map(|stage| compile_stage(kernel, stage, &fusible, &mut fused_away))
        .collect::<Option<Vec<_>>>()?;
    Some((programs, fused_away))
}

/// Advances a little-endian-last odometer; returns the outermost changed
/// dim (everything deeper was reset to zero).
fn advance(idx: &mut [usize], dims: &[usize]) -> usize {
    for d in (0..idx.len()).rev() {
        idx[d] += 1;
        if idx[d] < dims[d] {
            return d;
        }
        idx[d] = 0;
    }
    0
}

impl StageProgram {
    /// Re-evaluates instructions from `from` (a `first_at_level` entry).
    fn run_instrs(&self, from: usize, regs: &mut [i64], poison: &mut [bool]) {
        for instr in &self.instrs[from..] {
            match *instr {
                Instr::Affine { dst, lhs, rhs, block } => {
                    regs[dst] = block * regs[lhs] + regs[rhs];
                    poison[dst] = poison[lhs] || poison[rhs];
                }
                Instr::Div { dst, src, block } => {
                    regs[dst] = regs[src].div_euclid(block);
                    poison[dst] = poison[src];
                }
                Instr::Mod { dst, src, block } => {
                    regs[dst] = regs[src].rem_euclid(block);
                    poison[dst] = poison[src];
                }
                Instr::Shift { dst, src, modulus } => {
                    regs[dst] = (regs[src] + 1).rem_euclid(modulus);
                    poison[dst] = poison[src];
                }
                Instr::Mul { dst, src, factor } => {
                    regs[dst] = factor * regs[src];
                    poison[dst] = poison[src];
                }
                Instr::Unfold {
                    dst,
                    base,
                    window,
                    half,
                    extent,
                } => {
                    let v = regs[base] + regs[window] - half;
                    regs[dst] = v;
                    poison[dst] = poison[base] || poison[window] || v < 0 || v >= extent;
                }
                Instr::Poison { dst } => poison[dst] = true,
            }
        }
    }

    /// One reduction term at the current register state: the product of all
    /// operand reads, honoring clip (skip) and fused zero-clip semantics.
    #[inline]
    fn accumulate_term(&self, sources: &[&[f32]], regs: &[i64], poison: &[bool], acc: &mut f32) {
        let mut product = 1.0f32;
        let mut clipped = false;
        'operands: for (op, data) in self.operands.iter().zip(sources) {
            let mut zero = false;
            if let Some(f) = &op.fused {
                for &(r, dim) in &f.outer {
                    let v = regs[r];
                    if poison[r] || v < 0 || v >= dim {
                        clipped = true;
                        break 'operands;
                    }
                }
                for &(r, dim) in &f.mid {
                    let v = regs[r];
                    if poison[r] || v < 0 || v >= dim {
                        zero = true;
                        break;
                    }
                }
            }
            let mut off = 0usize;
            if !zero {
                for ax in &op.axes {
                    let v = regs[ax.reg];
                    if poison[ax.reg] || v < 0 || v >= ax.dim {
                        if op.fused.is_some() {
                            // The elided view stored 0.0 at clipped points.
                            zero = true;
                            break;
                        }
                        clipped = true;
                        break 'operands;
                    }
                    off += v as usize * ax.stride;
                }
            }
            product *= if zero { 0.0 } else { data[off] };
        }
        if !clipped {
            *acc += product;
        }
    }

    /// Classifies one innermost run of `t_len` iterations at its `t = 0`
    /// register state, filling `offs` with per-operand (base offset, step)
    /// when the run is tight. `hot_guards` are the guards evaluated inside
    /// the innermost loop (reduce guards, or spatial guards for pure maps).
    fn classify_run(
        &self,
        spec: &SpecInfo,
        hot_guards: &[usize],
        regs: &[i64],
        poison: &[bool],
        t_len: i64,
        offs: &mut Vec<(i64, i64)>,
    ) -> RunKind {
        // Moving unfold clips first: while an unfold value stays inside its
        // window, every poison flag is run-invariant and the `t = 0` flags
        // below can be trusted; once it crosses the boundary mid-run, only
        // the general per-iteration body is faithful.
        for c in &spec.unfold_checks {
            let v0 = regs[c.reg];
            let v_last = v0 + c.slope * (t_len - 1);
            if v0 < 0 || v0 >= c.extent || v_last < 0 || v_last >= c.extent {
                return RunKind::PerIter;
            }
        }
        if hot_guards.iter().any(|&g| poison[g]) {
            return RunKind::Skip;
        }
        offs.clear();
        let mut per_iter = false;
        let in_run = |reg: usize, s: i64, dim: i64| {
            let v0 = regs[reg];
            let v_last = v0 + s * (t_len - 1);
            v0 >= 0 && v0 < dim && v_last >= 0 && v_last < dim
        };
        for (op, os) in self.operands.iter().zip(&spec.ops) {
            let fused = op.fused.is_some();
            if let Some(f) = &op.fused {
                for (&(r, dim), &s) in f.outer.iter().zip(&os.outer_slopes) {
                    if poison[r] {
                        // Consumer-level clip, invariant over the run.
                        return RunKind::Skip;
                    }
                    if !in_run(r, s, dim) {
                        per_iter = true;
                    }
                }
                for (&(r, dim), &s) in f.mid.iter().zip(&os.mid_slopes) {
                    if poison[r] || !in_run(r, s, dim) {
                        per_iter = true;
                    }
                }
            }
            let mut off = 0i64;
            for (ax, &s) in op.axes.iter().zip(&os.axis_slopes) {
                if poison[ax.reg] {
                    if fused {
                        per_iter = true;
                        continue;
                    }
                    return RunKind::Skip;
                }
                if !in_run(ax.reg, s, ax.dim) {
                    // A clip boundary crosses the run.
                    per_iter = true;
                    continue;
                }
                off += regs[ax.reg] * ax.stride as i64;
            }
            offs.push((off, os.step));
        }
        if per_iter {
            RunKind::PerIter
        } else {
            RunKind::Tight
        }
    }

    /// The tight innermost loop: accumulates `t_len` terms whose operand
    /// offsets advance by a constant stride. `1.0 * x` and `x * y` match the
    /// general body's product fold bit-for-bit.
    #[inline]
    fn tight_reduce(&self, sources: &[&[f32]], offs: &[(i64, i64)], t_len: i64, acc: &mut f32) {
        match offs {
            [(o0, s0)] => {
                let d0 = sources[0];
                for t in 0..t_len {
                    *acc += d0[(o0 + t * s0) as usize];
                }
            }
            [(o0, s0), (o1, s1)] => {
                let (d0, d1) = (sources[0], sources[1]);
                for t in 0..t_len {
                    *acc += d0[(o0 + t * s0) as usize] * d1[(o1 + t * s1) as usize];
                }
            }
            _ => {
                for t in 0..t_len {
                    let mut product = 1.0f32;
                    for ((o, s), data) in offs.iter().zip(sources) {
                        product *= data[(o + t * s) as usize];
                    }
                    *acc += product;
                }
            }
        }
    }

    /// General per-iteration body for one innermost run (spec fallback for
    /// runs that straddle a clip boundary). Restores the `t = 0` register
    /// state on exit so subsequent runs see a consistent file.
    fn per_iter_run(
        &self,
        regs: &mut [i64],
        poison: &mut [bool],
        inner_reg: usize,
        inner_level: usize,
        t_len: i64,
        mut body: impl FnMut(&Self, &[i64], &[bool]),
    ) {
        for t in 0..t_len {
            if t > 0 {
                regs[inner_reg] = t;
                self.run_instrs(self.first_at_level[inner_level], regs, poison);
            }
            body(self, regs, poison);
        }
        if t_len > 1 {
            regs[inner_reg] = 0;
            self.run_instrs(self.first_at_level[inner_level], regs, poison);
        }
    }

    /// Executes the stage into `out` (zeroed, of the stage's spatial size).
    fn execute(
        &self,
        out: &mut [f32],
        input: &Tensor,
        weights: &[Tensor],
        buffers: &[Tensor],
    ) {
        let data_of = |source: OperandRef| -> &[f32] {
            match source {
                OperandRef::Input => input.data(),
                OperandRef::Weight(w) => weights[w].data(),
                OperandRef::Buffer(b) => buffers[b].data(),
            }
        };
        let sources: Vec<&[f32]> = self.operands.iter().map(|op| data_of(op.source)).collect();
        match &self.spec {
            Some(spec) if self.reduce_dims.last().copied().unwrap_or(0) > 1 => {
                self.execute_spec_reduce(out, &sources, spec)
            }
            Some(spec)
                if self.reduce_dims.is_empty()
                    && self.spatial_dims.last().copied().unwrap_or(0) > 1 =>
            {
                self.execute_spec_map(out, &sources, spec)
            }
            _ => self.execute_general(out, &sources),
        }
    }

    /// The fully general interpreter-order loop nest (also the dispatch
    /// fallback when the innermost extent makes specialization pointless).
    fn execute_general(&self, out: &mut [f32], sources: &[&[f32]]) {
        let m = self.spatial_dims.len();
        let k = self.reduce_dims.len();
        let spatial_total: usize = self.spatial_dims.iter().product::<usize>().max(1);
        let reduce_total: usize = self.reduce_dims.iter().product::<usize>().max(1);

        let mut regs = vec![0i64; self.n_regs];
        let mut poison = vec![false; self.n_regs];
        let mut sidx = vec![0usize; m];
        let mut ridx = vec![0usize; k];
        // All loop counters start at zero; evaluate everything once.
        self.run_instrs(0, &mut regs, &mut poison);

        for (flat, slot) in out.iter_mut().enumerate().take(spatial_total) {
            if flat > 0 {
                let d = advance(&mut sidx, &self.spatial_dims);
                for (j, &v) in sidx.iter().enumerate().skip(d) {
                    regs[j] = v as i64;
                }
                // Reduction counters restart for this output element.
                for (j, r) in ridx.iter_mut().enumerate() {
                    *r = 0;
                    regs[m + j] = 0;
                }
                self.run_instrs(self.first_at_level[d + 1], &mut regs, &mut poison);
            }
            // Hoisted guards: a clipped spatial-only guard zeroes the whole
            // reduction (every term would have been skipped).
            if self.spatial_guards.iter().any(|&g| poison[g]) {
                *slot = 0.0;
                continue;
            }
            let mut acc = 0.0f32;
            for rflat in 0..reduce_total {
                if rflat > 0 {
                    let d = advance(&mut ridx, &self.reduce_dims);
                    for (j, &v) in ridx.iter().enumerate().skip(d) {
                        regs[m + j] = v as i64;
                    }
                    self.run_instrs(self.first_at_level[m + d + 1], &mut regs, &mut poison);
                }
                if self.reduce_guards.iter().any(|&g| poison[g]) {
                    continue;
                }
                self.accumulate_term(sources, &regs, &poison, &mut acc);
            }
            *slot = acc;
        }
    }

    /// Specialized nest for stages with a reduction: the innermost reduction
    /// loop runs tight when its run is clean. Bit-identical to
    /// [`StageProgram::execute_general`] by construction.
    fn execute_spec_reduce(&self, out: &mut [f32], sources: &[&[f32]], spec: &SpecInfo) {
        let m = self.spatial_dims.len();
        let k = self.reduce_dims.len();
        let spatial_total: usize = self.spatial_dims.iter().product::<usize>().max(1);
        let outer_dims = &self.reduce_dims[..k - 1];
        let outer_total: usize = outer_dims.iter().product::<usize>().max(1);
        let t_len = self.reduce_dims[k - 1] as i64;
        let inner_reg = m + k - 1;
        let inner_level = m + k;

        let mut regs = vec![0i64; self.n_regs];
        let mut poison = vec![false; self.n_regs];
        let mut sidx = vec![0usize; m];
        let mut ridx = vec![0usize; k - 1];
        let mut offs: Vec<(i64, i64)> = Vec::with_capacity(self.operands.len());
        self.run_instrs(0, &mut regs, &mut poison);

        for (flat, slot) in out.iter_mut().enumerate().take(spatial_total) {
            if flat > 0 {
                let d = advance(&mut sidx, &self.spatial_dims);
                for (j, &v) in sidx.iter().enumerate().skip(d) {
                    regs[j] = v as i64;
                }
                for (j, r) in ridx.iter_mut().enumerate() {
                    *r = 0;
                    regs[m + j] = 0;
                }
                regs[inner_reg] = 0;
                self.run_instrs(self.first_at_level[d + 1], &mut regs, &mut poison);
            }
            if self.spatial_guards.iter().any(|&g| poison[g]) {
                *slot = 0.0;
                continue;
            }
            let mut acc = 0.0f32;
            for orflat in 0..outer_total {
                if orflat > 0 {
                    let d = advance(&mut ridx, outer_dims);
                    for (j, &v) in ridx.iter().enumerate().skip(d) {
                        regs[m + j] = v as i64;
                    }
                    // The innermost counter is pinned at 0 between runs.
                    self.run_instrs(self.first_at_level[m + d + 1], &mut regs, &mut poison);
                }
                match self.classify_run(spec, &self.reduce_guards, &regs, &poison, t_len, &mut offs)
                {
                    RunKind::Skip => {}
                    RunKind::Tight => self.tight_reduce(sources, &offs, t_len, &mut acc),
                    RunKind::PerIter => self.per_iter_run(
                        &mut regs,
                        &mut poison,
                        inner_reg,
                        inner_level,
                        t_len,
                        |p, regs, poison| {
                            if !p.reduce_guards.iter().any(|&g| poison[g]) {
                                p.accumulate_term(sources, regs, poison, &mut acc);
                            }
                        },
                    ),
                }
            }
            *slot = acc;
        }
    }

    /// Specialized nest for pure-map stages (no reduction): the innermost
    /// spatial loop writes a contiguous run of output slots.
    fn execute_spec_map(&self, out: &mut [f32], sources: &[&[f32]], spec: &SpecInfo) {
        let m = self.spatial_dims.len();
        let outer_dims = &self.spatial_dims[..m - 1];
        let outer_total: usize = outer_dims.iter().product::<usize>().max(1);
        let t_len = self.spatial_dims[m - 1] as i64;
        let inner_reg = m - 1;
        let inner_level = m;

        let mut regs = vec![0i64; self.n_regs];
        let mut poison = vec![false; self.n_regs];
        let mut sidx = vec![0usize; m - 1];
        let mut offs: Vec<(i64, i64)> = Vec::with_capacity(self.operands.len());
        self.run_instrs(0, &mut regs, &mut poison);

        for (run, chunk) in out.chunks_exact_mut(t_len as usize).enumerate().take(outer_total) {
            if run > 0 {
                let d = advance(&mut sidx, outer_dims);
                for (j, &v) in sidx.iter().enumerate().skip(d) {
                    regs[j] = v as i64;
                }
                regs[inner_reg] = 0;
                self.run_instrs(self.first_at_level[d + 1], &mut regs, &mut poison);
            }
            match self.classify_run(spec, &self.spatial_guards, &regs, &poison, t_len, &mut offs) {
                RunKind::Skip => chunk.fill(0.0),
                RunKind::Tight => match offs.as_slice() {
                    [(o0, s0)] => {
                        let d0 = sources[0];
                        for (t, slot) in chunk.iter_mut().enumerate() {
                            *slot = 0.0 + d0[(o0 + t as i64 * s0) as usize];
                        }
                    }
                    _ => {
                        for (t, slot) in chunk.iter_mut().enumerate() {
                            let mut product = 1.0f32;
                            for ((o, s), data) in offs.iter().zip(sources) {
                                product *= data[(o + t as i64 * s) as usize];
                            }
                            *slot = 0.0 + product;
                        }
                    }
                },
                RunKind::PerIter => {
                    let mut t = 0usize;
                    self.per_iter_run(
                        &mut regs,
                        &mut poison,
                        inner_reg,
                        inner_level,
                        t_len,
                        |p, regs, poison| {
                            let mut acc = 0.0f32;
                            if !p.spatial_guards.iter().any(|&g| poison[g]) {
                                p.accumulate_term(sources, regs, poison, &mut acc);
                            }
                            chunk[t] = acc;
                            t += 1;
                        },
                    );
                }
            }
        }
    }
}

impl<'k> CompiledKernel<'k> {
    /// Compiles `kernel`, falling back to the reference interpreter when a
    /// stage is not compilable.
    pub fn new(kernel: &'k Kernel) -> Self {
        match compile_kernel(kernel) {
            Some((stages, elided)) => CompiledKernel {
                kernel,
                stages: Some(stages),
                elided,
            },
            None => CompiledKernel {
                kernel,
                stages: None,
                elided: vec![false; kernel.stages.len()],
            },
        }
    }

    /// `true` when every stage runs the stride-compiled fast path.
    pub fn is_compiled(&self) -> bool {
        self.stages.is_some()
    }

    /// Number of view stages fused into their consumers (never
    /// materialized).
    pub fn fused_stages(&self) -> usize {
        self.elided.iter().filter(|&&e| e).count()
    }

    /// Number of stages whose innermost loop compiled to the tight
    /// constant-stride form (excludes elided stages).
    pub fn specialized_stages(&self) -> usize {
        let Some(stages) = &self.stages else { return 0 };
        stages
            .iter()
            .zip(&self.elided)
            .filter(|(p, &e)| !e && p.spec.is_some())
            .count()
    }

    /// Executes the kernel; bit-identical to
    /// [`Kernel::execute_reference`].
    ///
    /// # Panics
    ///
    /// Panics when tensor shapes disagree with the kernel's declared shapes.
    pub fn execute(&self, input: &Tensor, weights: &[Tensor]) -> Tensor {
        let Some(stages) = &self.stages else {
            return self.kernel.execute_reference(input, weights);
        };
        let kernel = self.kernel;
        assert_eq!(input.shape(), &kernel.input_shape[..], "input shape");
        assert_eq!(weights.len(), kernel.weight_shapes.len(), "weight count");
        for (w, s) in weights.iter().zip(&kernel.weight_shapes) {
            assert_eq!(w.shape(), &s[..], "weight shape");
        }

        let mut buffers: Vec<Tensor> = Vec::with_capacity(stages.len());
        for ((program, stage), &elided) in stages.iter().zip(&kernel.stages).zip(&self.elided) {
            if elided {
                // Fused into its consumer; placeholder keeps indices aligned.
                buffers.push(Tensor::zeros(&[0]));
                continue;
            }
            let mut out = Tensor::zeros(&stage.shape());
            program.execute(out.data_mut(), input, weights, &buffers);
            buffers.push(out);
        }
        let last = buffers.pop().expect("at least one stage");
        syno_tensor::ops::permute(&last, &kernel.output_perm)
    }
}
