//! The loop-nest kernel IR (the paper's TVM-TE lowering target, §8).
//!
//! A [`Kernel`] is a sequence of [`Stage`]s; each stage is a perfect loop
//! nest
//!
//! ```text
//! for (spatial loops)            // one per output dimension
//!   for (reduction loops)        // summed
//!     out[spatial] += Π operand[index exprs]
//! ```
//!
//! where index expressions live in a (kernel-owned) coordinate-expression
//! arena: the same [`ExprArena`] machinery the synthesis core uses, so the
//! out-of-bounds clipping semantics of `Unfold` carry over unchanged. The
//! *materialized reduction* optimization (§8, Fig. 4) shows up as multiple
//! stages: an early stage sums a sub-graph into an intermediate buffer that
//! later stages index by coarser expressions.

use syno_core::expr::{AtomId, ExprArena, ExprId};
use syno_core::var::VarTable;
use syno_tensor::Tensor;

use std::fmt;
use std::sync::Arc;

/// What a stage operand reads from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OperandRef {
    /// The operator's data input tensor.
    Input,
    /// Weight tensor `w` of the operator.
    Weight(usize),
    /// The output buffer of an earlier stage.
    Buffer(usize),
}

/// One multiplicand in a stage body.
#[derive(Clone, Debug)]
pub struct Operand {
    /// The tensor being read.
    pub source: OperandRef,
    /// Index expression per dimension of the source.
    pub indices: Vec<ExprId>,
}

/// One loop of a stage.
#[derive(Clone, Debug)]
pub struct LoopDef {
    /// The iterator atom (in the kernel arena).
    pub atom: AtomId,
    /// Concrete extent.
    pub extent: u64,
}

/// One perfect loop nest writing one buffer.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Spatial loops — one per dimension of the stage's buffer.
    pub loops: Vec<LoopDef>,
    /// Reduction loops (summed).
    pub reduce: Vec<LoopDef>,
    /// Multiplicands.
    pub operands: Vec<Operand>,
    /// Clip predicates: expressions that must evaluate (an `Unfold` clip
    /// makes evaluation fail) for an iteration point to contribute. These
    /// arise from coordinates discarded by `Expand` — no operand reads them,
    /// but their zero-padding window still gates the sum.
    pub guards: Vec<ExprId>,
    /// Expressions (in the pre-substitution atom space) by which *later*
    /// stages index this buffer; parallel to `loops`.
    pub output_key: Vec<ExprId>,
}

impl Stage {
    /// Iteration count of the nest.
    pub fn iterations(&self) -> u128 {
        let spatial: u128 = self.loops.iter().map(|l| l.extent as u128).product();
        let red: u128 = self.reduce.iter().map(|l| l.extent as u128).product();
        spatial * red
    }

    /// FLOPs: one multiply per extra operand plus one accumulate, per
    /// iteration point (matches `syno_core::analysis::naive_flops` for
    /// single-stage kernels).
    pub fn flops(&self) -> u128 {
        self.iterations() * self.operands.len().max(1) as u128
    }

    /// Buffer shape.
    pub fn shape(&self) -> Vec<usize> {
        self.loops.iter().map(|l| l.extent as usize).collect()
    }
}

/// A lowered, concrete-shape kernel.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Kernel-owned expression arena (graph arena plus substitution atoms).
    pub arena: ExprArena,
    /// Variable table used to evaluate symbolic sizes.
    pub vars: Arc<VarTable>,
    /// Which valuation concretized the shapes.
    pub valuation: usize,
    /// Concrete input shape.
    pub input_shape: Vec<usize>,
    /// Concrete weight shapes.
    pub weight_shapes: Vec<Vec<usize>>,
    /// Concrete output shape.
    pub output_shape: Vec<usize>,
    /// Stages in execution order; the last one produces the output.
    pub stages: Vec<Stage>,
    /// Maps output dimension `d` to the last stage's loop index producing it.
    pub output_perm: Vec<usize>,
}

impl Kernel {
    /// Total FLOPs across stages — the §8 materialized-reduction objective.
    pub fn flops(&self) -> u128 {
        self.stages.iter().map(Stage::flops).sum()
    }

    /// Total intermediate-buffer elements written (memory traffic proxy).
    pub fn intermediate_elems(&self) -> u128 {
        self.stages
            .iter()
            .take(self.stages.len().saturating_sub(1))
            .map(|s| s.shape().iter().map(|&d| d as u128).product::<u128>())
            .sum()
    }

    /// Compiles the kernel's index expressions into stride programs for
    /// repeated execution (see [`crate::plan`]).
    pub fn compile(&self) -> crate::plan::CompiledKernel<'_> {
        crate::plan::CompiledKernel::new(self)
    }

    /// Executes the kernel on concrete tensors via the stride-compiled
    /// engine (bit-identical to [`Kernel::execute_reference`]).
    ///
    /// # Panics
    ///
    /// Panics when tensor shapes disagree with the kernel's declared shapes.
    pub fn execute(&self, input: &Tensor, weights: &[Tensor]) -> Tensor {
        self.compile().execute(input, weights)
    }

    /// Executes the kernel with the tree-walking reference interpreter:
    /// every index expression is re-evaluated per element through
    /// [`ExprArena::eval`]. Kept verbatim as the ground truth the compiled
    /// engine is differentially tested against.
    ///
    /// # Panics
    ///
    /// Panics when tensor shapes disagree with the kernel's declared shapes.
    pub fn execute_reference(&self, input: &Tensor, weights: &[Tensor]) -> Tensor {
        assert_eq!(input.shape(), &self.input_shape[..], "input shape");
        assert_eq!(weights.len(), self.weight_shapes.len(), "weight count");
        for (w, s) in weights.iter().zip(&self.weight_shapes) {
            assert_eq!(w.shape(), &s[..], "weight shape");
        }

        let mut buffers: Vec<Tensor> = Vec::with_capacity(self.stages.len());
        let mut atom_values = vec![0i64; self.arena.atom_count()];
        for stage in &self.stages {
            let shape = stage.shape();
            let mut out = Tensor::zeros(&shape);
            let spatial_total: usize = shape.iter().product::<usize>().max(1);
            let reduce_dims: Vec<u64> = stage.reduce.iter().map(|l| l.extent).collect();
            let reduce_total: u64 = reduce_dims.iter().product::<u64>().max(1);

            for flat in 0..spatial_total {
                // Decode spatial index into atom values.
                let mut rem = flat;
                for (d, l) in stage.loops.iter().enumerate().rev() {
                    let extent = shape[d].max(1);
                    atom_values[l.atom.index()] = (rem % extent) as i64;
                    rem /= extent;
                }
                let mut acc = 0.0f32;
                for rflat in 0..reduce_total {
                    let mut rrem = rflat;
                    for (d, l) in stage.reduce.iter().enumerate().rev() {
                        let extent = reduce_dims[d].max(1);
                        atom_values[l.atom.index()] = (rrem % extent) as i64;
                        rrem /= extent;
                    }
                    let mut product = 1.0f32;
                    let mut clipped = false;
                    for &guard in &stage.guards {
                        if self
                            .arena
                            .eval(guard, &atom_values, &self.vars, self.valuation)
                            .is_none()
                        {
                            clipped = true;
                            break;
                        }
                    }
                    for op in &stage.operands {
                        if clipped {
                            break;
                        }
                        let (data, dims): (&[f32], Vec<usize>) = match op.source {
                            OperandRef::Input => (input.data(), self.input_shape.clone()),
                            OperandRef::Weight(w) => {
                                (weights[w].data(), self.weight_shapes[w].clone())
                            }
                            OperandRef::Buffer(b) => {
                                (buffers[b].data(), buffers[b].shape().to_vec())
                            }
                        };
                        let mut off = 0usize;
                        let strides = Tensor::strides_of(&dims);
                        for (expr, (&dim, &stride)) in
                            op.indices.iter().zip(dims.iter().zip(&strides))
                        {
                            match self.arena.eval(*expr, &atom_values, &self.vars, self.valuation)
                            {
                                Some(v) if v >= 0 && (v as usize) < dim => {
                                    off += v as usize * stride;
                                }
                                _ => {
                                    clipped = true;
                                    break;
                                }
                            }
                        }
                        if clipped {
                            break;
                        }
                        product *= data[off];
                    }
                    if !clipped {
                        acc += product;
                    }
                }
                out.data_mut()[flat] = acc;
            }
            buffers.push(out);
        }

        // Permute the last buffer's axes into output-dimension order.
        let last = buffers.pop().expect("at least one stage");
        syno_tensor::ops::permute(&last, &self.output_perm)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel: input {:?} -> output {:?}, {} stage(s), {} flops",
            self.input_shape,
            self.output_shape,
            self.stages.len(),
            self.flops()
        )?;
        for (i, s) in self.stages.iter().enumerate() {
            writeln!(
                f,
                "  stage {i}: shape {:?}, reduce {:?}, {} operand(s)",
                s.shape(),
                s.reduce.iter().map(|l| l.extent).collect::<Vec<_>>(),
                s.operands.len()
            )?;
        }
        Ok(())
    }
}
