//! Pins that the stride-compiled engine's optimizations actually *fire* —
//! not just that they are bit-identical when they do.
//!
//! * **Innermost specialization** must engage on every stage of the named
//!   operators and of the staged (materialized-reduction) lowering: their
//!   innermost dimensions are dense affine walks, which is the entire point
//!   of the tight-loop pass.
//! * **View fusion** must elide pure view stages into their consumers.
//!   pGraph lowering never emits intermediate view stages (reduction groups
//!   always reduce), so the fusion fixtures build [`Kernel`]s directly: a
//!   shift view chained under an unfold view under a reducing consumer.
//!   Fused execution is asserted bit-identical to the reference
//!   interpreter, including the clip cases where the materialized view
//!   buffer would have held `+0.0` and the fused read must substitute the
//!   same zero (not skip the term).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use syno_core::expr::{AtomKind, ExprArena};
use syno_core::prelude::*;
use syno_ir::kernel::{LoopDef, Operand, OperandRef};
use syno_ir::{lower_naive, lower_optimized, Kernel, Stage};
use syno_tensor::{init, Tensor};

fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs: {x:?} vs {y:?}"
        );
    }
}

/// The named operators' innermost dimensions are dense affine walks, so
/// every stage of every lowering must take the specialized tight-loop path
/// (conv windows included — their moving clips are endpoint-checked).
#[test]
fn named_operators_specialize_every_stage() {
    let mut vars = VarTable::new();
    let n = vars.declare("N", VarKind::Primary);
    let cin = vars.declare("Cin", VarKind::Primary);
    let cout = vars.declare("Cout", VarKind::Primary);
    let h = vars.declare("H", VarKind::Primary);
    let w = vars.declare("W", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    let s = vars.declare("s", VarKind::Coefficient);
    vars.push_valuation(vec![(n, 2), (cin, 4), (cout, 4), (h, 8), (w, 8), (k, 3), (s, 2)]);
    let vars = vars.into_shared();
    for (name, graph) in [
        ("conv2d", ops::conv2d(&vars, n, cin, cout, h, w, k).unwrap()),
        ("matmul", ops::matmul(&vars, cin, cout, h).unwrap()),
        ("avg_pool1d", ops::avg_pool1d(&vars, h, s).unwrap()),
        ("depthwise", ops::depthwise_conv2d(&vars, n, cin, h, w, k).unwrap()),
    ] {
        for (mode, kernel) in [
            ("naive", lower_naive(&graph, 0).unwrap()),
            ("optimized", lower_optimized(&graph, 0).unwrap()),
        ] {
            let compiled = kernel.compile();
            assert!(compiled.is_compiled(), "{name}/{mode} compiles");
            assert_eq!(
                compiled.specialized_stages(),
                kernel.stages.len(),
                "{name}/{mode}: every stage specializes"
            );
        }
    }
}

/// The Fig. 4 staged kernel: both materialized stages specialize; there is
/// no pure view stage, so fusion correctly finds nothing to elide.
#[test]
fn staged_lowering_specializes_both_stages() {
    let mut vars = VarTable::new();
    let h = vars.declare("H", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    let s = vars.declare("s", VarKind::Coefficient);
    vars.push_valuation(vec![(h, 64), (k, 5), (s, 4)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![Size::var(h)]),
        TensorShape::new(vec![Size::var(h).div(&Size::var(s))]),
    );
    let g = PGraph::new(Arc::clone(&vars), spec);
    let i = g.frontier()[0];
    let g = g
        .apply(&Action::Reduce {
            domain: Size::var(vars.find("k").unwrap()),
        })
        .unwrap();
    let rk = g.last_node().unwrap().produced[0];
    let g = g.apply(&Action::Unfold { base: i, window: rk }).unwrap();
    let u = g.last_node().unwrap().produced[0];
    let g = g
        .apply(&Action::Reduce {
            domain: Size::var(vars.find("s").unwrap()),
        })
        .unwrap();
    let rs = g.last_node().unwrap().produced[0];
    let g = g.apply(&Action::Split { lhs: u, rhs: rs }).unwrap();
    assert!(g.is_complete());

    let kernel = lower_optimized(&g, 0).unwrap();
    assert!(kernel.stages.len() > 1, "fixture is staged");
    let compiled = kernel.compile();
    assert!(compiled.is_compiled());
    assert_eq!(compiled.specialized_stages(), kernel.stages.len());
    assert_eq!(compiled.fused_stages(), 0, "no view stages to fuse");
}

/// Builds the view-chain fixture:
///
/// ```text
/// b0[i]    = input[view0(i)]          (pure view, 1 consumer)
/// b1[j, w] = b0[unfold(j, w)]         (pure view, clips at the edges)
/// out[o]   = Σ_r b1[o, r] · wt0[r]    (reducing consumer)
/// ```
///
/// with `view0` either a total `Shift` (whose slope defeats
/// specialization, exercising fusion on the general path) or the identity
/// (keeping the chain affine so fusion and specialization compose).
fn view_chain_kernel(shifted: bool) -> Kernel {
    const N: u64 = 16;
    const K: u64 = 3;
    let mut vars = VarTable::new();
    vars.push_valuation(vec![]);
    let mut arena = ExprArena::new();

    let i = arena.atom(AtomKind::Output, Size::constant(N));
    let e_i = arena.expr_atom(i);
    let view0 = if shifted { arena.shift(e_i) } else { e_i };
    let stage0 = Stage {
        loops: vec![LoopDef { atom: i, extent: N }],
        reduce: vec![],
        operands: vec![Operand {
            source: OperandRef::Input,
            indices: vec![view0],
        }],
        guards: vec![],
        output_key: vec![e_i],
    };

    let j = arena.atom(AtomKind::Output, Size::constant(N));
    let w = arena.atom(AtomKind::Output, Size::constant(K));
    let e_j = arena.expr_atom(j);
    let e_w = arena.expr_atom(w);
    let unfold = arena.unfold(e_j, e_w);
    let stage1 = Stage {
        loops: vec![
            LoopDef { atom: j, extent: N },
            LoopDef { atom: w, extent: K },
        ],
        reduce: vec![],
        operands: vec![Operand {
            source: OperandRef::Buffer(0),
            indices: vec![unfold],
        }],
        guards: vec![],
        output_key: vec![e_j, e_w],
    };

    let o = arena.atom(AtomKind::Output, Size::constant(N));
    let r = arena.atom(AtomKind::Reduce, Size::constant(K));
    let e_o = arena.expr_atom(o);
    let e_r = arena.expr_atom(r);
    let stage2 = Stage {
        loops: vec![LoopDef { atom: o, extent: N }],
        reduce: vec![LoopDef { atom: r, extent: K }],
        operands: vec![
            Operand {
                source: OperandRef::Buffer(1),
                indices: vec![e_o, e_r],
            },
            Operand {
                source: OperandRef::Weight(0),
                indices: vec![e_r],
            },
        ],
        guards: vec![],
        output_key: vec![e_o],
    };

    Kernel {
        arena,
        vars: vars.into_shared(),
        valuation: 0,
        input_shape: vec![N as usize],
        weight_shapes: vec![vec![K as usize]],
        output_shape: vec![N as usize],
        stages: vec![stage0, stage1, stage2],
        output_perm: vec![0],
    }
}

fn assert_fused_matches_reference(kernel: &Kernel, seed: u64, what: &str) {
    let compiled = kernel.compile();
    assert!(compiled.is_compiled(), "{what}: compiles");
    assert_eq!(compiled.fused_stages(), 2, "{what}: both views elided");
    let mut rng = StdRng::seed_from_u64(seed);
    let input = init::uniform(&mut rng, &kernel.input_shape, -1.0, 1.0);
    let weights: Vec<Tensor> = kernel
        .weight_shapes
        .iter()
        .map(|s| init::uniform(&mut rng, s, -1.0, 1.0))
        .collect();
    let fused = compiled.execute(&input, &weights);
    let reference = kernel.execute_reference(&input, &weights);
    assert_bits_equal(&fused, &reference, what);
}

/// A shift view under an unfold view: the chain fuses (both views elided)
/// but the shifted index defeats slope analysis, so the fused consumer runs
/// the general per-point path — bit-identical to materializing the views.
#[test]
fn shifted_view_chain_fuses_on_the_general_path() {
    let kernel = view_chain_kernel(true);
    let compiled = kernel.compile();
    assert_eq!(
        compiled.specialized_stages(),
        0,
        "shift under a moving unfold must defeat specialization"
    );
    assert_fused_matches_reference(&kernel, 11, "shifted view chain");
}

/// An identity view under an unfold view: the chain fuses *and* the
/// consumer stays affine, so fusion composes with the tight-loop
/// specialization (edge rows fall back per-iteration via unfold endpoint
/// checks; interior rows run the constant-stride loop).
#[test]
fn affine_view_chain_fuses_and_specializes() {
    let kernel = view_chain_kernel(false);
    let compiled = kernel.compile();
    assert_eq!(
        compiled.specialized_stages(),
        1,
        "the consumer stage specializes (elided views excluded)"
    );
    assert_fused_matches_reference(&kernel, 13, "affine view chain");
}

/// The fused zero-substitution semantics, pinned on exact values: where the
/// unfold clips, the materialized view buffer holds `+0.0`, and the fused
/// read must contribute the same zero *factor* (not skip the term).
#[test]
fn fused_clip_substitutes_zero_like_a_materialized_view() {
    let kernel = view_chain_kernel(false);
    let compiled = kernel.compile();
    let input = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[16]);
    // A negative weight so a skipped term (acc + nothing = +0.0 stays) and a
    // zero factor (0.0 · -1.0 = -0.0 enters the sum) would differ bitwise if
    // the whole row clipped; here interior taps dominate, so we pin values.
    let wt = Tensor::from_vec(vec![-1.0, 2.0, -1.0], &[3]);
    let fused = compiled.execute(&input, std::slice::from_ref(&wt));
    let reference = kernel.execute_reference(&input, std::slice::from_ref(&wt));
    assert_bits_equal(&fused, &reference, "clip semantics");
    // out[o] = -in[o-1] + 2·in[o] - in[o+1], clipped taps contributing 0.
    assert_eq!(fused.get(&[0]), 2.0 * 1.0 - 2.0);
    assert_eq!(fused.get(&[5]), -5.0 + 2.0 * 6.0 - 7.0);
    assert_eq!(fused.get(&[15]), -15.0 + 2.0 * 16.0);
}
