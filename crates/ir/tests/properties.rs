//! The differential-testing suite locking down the execution engine.
//!
//! Three engines implement the same operator semantics:
//!
//! 1. the **eager backend** (`syno-tensor` view ops + einsums, optionally on
//!    an autodiff tape),
//! 2. the **reference kernel interpreter** ([`Kernel::execute_reference`],
//!    per-element expression-tree walks), and
//! 3. the **stride-compiled kernel engine** ([`Kernel::compile`]).
//!
//! This suite pins their relationships on random valid pGraphs sampled by
//! the guided synthesis rollout:
//!
//! * compiled vs. reference kernel execution must be **bit-identical** (the
//!   compiled engine only changes *how* offsets are computed, never the FP
//!   summation order);
//! * the compiled tape engine vs. the naive reference tape must be
//!   bit-identical for values *and* gradients;
//! * the **data-parallel** tape engine is value-invisible: at
//!   `exec_threads` ∈ {1, 2, 4} a width-1 policy reproduces the serial
//!   reference bits and the pinned-width policy reproduces the
//!   single-thread pinned bits — values and gradients both (the
//!   [`ExecPolicy`] contract: thread count never moves a bit, only
//!   `reduce_width` does);
//! * eager vs. the kernel interpreters must agree element-for-element
//!   (within FP tolerance — materialized stages legitimately reorder sums);
//! * `Unfold` clip semantics survive in every engine, including the
//!   `Expand`-discarded-coordinate case that lowers to [`Stage::guards`]
//!   (both the hoisted spatial form and the reduction-bound form).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use syno_core::prelude::*;
use syno_ir::{eager, lower_naive, lower_optimized, Kernel};
use syno_tensor::{init, ExecPolicy, Tape, Tensor};

fn fixture_vars() -> (Arc<VarTable>, Vec<VarId>) {
    let mut vars = VarTable::new();
    let cin = vars.declare("Cin", VarKind::Primary);
    let cout = vars.declare("Cout", VarKind::Primary);
    let h = vars.declare("H", VarKind::Primary);
    let w = vars.declare("W", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    let s = vars.declare("s", VarKind::Coefficient);
    vars.push_valuation(vec![(cin, 4), (cout, 4), (h, 6), (w, 6), (k, 3), (s, 2)]);
    (vars.into_shared(), vec![cin, cout, h, w, k, s])
}

/// Random input/weight tensors for `graph` under valuation 0.
fn random_io(graph: &PGraph, seed: u64) -> (Tensor, Vec<Tensor>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let input_shape: Vec<usize> = graph
        .spec()
        .input
        .eval(graph.vars(), 0)
        .expect("input shape evaluates")
        .iter()
        .map(|&v| v as usize)
        .collect();
    let input = init::uniform(&mut rng, &input_shape, -1.0, 1.0);
    let weights: Vec<Tensor> = eager::weight_shapes(graph, 0)
        .expect("weight shapes evaluate")
        .iter()
        .map(|s| init::uniform(&mut rng, s, -1.0, 1.0))
        .collect();
    (input, weights)
}

fn assert_bits_equal(fast: &Tensor, slow: &Tensor, what: &str, graph: &PGraph) {
    assert_eq!(fast.shape(), slow.shape(), "{what} shape on\n{}", graph.render());
    for (i, (a, b)) in fast.data().iter().zip(slow.data()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: element {i} diverges ({a} vs {b}) on\n{}",
            graph.render()
        );
    }
}

fn assert_close_elementwise(a: &Tensor, b: &Tensor, tol: f32, what: &str, graph: &PGraph) {
    assert_eq!(a.shape(), b.shape(), "{what} shape on\n{}", graph.render());
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "{what}: element {i} diverges ({x} vs {y}) on\n{}",
            graph.render()
        );
    }
}

/// The full differential check for one graph: compiled-vs-reference kernels
/// are bit-identical (both lowerings), compiled-vs-reference tapes are
/// bit-identical (values and gradients), and the eager backend agrees with
/// the interpreters element-for-element.
fn assert_differential(graph: &PGraph, seed: u64) {
    let (input, weights) = random_io(graph, seed);

    let mut kernel_outputs: Vec<Tensor> = Vec::new();
    for (name, kernel) in [
        ("naive", lower_naive(graph, 0).expect("naive lowering")),
        ("optimized", lower_optimized(graph, 0).expect("optimized lowering")),
    ] {
        let compiled = kernel.compile();
        assert!(
            compiled.is_compiled(),
            "{name} kernel must take the stride-compiled path on\n{}",
            graph.render()
        );
        let fast = compiled.execute(&input, &weights);
        let slow = kernel.execute_reference(&input, &weights);
        assert_bits_equal(&fast, &slow, name, graph);
        kernel_outputs.push(fast);
    }
    assert_close_elementwise(
        &kernel_outputs[0],
        &kernel_outputs[1],
        1e-3,
        "naive vs optimized",
        graph,
    );

    // The eager backend (plain and taped, compiled and reference tapes).
    match eager::execute(graph, 0, &input, &weights) {
        Ok(eager_out) => {
            assert_close_elementwise(
                &eager_out,
                &kernel_outputs[0],
                1e-3,
                "eager vs kernel",
                graph,
            );

            let run_tape = |tape: &mut Tape| {
                let x = tape.leaf(input.clone());
                let ws: Vec<_> = weights.iter().map(|w| tape.leaf(w.clone())).collect();
                let out = eager::record(tape, graph, 0, x, &ws).expect("tape records");
                let out_value = tape.value(out).clone();
                let loss = tape.mean_all(out);
                let grads = tape.backward(loss);
                let gx = grads.get(x).cloned();
                (out_value, gx)
            };
            // Some weight bindings produce duplicate operand letters, which
            // `Tape::einsum` rejects (no VJP) — the search demotes such
            // candidates to typed skips via catch_unwind; both engines must
            // at least agree on *whether* the graph is tape-recordable.
            let fast = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_tape(&mut Tape::new())
            }));
            let slow = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_tape(&mut Tape::new_reference())
            }));
            match (fast, slow) {
                (Ok((fast_out, fast_gx)), Ok((slow_out, slow_gx))) => {
                    assert_bits_equal(&fast_out, &slow_out, "tape forward", graph);
                    assert_bits_equal(&fast_out, &eager_out, "tape vs eager", graph);
                    match (&fast_gx, &slow_gx) {
                        (Some(f), Some(s)) => assert_bits_equal(f, s, "input gradient", graph),
                        (f, s) => assert_eq!(f.is_some(), s.is_some(), "gradient presence"),
                    }
                    // The data-parallel engine is value-invisible: for any
                    // worker count, width 1 reproduces the serial reference
                    // bits and the pinned width reproduces the one-thread
                    // pinned bits — gradients included.
                    for threads in [2, 4] {
                        let width1 = ExecPolicy {
                            exec_threads: threads,
                            reduce_width: 1,
                        };
                        for (policy, want_out, want_gx, what) in [
                            (width1, &slow_out, &slow_gx, "sharded width-1 tape"),
                            (
                                ExecPolicy::with_threads(threads),
                                &fast_out,
                                &fast_gx,
                                "sharded pinned-width tape",
                            ),
                        ] {
                            let (out, gx) = run_tape(&mut Tape::with_policy(policy));
                            assert_bits_equal(&out, want_out, what, graph);
                            match (&gx, want_gx) {
                                (Some(g), Some(w)) => {
                                    assert_bits_equal(g, w, what, graph);
                                }
                                (g, w) => assert_eq!(
                                    g.is_some(),
                                    w.is_some(),
                                    "{what}: gradient presence"
                                ),
                            }
                        }
                    }
                }
                (Err(_), Err(_)) => {} // consistently unrecordable
                (f, s) => panic!(
                    "engines disagree on tape recordability (compiled ok: {}, reference ok: {}) on\n{}",
                    f.is_ok(),
                    s.is_ok(),
                    graph.render()
                ),
            }
        }
        Err(eager::EagerError::WeightNotRealizable(_)) => {
            // Loop-nest-only operators are legal; the kernel differential
            // above still covered them.
        }
        Err(other) => panic!("unexpected eager failure: {other} on\n{}", graph.render()),
    }
}

proptest! {
    /// Random valid pGraphs: every sampled operator passes the full
    /// differential check. The guided rollout regularly emits `Unfold`
    /// (the spec advertises a window coefficient), so clip paths are
    /// exercised continuously, not just by the fixtures below.
    #[test]
    fn random_pgraphs_agree_across_engines(seed in 0u64..u64::MAX) {
        let (vars, ids) = fixture_vars();
        let (cin, cout, h, w) = (ids[0], ids[1], ids[2], ids[3]);
        let spec = OperatorSpec::new(
            TensorShape::new(vec![Size::var(cin), Size::var(h), Size::var(w)]),
            TensorShape::new(vec![Size::var(cout), Size::var(h), Size::var(w)]),
        );
        let config = SynthConfig::auto(&vars, 5);
        let enumerator = Enumerator::new(config);
        let root = PGraph::new(Arc::clone(&vars), spec);
        let mut rng = StdRng::seed_from_u64(seed);
        for trial in 0..60 {
            if let RolloutResult::Complete(g) = rollout(&mut rng, &enumerator, &root, true) {
                assert_differential(&g, seed ^ trial);
                return Ok(());
            }
        }
        // A seed whose rollouts never complete proves nothing but is not a
        // failure of the engines.
    }
}

/// `[H] → [H, K]` where the `Unfold` of the two *output* coordinates is
/// discarded by `Expand` and the input is fed by a fresh `Reduce` iterator:
/// the clip lowers to a **spatial-only** stage guard gating a reduction
/// nest — the hoisted-guard path.
fn spatial_guard_graph() -> PGraph {
    let mut vars = VarTable::new();
    let h = vars.declare("H", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    vars.push_valuation(vec![(h, 8), (k, 3)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![Size::var(h)]),
        TensorShape::new(vec![Size::var(h), Size::var(k)]),
    );
    let g = PGraph::new(Arc::clone(&vars), spec);
    let i = g.frontier()[0];
    let w = g.frontier()[1];
    // u = i + w - k/2 clips at the tensor edges; no operand ever reads it
    // once Expand drops it, but the zero-padding window must still gate
    // the sum — the exact case PR 1's lowering fix introduced guards for.
    let g = g.apply(&Action::Unfold { base: i, window: w }).unwrap();
    let u = g.last_node().unwrap().produced[0];
    let g = g
        .apply(&Action::Reduce {
            domain: Size::var(vars.find("H").unwrap()),
        })
        .unwrap();
    let g = g.apply(&Action::Expand { coord: u }).unwrap();
    assert!(g.is_complete(), "{}", g.render());
    g
}

/// Like [`spatial_guard_graph`] but the discarded `Unfold` window comes
/// from a `Reduce`, so the guard binds a reduction atom and must stay
/// inside the inner loop (not hoistable).
fn reduce_guard_graph() -> PGraph {
    let mut vars = VarTable::new();
    let h = vars.declare("H", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    vars.push_valuation(vec![(h, 8), (k, 3)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![Size::var(h)]),
        TensorShape::new(vec![Size::var(h)]),
    );
    let g = PGraph::new(Arc::clone(&vars), spec);
    let i = g.frontier()[0];
    let g = g
        .apply(&Action::Reduce {
            domain: Size::var(vars.find("k").unwrap()),
        })
        .unwrap();
    let rk = g.last_node().unwrap().produced[0];
    let g = g.apply(&Action::Unfold { base: i, window: rk }).unwrap();
    let u = g.last_node().unwrap().produced[0];
    let g = g
        .apply(&Action::Reduce {
            domain: Size::var(vars.find("H").unwrap()),
        })
        .unwrap();
    let g = g.apply(&Action::Expand { coord: u }).unwrap();
    assert!(g.is_complete(), "{}", g.render());
    g
}

#[test]
fn expand_discarded_unfold_guards_spatial_case() {
    let g = spatial_guard_graph();
    let kernel = lower_naive(&g, 0).unwrap();
    assert!(
        kernel.stages.iter().any(|s| !s.guards.is_empty()),
        "fixture must lower with stage guards:\n{kernel}"
    );
    assert!(
        kernel.stages.iter().any(|s| !s.reduce.is_empty()),
        "the hoisted guard must gate a reduction nest"
    );
    assert_differential(&g, 101);

    // out[i, w] = [0 <= i + w - 1 < 8] * sum(in): clip kills the corners.
    let out = eager::execute(&g, 0, &Tensor::ones(&[8]), &[]).unwrap();
    assert_eq!(out.get(&[0, 0]), 0.0, "left edge clips");
    assert_eq!(out.get(&[7, 2]), 0.0, "right edge clips");
    assert_eq!(out.get(&[3, 1]), 8.0, "interior sums the input");
}

#[test]
fn expand_discarded_unfold_guards_reduce_case() {
    let g = reduce_guard_graph();
    let kernel = lower_naive(&g, 0).unwrap();
    assert!(
        kernel.stages.iter().any(|s| !s.guards.is_empty()),
        "fixture must lower with stage guards:\n{kernel}"
    );
    assert!(
        kernel.stages.iter().any(|s| !s.reduce.is_empty()),
        "fixture must have a reduction loop"
    );
    assert_differential(&g, 202);

    // out[i] = (# in-range window positions around i) * sum(in): 2 at the
    // edges, 3 inside, times 8.
    let out = eager::execute(&g, 0, &Tensor::ones(&[8]), &[]).unwrap();
    assert_eq!(out.get(&[0]), 16.0);
    assert_eq!(out.get(&[4]), 24.0);
    assert_eq!(out.get(&[7]), 16.0);
}

#[test]
fn named_operators_are_bitwise_stable_across_engines() {
    let mut vars = VarTable::new();
    let n = vars.declare("N", VarKind::Primary);
    let cin = vars.declare("Cin", VarKind::Primary);
    let cout = vars.declare("Cout", VarKind::Primary);
    let h = vars.declare("H", VarKind::Primary);
    let w = vars.declare("W", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    let s = vars.declare("s", VarKind::Coefficient);
    vars.push_valuation(vec![(n, 2), (cin, 4), (cout, 4), (h, 8), (w, 8), (k, 3), (s, 2)]);
    let vars = vars.into_shared();
    for graph in [
        ops::conv2d(&vars, n, cin, cout, h, w, k).unwrap(),
        ops::matmul(&vars, cin, cout, h).unwrap(),
        ops::avg_pool1d(&vars, h, s).unwrap(),
        ops::depthwise_conv2d(&vars, n, cin, h, w, k).unwrap(),
    ] {
        assert_differential(&graph, 303);
    }
}

/// The Fig. 4 staged kernel (materialized reduction): multi-stage buffers
/// flow through `OperandRef::Buffer` in both engines, bit-identically.
#[test]
fn staged_kernels_are_bitwise_stable() {
    let mut vars = VarTable::new();
    let h = vars.declare("H", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    let s = vars.declare("s", VarKind::Coefficient);
    vars.push_valuation(vec![(h, 64), (k, 5), (s, 4)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![Size::var(h)]),
        TensorShape::new(vec![Size::var(h).div(&Size::var(s))]),
    );
    let g = PGraph::new(Arc::clone(&vars), spec);
    let i = g.frontier()[0];
    let g = g
        .apply(&Action::Reduce {
            domain: Size::var(vars.find("k").unwrap()),
        })
        .unwrap();
    let rk = g.last_node().unwrap().produced[0];
    let g = g.apply(&Action::Unfold { base: i, window: rk }).unwrap();
    let u = g.last_node().unwrap().produced[0];
    let g = g
        .apply(&Action::Reduce {
            domain: Size::var(vars.find("s").unwrap()),
        })
        .unwrap();
    let rs = g.last_node().unwrap().produced[0];
    let g = g.apply(&Action::Split { lhs: u, rhs: rs }).unwrap();
    assert!(g.is_complete());

    let opt = lower_optimized(&g, 0).unwrap();
    assert!(opt.stages.len() > 1, "optimized kernel is staged");
    assert_differential(&g, 404);
}

/// `Kernel::execute` is the compiled engine: the public entry point and an
/// explicit `compile()` round produce the same bits.
#[test]
fn execute_routes_through_compiled_engine() {
    let (vars, ids) = fixture_vars();
    let (cin, cout, h) = (ids[0], ids[1], ids[2]);
    let mm = ops::matmul(&vars, cin, cout, h).unwrap();
    let (input, weights) = random_io(&mm, 9);
    let kernel: Kernel = lower_optimized(&mm, 0).unwrap();
    let via_execute = kernel.execute(&input, &weights);
    let via_compile = kernel.compile().execute(&input, &weights);
    assert_bits_equal(&via_execute, &via_compile, "execute vs compile", &mm);
}
