//! The reproduction's central correctness property: the eager (PyTorch-style)
//! backend and the loop-nest interpreter (TVM-TE-style) implement identical
//! semantics for every pGraph, with and without the materialized-reduction
//! optimization (§8).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use syno_core::prelude::*;
use syno_ir::{eager, lower_naive, lower_optimized};
use syno_tensor::{init, Tensor};

struct Fixture {
    vars: Arc<VarTable>,
    n: VarId,
    cin: VarId,
    cout: VarId,
    h: VarId,
    w: VarId,
    k: VarId,
    s: VarId,
    g: VarId,
}

fn fixture() -> Fixture {
    let mut vars = VarTable::new();
    let n = vars.declare("N", VarKind::Primary);
    let cin = vars.declare("Cin", VarKind::Primary);
    let cout = vars.declare("Cout", VarKind::Primary);
    let h = vars.declare("H", VarKind::Primary);
    let w = vars.declare("W", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    let s = vars.declare("s", VarKind::Coefficient);
    let g = vars.declare("g", VarKind::Coefficient);
    vars.push_valuation(vec![
        (n, 2),
        (cin, 4),
        (cout, 8),
        (h, 8),
        (w, 8),
        (k, 3),
        (s, 2),
        (g, 2),
    ]);
    Fixture {
        vars: vars.into_shared(),
        n,
        cin,
        cout,
        h,
        w,
        k,
        s,
        g,
    }
}

/// Random input/weights for a graph, and the three backend outputs.
fn run_all_backends(graph: &PGraph, seed: u64) -> (Tensor, Tensor, Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let input_shape: Vec<usize> = graph
        .spec()
        .input
        .eval(graph.vars(), 0)
        .unwrap()
        .iter()
        .map(|&v| v as usize)
        .collect();
    let input = init::uniform(&mut rng, &input_shape, -1.0, 1.0);
    let weights: Vec<Tensor> = eager::weight_shapes(graph, 0)
        .unwrap()
        .iter()
        .map(|s| init::uniform(&mut rng, s, -1.0, 1.0))
        .collect();

    let eager_out = eager::execute(graph, 0, &input, &weights).expect("eager executes");
    let naive = lower_naive(graph, 0).expect("naive lowering");
    let naive_out = naive.execute(&input, &weights);
    let opt = lower_optimized(graph, 0).expect("optimized lowering");
    let opt_out = opt.execute(&input, &weights);
    (eager_out, naive_out, opt_out)
}

fn assert_equivalent(graph: &PGraph, seed: u64) {
    let (e, n, o) = run_all_backends(graph, seed);
    assert!(
        e.allclose(&n, 1e-3),
        "eager vs naive diverge (max diff {}) on\n{}",
        e.max_abs_diff(&n),
        graph.render()
    );
    assert!(
        e.allclose(&o, 1e-3),
        "eager vs optimized diverge (max diff {}) on\n{}",
        e.max_abs_diff(&o),
        graph.render()
    );
}

#[test]
fn conv2d_backends_agree() {
    let f = fixture();
    let conv = ops::conv2d(&f.vars, f.n, f.cin, f.cout, f.h, f.w, f.k).unwrap();
    assert_equivalent(&conv, 11);
}

#[test]
fn conv2d_matches_direct_reference() {
    // Belt and braces: compare against a hand-rolled convolution.
    let f = fixture();
    let conv = ops::conv2d(&f.vars, f.n, f.cin, f.cout, f.h, f.w, f.k).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let x = init::uniform(&mut rng, &[2, 4, 8, 8], -1.0, 1.0);
    // Weight dims in creation order: [Cin, kH, kW, Cout].
    let wshape = eager::weight_shapes(&conv, 0).unwrap()[0].clone();
    assert_eq!(wshape, vec![4, 3, 3, 8]);
    let w = init::uniform(&mut rng, &wshape, -1.0, 1.0);

    let got = eager::execute(&conv, 0, &x, std::slice::from_ref(&w)).unwrap();
    assert_eq!(got.shape(), &[2, 8, 8, 8]);

    let mut want = Tensor::zeros(&[2, 8, 8, 8]);
    for n in 0..2 {
        for co in 0..8 {
            for y in 0..8i64 {
                for xx in 0..8i64 {
                    let mut acc = 0.0;
                    for ci in 0..4 {
                        for kh in 0..3i64 {
                            for kw in 0..3i64 {
                                let iy = y + kh - 1;
                                let ix = xx + kw - 1;
                                if !(0..8).contains(&iy) || !(0..8).contains(&ix) {
                                    continue;
                                }
                                acc += x.get(&[n, ci, iy as usize, ix as usize])
                                    * w.get(&[ci, kh as usize, kw as usize, co]);
                            }
                        }
                    }
                    want.set(&[n, co, y as usize, xx as usize], acc);
                }
            }
        }
    }
    assert!(
        got.allclose(&want, 1e-3),
        "max diff {}",
        got.max_abs_diff(&want)
    );
}

#[test]
fn matmul_backends_agree() {
    let f = fixture();
    let mm = ops::matmul(&f.vars, f.cin, f.cout, f.h).unwrap();
    assert_equivalent(&mm, 13);
}

#[test]
fn matmul_matches_einsum_reference() {
    let f = fixture();
    let mm = ops::matmul(&f.vars, f.cin, f.cout, f.h).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let x = init::uniform(&mut rng, &[4, 8], -1.0, 1.0); // [M=Cin, K=H]
    let wshape = eager::weight_shapes(&mm, 0).unwrap()[0].clone();
    // Weight dims: [K, N] = [8, 8].
    let w = init::uniform(&mut rng, &wshape, -1.0, 1.0);
    let got = eager::execute(&mm, 0, &x, std::slice::from_ref(&w)).unwrap();
    let want = syno_tensor::matmul(&x, &syno_tensor::ops::reshape(&w, &[8, 8]));
    assert!(got.allclose(&want, 1e-3));
}

#[test]
fn avg_pool_backends_agree() {
    let f = fixture();
    let pool = ops::avg_pool1d(&f.vars, f.h, f.s).unwrap();
    assert_equivalent(&pool, 19);
    // And the semantics: out[i] = x[2i] + x[2i+1] (unscaled sum pooling).
    let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[8]);
    let got = eager::execute(&pool, 0, &x, &[]).unwrap();
    assert_eq!(got.data(), &[1.0, 5.0, 9.0, 13.0]);
}

#[test]
fn pixel_shuffle_backends_agree() {
    let f = fixture();
    let ps = ops::pixel_shuffle(&f.vars, f.h, f.s).unwrap();
    assert_equivalent(&ps, 23);
    // out(i) = input((H/B)*(i%B) + i/B) with H=8, B=2.
    let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[8]);
    let got = eager::execute(&ps, 0, &x, &[]).unwrap();
    assert_eq!(
        got.data(),
        &[0.0, 4.0, 1.0, 5.0, 2.0, 6.0, 3.0, 7.0]
    );
}

#[test]
fn grouped_and_depthwise_agree() {
    let f = fixture();
    let grouped =
        ops::grouped_conv2d(&f.vars, f.n, f.cin, f.cout, f.h, f.w, f.k, f.g).unwrap();
    assert_equivalent(&grouped, 29);
    let dw = ops::depthwise_conv2d(&f.vars, f.n, f.cin, f.h, f.w, f.k).unwrap();
    assert_equivalent(&dw, 31);
}

#[test]
fn pointwise_agrees() {
    let f = fixture();
    let pw = ops::pointwise_conv(&f.vars, f.n, f.cin, f.cout, f.h, f.w).unwrap();
    assert_equivalent(&pw, 37);
}

/// The Fig. 4 materialized-reduction example: pooling-then-convolution
/// fused in one operator. Naive fusion costs ~k·H MACs; materializing the
/// pooling stage first costs ~(1 + k/s)·H.
#[test]
fn materialized_reduction_cuts_flops() {
    let mut vars = VarTable::new();
    let h = vars.declare("H", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    let s = vars.declare("s", VarKind::Coefficient);
    vars.push_valuation(vec![(h, 64), (k, 5), (s, 4)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![Size::var(h)]),
        TensorShape::new(vec![Size::var(h).div(&Size::var(s))]),
    );
    let g = PGraph::new(Arc::clone(&vars), spec);
    let i = g.frontier()[0];
    // Reduce(k); Unfold(i, r_k) — convolution window on the pooled axis...
    let g = g
        .apply(&Action::Reduce {
            domain: Size::var(k),
        })
        .unwrap();
    let rk = g.last_node().unwrap().produced[0];
    let g = g
        .apply(&Action::Unfold {
            base: i,
            window: rk,
        })
        .unwrap();
    let u = g.last_node().unwrap().produced[0];
    // ...then Reduce(s); Split — pooling below.
    let g = g
        .apply(&Action::Reduce {
            domain: Size::var(s),
        })
        .unwrap();
    let rs = g.last_node().unwrap().produced[0];
    let g = g.apply(&Action::Split { lhs: u, rhs: rs }).unwrap();
    assert!(g.is_complete(), "{}", g.render());

    let naive = lower_naive(&g, 0).unwrap();
    let opt = lower_optimized(&g, 0).unwrap();
    assert!(
        opt.flops() < naive.flops(),
        "materialization should help: {} vs {}",
        opt.flops(),
        naive.flops()
    );
    assert!(opt.stages.len() > 1, "optimized kernel is staged");
    // Paper arithmetic: naive ≈ (H/s)·k·s iterations, staged ≈ H + (H/s)·k.
    let h_val = 64u128;
    let (kk, ss) = (5u128, 4u128);
    assert_eq!(naive.flops(), h_val / ss * kk * ss);
    assert!(opt.flops() <= h_val + (h_val / ss) * kk + h_val / ss);

    // And of course both lowerings still agree with the eager backend.
    assert_equivalent(&g, 41);
}

/// Property test: every operator the guided sampler can synthesize for a
/// conv-like specification evaluates identically under all three backends.
#[test]
fn random_operators_backends_agree() {
    let f = fixture();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![
            Size::var(f.cin),
            Size::var(f.h),
            Size::var(f.w),
        ]),
        TensorShape::new(vec![
            Size::var(f.cout),
            Size::var(f.h),
            Size::var(f.w),
        ]),
    );
    let config = SynthConfig::auto(&f.vars, 5);
    let enumerator = Enumerator::new(config);
    let root = PGraph::new(Arc::clone(&f.vars), spec);
    let mut rng = StdRng::seed_from_u64(1234);
    let mut checked = 0;
    for trial in 0..300 {
        if let RolloutResult::Complete(g) = rollout(&mut rng, &enumerator, &root, true) {
            match eager::execute(
                &g,
                0,
                &init::uniform(&mut StdRng::seed_from_u64(trial),
                    &g.spec().input.eval(g.vars(), 0).unwrap().iter().map(|&v| v as usize).collect::<Vec<_>>(), -1.0, 1.0),
                &eager::weight_shapes(&g, 0)
                    .unwrap()
                    .iter()
                    .map(|s| init::uniform(&mut StdRng::seed_from_u64(trial + 999), s, -1.0, 1.0))
                    .collect::<Vec<_>>(),
            ) {
                Ok(_) => {
                    assert_equivalent(&g, trial);
                    checked += 1;
                }
                Err(eager::EagerError::WeightNotRealizable(_)) => {
                    // Loop-nest-only operators are legal; just check the two
                    // interpreters against each other.
                    let mut r = StdRng::seed_from_u64(trial);
                    let input_shape: Vec<usize> = g
                        .spec()
                        .input
                        .eval(g.vars(), 0)
                        .unwrap()
                        .iter()
                        .map(|&v| v as usize)
                        .collect();
                    let input = init::uniform(&mut r, &input_shape, -1.0, 1.0);
                    let weights: Vec<Tensor> = eager::weight_shapes(&g, 0)
                        .unwrap()
                        .iter()
                        .map(|s| init::uniform(&mut r, s, -1.0, 1.0))
                        .collect();
                    let n = lower_naive(&g, 0).unwrap().execute(&input, &weights);
                    let o = lower_optimized(&g, 0).unwrap().execute(&input, &weights);
                    assert!(n.allclose(&o, 1e-3));
                    checked += 1;
                }
                Err(other) => panic!("unexpected eager failure: {other} on\n{}", g.render()),
            }
        }
        if checked >= 40 {
            break;
        }
    }
    assert!(checked >= 10, "too few operators sampled: {checked}");
}

/// The tape-recorded forward pass equals the plain eager execution, and
/// gradients flow to both input and weights.
#[test]
fn tape_recording_matches_eager_and_differentiates() {
    let f = fixture();
    let conv = ops::conv2d(&f.vars, f.n, f.cin, f.cout, f.h, f.w, f.k).unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let x = init::uniform(&mut rng, &[2, 4, 8, 8], -0.5, 0.5);
    let wshape = eager::weight_shapes(&conv, 0).unwrap()[0].clone();
    let w = init::uniform(&mut rng, &wshape, -0.5, 0.5);

    let plain = eager::execute(&conv, 0, &x, std::slice::from_ref(&w)).unwrap();

    let mut tape = syno_tensor::Tape::new();
    let xv = tape.leaf(x.clone());
    let wv = tape.leaf(w.clone());
    let out = eager::record(&mut tape, &conv, 0, xv, &[wv]).unwrap();
    assert!(tape.value(out).allclose(&plain, 1e-4));

    let loss = tape.mean_all(out);
    let grads = tape.backward(loss);
    let gx = grads.get(xv).expect("input gradient");
    let gw = grads.get(wv).expect("weight gradient");
    assert_eq!(gx.shape(), x.shape());
    assert_eq!(gw.shape(), w.shape());
    assert!(gx.is_finite() && gw.is_finite());
    assert!(gw.sq_norm() > 0.0, "weight gradient must be nonzero");
}
