//! Property tests for the persistence layer: arbitrary small operators
//! produced by the real `Synthesis` driver must survive the encode → decode
//! round trip exactly — same rendering, same stable hashes — and must do so
//! through the journal as well as through the raw codec.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use syno_core::codec::{decode_graph, encode_graph};
use syno_core::prelude::*;
use syno_store::StoreBuilder;

/// Deterministic fresh temp dir per call.
fn temp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "syno-store-prop-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `[H] -> [H/s]` pooling-like scenario.
fn pool_space() -> (Arc<VarTable>, OperatorSpec) {
    let mut vars = VarTable::new();
    let h = vars.declare("H", VarKind::Primary);
    let s = vars.declare("s", VarKind::Coefficient);
    vars.push_valuation(vec![(h, 16), (s, 2)]);
    vars.push_valuation(vec![(h, 32), (s, 2)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![Size::var(h)]),
        TensorShape::new(vec![Size::var(h).div(&Size::var(s))]),
    );
    (vars, spec)
}

/// `[N, C, H] -> [N, C, H]` identity-shaped scenario with two coefficients,
/// which exercises Unfold/Share/MatchWeight-heavy operators.
fn conv_space() -> (Arc<VarTable>, OperatorSpec) {
    let mut vars = VarTable::new();
    let n = vars.declare("N", VarKind::Primary);
    let c = vars.declare("C", VarKind::Primary);
    let h = vars.declare("H", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    vars.push_valuation(vec![(n, 2), (c, 4), (h, 12), (k, 3)]);
    let vars = vars.into_shared();
    let shape = TensorShape::new(vec![Size::var(n), Size::var(c), Size::var(h)]);
    let spec = OperatorSpec::new(shape.clone(), shape);
    (vars, spec)
}

/// All operators of the given space up to `max_steps` primitives.
fn operators(space: usize, max_steps: usize) -> Vec<PGraph> {
    let (vars, spec) = if space == 0 { pool_space() } else { conv_space() };
    Enumerator::new(SynthConfig::auto(&vars, max_steps))
        .synthesis(&vars, &spec)
        .take(64)
        .map(|r| r.expect("space is enumerable"))
        .collect()
}

proptest! {
    /// decode(encode(g)) reproduces the graph exactly: structure (render),
    /// semantic identity (state hash), and persisted key (content hash).
    #[test]
    fn codec_round_trips_synthesized_operators(
        (space, steps, pick) in (0usize..2, 2usize..4, 0usize..64)
    ) {
        let ops = operators(space, steps);
        prop_assert!(!ops.is_empty());
        let graph = &ops[pick % ops.len()];
        let bytes = encode_graph(graph);
        let back = decode_graph(&bytes).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.render(), graph.render());
        prop_assert_eq!(back.state_hash(), graph.state_hash());
        prop_assert_eq!(back.content_hash(), graph.content_hash());
        prop_assert_eq!(back.len(), graph.len());
        prop_assert_eq!(back.weight_count(), graph.weight_count());
        prop_assert_eq!(back.is_complete(), graph.is_complete());
    }

    /// Every truncation of an encoding fails to decode — no prefix is
    /// silently accepted as a different graph.
    #[test]
    fn truncated_encodings_never_decode(
        (space, pick, frac) in (0usize..2, 0usize..64, 0.0f64..1.0)
    ) {
        let ops = operators(space, 3);
        let graph = &ops[pick % ops.len()];
        let bytes = encode_graph(graph);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(decode_graph(&bytes[..cut]).is_err());
    }

    /// The journal preserves the same round-trip guarantee across a real
    /// write → reopen → read cycle.
    #[test]
    fn journal_round_trips_operators((steps, pick) in (2usize..4, 0usize..64)) {
        let ops = operators(0, steps);
        let graph = &ops[pick % ops.len()];
        let hash = graph.content_hash();
        let dir = temp_dir("roundtrip");
        {
            let store = StoreBuilder::new(&dir)
                .open()
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            store
                .put_candidate(hash, graph)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        let store = StoreBuilder::new(&dir)
            .open()
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let back = store
            .graph(hash)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.render(), graph.render());
        prop_assert_eq!(back.content_hash(), hash);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Exhaustive (non-property) sweep: *every* operator in the 3-step pooling
/// space round-trips, not just sampled ones.
#[test]
fn whole_pool_space_round_trips() {
    for graph in operators(0, 3) {
        let back = decode_graph(&encode_graph(&graph)).expect("decodes");
        assert_eq!(back.render(), graph.render());
        assert_eq!(back.content_hash(), graph.content_hash());
    }
}
