//! Property tests for the persistence layer: arbitrary small operators
//! produced by the real `Synthesis` driver must survive the encode → decode
//! round trip exactly — same rendering, same stable hashes — and must do so
//! through the journal as well as through the raw codec.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use syno_core::codec::{decode_graph, encode_graph};
use syno_core::prelude::*;
use syno_store::{CandidateSet, OpKind, Operation, Record, RecordKind, StoreBuilder};

/// Deterministic fresh temp dir per call.
fn temp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "syno-store-prop-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tiny deterministic value mixer: one sampled `u64` seed expands into the
/// strings/hashes of a full record (the vendored proptest shim has no
/// string strategies).
struct Mix(u64);

impl Mix {
    fn new(seed: u64) -> Mix {
        Mix(seed | 1)
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn text(&mut self, max: u64) -> String {
        let len = self.next() % (max + 1);
        (0..len)
            .map(|_| char::from(b'a' + (self.next() % 26) as u8))
            .collect()
    }
}

/// `[H] -> [H/s]` pooling-like scenario.
fn pool_space() -> (Arc<VarTable>, OperatorSpec) {
    let mut vars = VarTable::new();
    let h = vars.declare("H", VarKind::Primary);
    let s = vars.declare("s", VarKind::Coefficient);
    vars.push_valuation(vec![(h, 16), (s, 2)]);
    vars.push_valuation(vec![(h, 32), (s, 2)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![Size::var(h)]),
        TensorShape::new(vec![Size::var(h).div(&Size::var(s))]),
    );
    (vars, spec)
}

/// `[N, C, H] -> [N, C, H]` identity-shaped scenario with two coefficients,
/// which exercises Unfold/Share/MatchWeight-heavy operators.
fn conv_space() -> (Arc<VarTable>, OperatorSpec) {
    let mut vars = VarTable::new();
    let n = vars.declare("N", VarKind::Primary);
    let c = vars.declare("C", VarKind::Primary);
    let h = vars.declare("H", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    vars.push_valuation(vec![(n, 2), (c, 4), (h, 12), (k, 3)]);
    let vars = vars.into_shared();
    let shape = TensorShape::new(vec![Size::var(n), Size::var(c), Size::var(h)]);
    let spec = OperatorSpec::new(shape.clone(), shape);
    (vars, spec)
}

/// All operators of the given space up to `max_steps` primitives.
fn operators(space: usize, max_steps: usize) -> Vec<PGraph> {
    let (vars, spec) = if space == 0 { pool_space() } else { conv_space() };
    Enumerator::new(SynthConfig::auto(&vars, max_steps))
        .synthesis(&vars, &spec)
        .take(64)
        .map(|r| r.expect("space is enumerable"))
        .collect()
}

proptest! {
    /// decode(encode(g)) reproduces the graph exactly: structure (render),
    /// semantic identity (state hash), and persisted key (content hash).
    #[test]
    fn codec_round_trips_synthesized_operators(
        (space, steps, pick) in (0usize..2, 2usize..4, 0usize..64)
    ) {
        let ops = operators(space, steps);
        prop_assert!(!ops.is_empty());
        let graph = &ops[pick % ops.len()];
        let bytes = encode_graph(graph);
        let back = decode_graph(&bytes).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.render(), graph.render());
        prop_assert_eq!(back.state_hash(), graph.state_hash());
        prop_assert_eq!(back.content_hash(), graph.content_hash());
        prop_assert_eq!(back.len(), graph.len());
        prop_assert_eq!(back.weight_count(), graph.weight_count());
        prop_assert_eq!(back.is_complete(), graph.is_complete());
    }

    /// Every truncation of an encoding fails to decode — no prefix is
    /// silently accepted as a different graph.
    #[test]
    fn truncated_encodings_never_decode(
        (space, pick, frac) in (0usize..2, 0usize..64, 0.0f64..1.0)
    ) {
        let ops = operators(space, 3);
        let graph = &ops[pick % ops.len()];
        let bytes = encode_graph(graph);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(decode_graph(&bytes[..cut]).is_err());
    }

    /// The journal preserves the same round-trip guarantee across a real
    /// write → reopen → read cycle.
    #[test]
    fn journal_round_trips_operators((steps, pick) in (2usize..4, 0usize..64)) {
        let ops = operators(0, steps);
        let graph = &ops[pick % ops.len()];
        let hash = graph.content_hash();
        let dir = temp_dir("roundtrip");
        {
            let store = StoreBuilder::new(&dir)
                .open()
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            store
                .put_candidate(hash, graph)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        let store = StoreBuilder::new(&dir)
            .open()
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let back = store
            .graph(hash)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.render(), graph.render());
        prop_assert_eq!(back.content_hash(), hash);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Operation-log records (codec v4) round-trip exactly through the
    /// record payload codec for every [`OpKind`] and arbitrary
    /// writer/label/detail strings.
    #[test]
    fn operation_records_round_trip(
        (kind, seed, fingerprint) in (0usize..6, 0u64..u64::MAX, 0u64..u64::MAX)
    ) {
        let kind = [
            OpKind::RunStarted,
            OpKind::RunResumed,
            OpKind::Checkpoint,
            OpKind::Compaction,
            OpKind::Derive,
            OpKind::SessionAttached,
        ][kind];
        let mut mix = Mix::new(seed);
        let record = Record::Operation(Operation {
            kind,
            writer: mix.text(24),
            label: mix.text(32),
            spec_fingerprint: fingerprint,
            detail: mix.text(48),
        });
        let payload = record.encode_payload();
        let back = Record::decode_payload(RecordKind::Operation, &payload)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&back, &record);
        // The codec is deterministic: re-encoding reproduces the bytes.
        prop_assert_eq!(back.encode_payload(), payload);
    }

    /// `CandidateSet` records (codec v4) round-trip exactly — and because
    /// construction canonicalizes (sorts + dedups) the members, the same
    /// collection encodes to identical bytes regardless of input order.
    #[test]
    fn candidate_set_records_round_trip((seed, count) in (0u64..u64::MAX, 0usize..32)) {
        let mut mix = Mix::new(seed);
        let name = format!("set-{}", mix.text(20));
        let lineage = mix.text(40);
        // Bias toward collisions so dedup is actually exercised.
        let mut hashes: Vec<u64> = (0..count).map(|_| mix.next() % 97).collect();
        let set = CandidateSet::new(name.clone(), lineage.clone(), hashes.clone());
        let record = Record::CandidateSet(set.clone());
        let payload = record.encode_payload();
        let back = Record::decode_payload(RecordKind::CandidateSet, &payload)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let Record::CandidateSet(decoded) = &back else {
            return Err(TestCaseError::fail("decoded to a different record kind"));
        };
        prop_assert_eq!(decoded.name(), set.name());
        prop_assert_eq!(decoded.lineage(), set.lineage());
        prop_assert_eq!(decoded.hashes(), set.hashes());
        prop_assert_eq!(decoded.digest(), set.digest());
        prop_assert_eq!(back.encode_payload(), payload.clone());
        // Canonicalization: any permutation of the members encodes to the
        // same bytes (reverse is the worst-case permutation here).
        hashes.reverse();
        let permuted = CandidateSet::new(name, lineage, hashes);
        prop_assert_eq!(Record::CandidateSet(permuted).encode_payload(), payload);
    }
}

/// Exhaustive (non-property) sweep: *every* operator in the 3-step pooling
/// space round-trips, not just sampled ones.
#[test]
fn whole_pool_space_round_trips() {
    for graph in operators(0, 3) {
        let back = decode_graph(&encode_graph(&graph)).expect("decodes");
        assert_eq!(back.render(), graph.render());
        assert_eq!(back.content_hash(), graph.content_hash());
    }
}
