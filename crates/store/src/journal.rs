//! The append-only journal and its in-memory index.
//!
//! ## On-disk layout
//!
//! ```text
//! +--------------------------------------------------------------+
//! | magic "SYNOSTOR" (8 bytes) | journal version (u32 LE)        |  header
//! +--------------------------------------------------------------+
//! | kind (u8) | payload len (u32 LE) | payload | checksum (u32)  |  record 0
//! +--------------------------------------------------------------+
//! | ...                                                          |  record 1…
//! ```
//!
//! The checksum is the low 32 bits of a 64-bit FNV-1a digest over the kind
//! byte plus the payload, computed with the same stable hasher that backs
//! content hashes. Records are only ever appended; a crash can therefore
//! corrupt at most the **tail** of the file. Loading walks the records in
//! order and, at the first framing or checksum failure, truncates the file
//! back to the last good record boundary — the recovery strategy of every
//! write-ahead log. A record that frames and checksums correctly but fails
//! to decode indicates real corruption (or a foreign writer) and is reported
//! as [`StoreError::Corrupt`] rather than silently dropped.
//!
//! ## Payloads
//!
//! Payloads use [`syno_core::codec`] primitives. `Candidate` embeds the
//! graph's own versioned encoding ([`syno_core::codec::encode_graph`]), so
//! the codec's `FORMAT_VERSION` is checked again when a graph is decoded.
//! Since codec format version 2, `ProxyScore` payloads carry the task
//! family that produced the score; shorter legacy payloads decode with the
//! family defaulted to `"vision"` (the only family that existed when they
//! were written), so version-1 journals stay fully readable.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use syno_core::codec::{self, CodecError, Decoder, Encoder};
use syno_core::graph::PGraph;
use syno_core::stable::StableHasher;

/// File magic identifying a syno-store journal.
const MAGIC: [u8; 8] = *b"SYNOSTOR";
/// Version of the journal framing (independent of the value codec's
/// [`codec::FORMAT_VERSION`], which is checked per embedded graph).
const JOURNAL_VERSION: u32 = 1;
/// Bytes of header before the first record.
const HEADER_LEN: u64 = 12;
/// Refuse absurd frame lengths so a corrupt length prefix cannot force a
/// multi-gigabyte allocation.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Errors surfaced by store operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O failure, tagged with the operation that failed.
    Io {
        /// What the store was doing.
        op: &'static str,
        /// Rendered `std::io::Error`.
        reason: String,
    },
    /// The file exists but does not start with the journal magic.
    BadMagic,
    /// The journal framing version is not supported by this build.
    Version {
        /// Version found in the header.
        found: u32,
    },
    /// A record framed and checksummed correctly but its payload is
    /// malformed — not a torn tail, real corruption.
    Corrupt {
        /// Byte offset of the offending record.
        offset: u64,
        /// What went wrong.
        reason: String,
    },
    /// A value-level decode failure (from [`syno_core::codec`]).
    Codec(CodecError),
    /// The store has no journaled graph under the requested content hash.
    UnknownHash {
        /// The missing key.
        hash: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, reason } => write!(f, "store {op} failed: {reason}"),
            StoreError::BadMagic => write!(f, "not a syno-store journal (bad magic)"),
            StoreError::Version { found } => write!(
                f,
                "unsupported journal version {found} (this build reads {JOURNAL_VERSION})"
            ),
            StoreError::Corrupt { offset, reason } => {
                write!(f, "corrupt record at byte {offset}: {reason}")
            }
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::UnknownHash { hash } => {
                write!(f, "no candidate journaled under {hash:#018x}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> StoreError {
    move |e| StoreError::Io {
        op,
        reason: e.to_string(),
    }
}

/// The four journaled record kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RecordKind {
    /// A candidate operator (content hash + encoded graph recipe).
    Candidate,
    /// A proxy-training result for a candidate.
    ProxyScore,
    /// One tuned latency for a candidate on one device/compiler pair.
    LatencyMeasurement,
    /// A search scenario's journaled position.
    Checkpoint,
}

impl RecordKind {
    fn tag(self) -> u8 {
        match self {
            RecordKind::Candidate => 1,
            RecordKind::ProxyScore => 2,
            RecordKind::LatencyMeasurement => 3,
            RecordKind::Checkpoint => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<RecordKind> {
        Some(match tag {
            1 => RecordKind::Candidate,
            2 => RecordKind::ProxyScore,
            3 => RecordKind::LatencyMeasurement,
            4 => RecordKind::Checkpoint,
            _ => return None,
        })
    }
}

/// A search scenario's journaled position, written periodically by
/// `syno-search` and consumed by `SearchBuilder::resume_from`.
///
/// The `(label, spec_fingerprint)` pair identifies the scenario; `seed` pins
/// the MCTS rollout stream so a resumed run replays the same deterministic
/// candidate sequence (with evaluations recalled from the store instead of
/// recomputed).
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// The scenario label the checkpoint belongs to.
    pub label: String,
    /// [`OperatorSpec::fingerprint`](syno_core::spec::OperatorSpec::fingerprint)
    /// of the scenario's spec under its variable table.
    pub spec_fingerprint: u64,
    /// The MCTS seed the scenario ran with.
    pub seed: u64,
    /// Iterations completed when the checkpoint was written.
    pub iterations: u64,
    /// Distinct candidates discovered when the checkpoint was written.
    pub discovered: u64,
}

/// One decoded journal record (exposed for tooling and tests; the search
/// pipeline uses the typed `put_*`/lookup methods instead).
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A candidate operator.
    Candidate {
        /// Content hash (the store key).
        hash: u64,
        /// [`codec::encode_graph`] bytes.
        graph: Vec<u8>,
    },
    /// A proxy accuracy for `hash`.
    ProxyScore {
        /// Content hash of the scored candidate.
        hash: u64,
        /// Proxy accuracy in `[0, 1]`.
        accuracy: f64,
        /// The task family whose proxy produced the score (e.g.
        /// `"vision"`, `"sequence"`). Records written before codec format
        /// version 2 carry no tag and decode as `"vision"` — historically
        /// the only family that existed.
        family: String,
        /// Reduction-tree width of the execution policy that produced the
        /// score. The width reshapes the deterministic FP summation order,
        /// so scores are only comparable (and recallable) at the same
        /// width. Records written before codec format version 3 carry no
        /// width and decode as `1` — serial accumulation, which is what
        /// produced them.
        reduce_width: u32,
    },
    /// A tuned latency for `hash` on one device/compiler pair.
    LatencyMeasurement {
        /// Content hash of the tuned candidate.
        hash: u64,
        /// Device display name.
        device: String,
        /// Compiler display name.
        compiler: String,
        /// Latency in seconds.
        latency: f64,
    },
    /// A search checkpoint.
    Checkpoint(Checkpoint),
}

impl Record {
    /// The kind tag of this record.
    pub fn kind(&self) -> RecordKind {
        match self {
            Record::Candidate { .. } => RecordKind::Candidate,
            Record::ProxyScore { .. } => RecordKind::ProxyScore,
            Record::LatencyMeasurement { .. } => RecordKind::LatencyMeasurement,
            Record::Checkpoint(_) => RecordKind::Checkpoint,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Record::Candidate { hash, graph } => {
                e.put_u64(*hash);
                e.put_bytes(graph);
            }
            Record::ProxyScore {
                hash,
                accuracy,
                family,
                reduce_width,
            } => {
                e.put_u64(*hash);
                e.put_f64(*accuracy);
                e.put_str(family);
                e.put_u32(*reduce_width);
            }
            Record::LatencyMeasurement {
                hash,
                device,
                compiler,
                latency,
            } => {
                e.put_u64(*hash);
                e.put_str(device);
                e.put_str(compiler);
                e.put_f64(*latency);
            }
            Record::Checkpoint(cp) => {
                e.put_str(&cp.label);
                e.put_u64(cp.spec_fingerprint);
                e.put_u64(cp.seed);
                e.put_u64(cp.iterations);
                e.put_u64(cp.discovered);
            }
        }
        e.into_bytes()
    }

    fn decode_payload(kind: RecordKind, payload: &[u8]) -> Result<Record, CodecError> {
        let mut d = Decoder::new(payload);
        let record = match kind {
            RecordKind::Candidate => Record::Candidate {
                hash: d.get_u64()?,
                graph: d.get_bytes()?.to_vec(),
            },
            RecordKind::ProxyScore => {
                let hash = d.get_u64()?;
                let accuracy = d.get_f64()?;
                // Legacy (codec format version 1) score records end here;
                // every score written back then came from the vision
                // proxy, so the default tag is historically exact.
                let family = if d.remaining() > 0 {
                    d.get_str()?
                } else {
                    "vision".to_owned()
                };
                // Pre-version-3 records carry no reduce width; they were
                // produced by serial accumulation, i.e. width 1.
                let reduce_width = if d.remaining() > 0 { d.get_u32()? } else { 1 };
                Record::ProxyScore {
                    hash,
                    accuracy,
                    family,
                    reduce_width,
                }
            }
            RecordKind::LatencyMeasurement => Record::LatencyMeasurement {
                hash: d.get_u64()?,
                device: d.get_str()?,
                compiler: d.get_str()?,
                latency: d.get_f64()?,
            },
            RecordKind::Checkpoint => Record::Checkpoint(Checkpoint {
                label: d.get_str()?,
                spec_fingerprint: d.get_u64()?,
                seed: d.get_u64()?,
                iterations: d.get_u64()?,
                discovered: d.get_u64()?,
            }),
        };
        if d.remaining() != 0 {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after record payload",
                d.remaining()
            )));
        }
        Ok(record)
    }
}

/// FNV-1a over the kind byte + payload, truncated to 32 bits.
fn frame_checksum(kind: u8, payload: &[u8]) -> u32 {
    use std::hash::Hasher;
    let mut h = StableHasher::new();
    h.write(&[kind]);
    h.write(payload);
    h.finish() as u32
}

/// Aggregate store counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct candidates journaled.
    pub candidates: u64,
    /// Candidates with a successful proxy score (NaN failure markers are
    /// excluded).
    pub scored: u64,
    /// Successful proxy scores per task family, sorted by family name
    /// (NaN failure markers are excluded) — the per-family breakdown the
    /// serving layer's `Status` reply reports to tenants.
    pub scores_by_family: Vec<(String, u64)>,
    /// Latency measurements journaled (device/compiler pairs).
    pub latency_measurements: u64,
    /// Live checkpoints (latest per scenario).
    pub checkpoints: u64,
    /// Journal size on disk, bytes.
    pub file_bytes: u64,
    /// Bytes discarded by torn-tail recovery when the store was opened.
    pub recovered_bytes: u64,
    /// Evaluations served from the store instead of recomputed, this
    /// process (not persisted).
    pub cache_hits: u64,
    /// Recall probes answered this process, hit or miss (not persisted).
    /// Together with [`cache_hits`](StoreStats::cache_hits) this gives the
    /// warm-store hit ratio.
    pub lookups: u64,
}

impl StoreStats {
    /// Fraction of recall probes served from the journal this process, or
    /// `None` before the first probe. `Some(1.0)` is a fully warm store.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        if self.lookups == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / self.lookups as f64)
        }
    }

    /// Successful proxy scores recorded for `family`.
    pub fn scores_for_family(&self, family: &str) -> u64 {
        self.scores_by_family
            .iter()
            .find(|(name, _)| name == family)
            .map(|&(_, count)| count)
            .unwrap_or(0)
    }
}

#[derive(Clone, Debug, Default)]
struct CandidateEntry {
    graph: Vec<u8>,
    accuracy: Option<f64>,
    /// Task family that produced `accuracy` (`"vision"` for legacy
    /// records); set with it by `ProxyScore` records.
    family: Option<String>,
    /// Reduction-tree width that produced `accuracy` (`1` for legacy
    /// records); set with it by `ProxyScore` records.
    score_width: Option<u32>,
    /// `(device, compiler) → latency seconds`, latest record wins.
    latencies: HashMap<(String, String), f64>,
}

struct Inner {
    file: File,
    path: PathBuf,
    sync_on_append: bool,
    len_bytes: u64,
    recovered_bytes: u64,
    cache_hits: u64,
    lookups: u64,
    /// Content hash → everything known about the candidate.
    index: HashMap<u64, CandidateEntry>,
    /// First-journaled order of candidate hashes (compaction preserves it).
    order: Vec<u64>,
    /// `(label, spec fingerprint) → latest checkpoint`.
    checkpoints: HashMap<(String, u64), Checkpoint>,
}

/// Opens or creates a [`Store`].
///
/// The builder is inert until [`open`](StoreBuilder::open) is called, hence
/// the `#[must_use]`.
#[must_use = "a StoreBuilder does nothing until .open() is called"]
#[derive(Clone, Debug)]
pub struct StoreBuilder {
    path: PathBuf,
    create: bool,
    sync_on_append: bool,
}

impl StoreBuilder {
    /// Targets the journal directory `path` (the journal file lives at
    /// `path/journal.syno`).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        StoreBuilder {
            path: path.into(),
            create: true,
            sync_on_append: false,
        }
    }

    /// Whether to create the directory and journal when missing (default
    /// `true`); with `false`, opening a missing store fails.
    pub fn create(mut self, yes: bool) -> Self {
        self.create = yes;
        self
    }

    /// `fsync` the journal after every append (default `false`: appends are
    /// flushed to the OS but not forced to disk, so a *power* failure may
    /// tear the tail — which recovery handles — while a process crash loses
    /// nothing).
    pub fn sync_on_append(mut self, yes: bool) -> Self {
        self.sync_on_append = yes;
        self
    }

    /// Opens the store, replaying the journal into the in-memory index and
    /// truncating a torn tail record if the last session crashed mid-append.
    ///
    /// The journal is **single-writer**: opening takes an exclusive OS
    /// advisory lock held until the [`Store`] is dropped, so a second open
    /// of the same directory — from this process or another — fails
    /// instead of silently interleaving appends. The lock is released by
    /// the kernel even on crash.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory or file cannot be
    /// created/opened, or when another live `Store` holds the journal
    /// lock; [`StoreError::BadMagic`] / [`StoreError::Version`] for a
    /// foreign or incompatible file; [`StoreError::Corrupt`] when a
    /// well-framed record fails to decode (which truncation must *not*
    /// paper over).
    pub fn open(self) -> Result<Store, StoreError> {
        let dir = &self.path;
        if !dir.exists() {
            if !self.create {
                return Err(StoreError::Io {
                    op: "open",
                    reason: format!("{} does not exist", dir.display()),
                });
            }
            std::fs::create_dir_all(dir).map_err(io_err("create dir"))?;
        }
        let file_path = Store::journal_path(dir);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(self.create)
            .open(&file_path)
            .map_err(io_err("open journal"))?;
        // Single-writer guard: an exclusive advisory lock held for the
        // store's lifetime. Two concurrent writers would append at
        // overlapping offsets and shred each other's frames; the kernel
        // releases the lock on crash, so there are no stale locks to clean.
        file.try_lock().map_err(|e| StoreError::Io {
            op: "lock journal (is another process using this store?)",
            reason: e.to_string(),
        })?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err("read journal"))?;

        let mut inner = Inner {
            file,
            path: file_path,
            sync_on_append: self.sync_on_append,
            len_bytes: 0,
            recovered_bytes: 0,
            cache_hits: 0,
            lookups: 0,
            index: HashMap::new(),
            order: Vec::new(),
            checkpoints: HashMap::new(),
        };

        if bytes.len() < HEADER_LEN as usize {
            // Empty or torn-header file: start fresh.
            inner.recovered_bytes = bytes.len() as u64;
            inner.file.set_len(0).map_err(io_err("truncate"))?;
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(&MAGIC);
            header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
            inner.file.seek(SeekFrom::Start(0)).map_err(io_err("seek"))?;
            inner.file.write_all(&header).map_err(io_err("write header"))?;
            inner.file.sync_data().map_err(io_err("sync header"))?;
            inner.len_bytes = HEADER_LEN;
            return Ok(Store {
                inner: Mutex::new(inner),
            });
        }

        if bytes[..8] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != JOURNAL_VERSION {
            return Err(StoreError::Version { found: version });
        }

        // Replay records; stop (and truncate) at the first torn frame.
        let mut offset = HEADER_LEN as usize;
        let mut good = offset;
        loop {
            match read_frame(&bytes, offset) {
                FrameResult::Record(record, next) => {
                    inner.apply(record);
                    offset = next;
                    good = next;
                }
                FrameResult::End => break,
                FrameResult::Torn => break,
                FrameResult::Corrupt(reason) => {
                    return Err(StoreError::Corrupt {
                        offset: offset as u64,
                        reason,
                    });
                }
            }
        }
        if good < bytes.len() {
            inner.recovered_bytes = (bytes.len() - good) as u64;
            inner.file.set_len(good as u64).map_err(io_err("truncate"))?;
            inner.file.sync_data().map_err(io_err("sync truncate"))?;
        }
        inner.len_bytes = good as u64;
        Ok(Store {
            inner: Mutex::new(inner),
        })
    }
}

enum FrameResult {
    Record(Record, usize),
    /// Clean end of journal.
    End,
    /// The frame is incomplete or fails its checksum: a torn append.
    Torn,
    /// The frame is intact but its payload is malformed.
    Corrupt(String),
}

fn read_frame(bytes: &[u8], offset: usize) -> FrameResult {
    if offset == bytes.len() {
        return FrameResult::End;
    }
    if bytes.len() - offset < 5 {
        return FrameResult::Torn;
    }
    let tag = bytes[offset];
    let len = u32::from_le_bytes(bytes[offset + 1..offset + 5].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return FrameResult::Torn;
    }
    let payload_start = offset + 5;
    let payload_end = payload_start + len as usize;
    let frame_end = payload_end + 4;
    if bytes.len() < frame_end {
        return FrameResult::Torn;
    }
    let payload = &bytes[payload_start..payload_end];
    let stored = u32::from_le_bytes(bytes[payload_end..frame_end].try_into().unwrap());
    if stored != frame_checksum(tag, payload) {
        return FrameResult::Torn;
    }
    // Frame verified: structural failures beyond this point are corruption,
    // not a torn tail.
    let Some(kind) = RecordKind::from_tag(tag) else {
        return FrameResult::Corrupt(format!("unknown record tag {tag:#04x}"));
    };
    match Record::decode_payload(kind, payload) {
        Ok(record) => FrameResult::Record(record, frame_end),
        Err(e) => FrameResult::Corrupt(e.to_string()),
    }
}

impl Inner {
    /// The index entry for `hash`, created (and ordered) on first sight.
    fn entry(&mut self, hash: u64) -> &mut CandidateEntry {
        if !self.index.contains_key(&hash) {
            self.order.push(hash);
            self.index.insert(hash, CandidateEntry::default());
        }
        self.index.get_mut(&hash).expect("just inserted")
    }

    fn apply(&mut self, record: Record) {
        match record {
            Record::Candidate { hash, graph } => {
                let entry = self.entry(hash);
                if entry.graph.is_empty() {
                    entry.graph = graph;
                }
            }
            Record::ProxyScore {
                hash,
                accuracy,
                family,
                reduce_width,
            } => {
                let entry = self.entry(hash);
                entry.accuracy = Some(accuracy);
                entry.family = Some(family);
                entry.score_width = Some(reduce_width);
            }
            Record::LatencyMeasurement {
                hash,
                device,
                compiler,
                latency,
            } => {
                self.entry(hash).latencies.insert((device, compiler), latency);
            }
            Record::Checkpoint(cp) => {
                self.checkpoints
                    .insert((cp.label.clone(), cp.spec_fingerprint), cp);
            }
        }
    }

    fn append(&mut self, record: &Record) -> Result<(), StoreError> {
        let append_span = syno_telemetry::span!("journal_append");
        let payload = record.encode_payload();
        let tag = record.kind().tag();
        let mut frame = Vec::with_capacity(payload.len() + 9);
        frame.push(tag);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&frame_checksum(tag, &payload).to_le_bytes());
        self.file
            .seek(SeekFrom::Start(self.len_bytes))
            .map_err(io_err("seek"))?;
        self.file.write_all(&frame).map_err(io_err("append"))?;
        self.file.flush().map_err(io_err("flush"))?;
        if self.sync_on_append {
            let fsync_span = syno_telemetry::span!("journal_fsync");
            self.file.sync_data().map_err(io_err("sync"))?;
            syno_telemetry::histogram!("syno_store_fsync_seconds")
                .observe_duration(fsync_span.elapsed());
        }
        self.len_bytes += frame.len() as u64;
        syno_telemetry::counter!("syno_store_appends_total").inc();
        syno_telemetry::counter!("syno_store_bytes_written_total").add(frame.len() as u64);
        syno_telemetry::histogram!("syno_store_append_seconds")
            .observe_duration(append_span.elapsed());
        Ok(())
    }
}

/// The persistent candidate store: an append-only journal plus an in-memory
/// index keyed by content hash.
///
/// All methods take `&self`; the store is internally synchronized and is
/// shared across search workers behind an [`Arc`](std::sync::Arc).
pub struct Store {
    inner: Mutex<Inner>,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("Store")
            .field("path", &self.path())
            .field("candidates", &stats.candidates)
            .field("scored", &stats.scored)
            .field("checkpoints", &stats.checkpoints)
            .finish()
    }
}

impl Store {
    /// The journal file inside a store directory.
    pub fn journal_path(dir: &Path) -> PathBuf {
        dir.join("journal.syno")
    }

    /// Shorthand for `StoreBuilder::new(path).open()`.
    ///
    /// # Errors
    ///
    /// See [`StoreBuilder::open`].
    pub fn open(path: impl Into<PathBuf>) -> Result<Store, StoreError> {
        StoreBuilder::new(path).open()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("store lock")
    }

    /// Path of the journal file.
    pub fn path(&self) -> PathBuf {
        self.lock().path.clone()
    }

    /// Journals a candidate operator under its content hash. Returns `false`
    /// without writing when the hash is already present (cross-run dedup).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails.
    pub fn put_candidate(&self, hash: u64, graph: &PGraph) -> Result<bool, StoreError> {
        let mut inner = self.lock();
        if inner.index.get(&hash).is_some_and(|e| !e.graph.is_empty()) {
            return Ok(false);
        }
        let record = Record::Candidate {
            hash,
            graph: codec::encode_graph(graph),
        };
        inner.append(&record)?;
        inner.apply(record);
        Ok(true)
    }

    /// Journals a proxy score for `hash`, tagged with the task `family`
    /// whose proxy produced it (`"vision"`, `"sequence"`, …) and the
    /// `reduce_width` of the execution policy it was computed under (the
    /// width determines the deterministic FP summation order, so it is
    /// part of the score's identity — see [`Store::score_for_contract`]).
    ///
    /// By convention `NaN` marks a *journaled failure*: the candidate's
    /// proxy training failed deterministically, and consumers (the search
    /// pipeline) skip it on recall instead of re-training. NaN scores are
    /// excluded from [`StoreStats::scored`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails.
    pub fn put_score(
        &self,
        hash: u64,
        accuracy: f64,
        family: &str,
        reduce_width: u32,
    ) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let record = Record::ProxyScore {
            hash,
            accuracy,
            family: family.to_owned(),
            reduce_width,
        };
        inner.append(&record)?;
        inner.apply(record);
        Ok(())
    }

    /// Journals a tuned latency for `hash` on one device/compiler pair.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails.
    pub fn put_latency(
        &self,
        hash: u64,
        device: &str,
        compiler: &str,
        latency: f64,
    ) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let record = Record::LatencyMeasurement {
            hash,
            device: device.to_owned(),
            compiler: compiler.to_owned(),
            latency,
        };
        inner.append(&record)?;
        inner.apply(record);
        Ok(())
    }

    /// Journals a checkpoint (latest per `(label, spec_fingerprint)` wins).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails.
    pub fn put_checkpoint(&self, checkpoint: &Checkpoint) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let record = Record::Checkpoint(checkpoint.clone());
        inner.append(&record)?;
        inner.apply(record);
        Ok(())
    }

    /// `true` when a candidate is journaled under `hash`.
    pub fn contains(&self, hash: u64) -> bool {
        self.lock().index.contains_key(&hash)
    }

    /// The cached proxy accuracy for `hash`, counting a hit toward
    /// [`StoreStats::cache_hits`] when present. Use [`Store::score`] for a
    /// side-effect-free probe, or probe + [`Store::record_hit`] when the
    /// recall may still fall through to recomputation (the search pipeline
    /// does this so `cache_hits` counts only evaluations actually served).
    pub fn recall_score(&self, hash: u64) -> Option<f64> {
        let mut inner = self.lock();
        let hit = inner.index.get(&hash).and_then(|e| e.accuracy);
        if hit.is_some() {
            inner.cache_hits += 1;
        }
        hit
    }

    /// Counts one served recall toward [`StoreStats::cache_hits`]. For
    /// callers that probe with [`Store::score`] and only later learn
    /// whether the recall was actually served.
    pub fn record_hit(&self) {
        self.lock().cache_hits += 1;
    }

    /// The cached proxy accuracy for `hash`, without touching hit counters.
    /// `Some(NaN)` is the journaled-failure marker (see
    /// [`Store::put_score`]).
    pub fn score(&self, hash: u64) -> Option<f64> {
        self.lock().index.get(&hash).and_then(|e| e.accuracy)
    }

    /// The task family that produced the cached score for `hash`
    /// (`"vision"` for legacy untagged records), or `None` when no score
    /// is journaled.
    pub fn score_family(&self, hash: u64) -> Option<String> {
        self.lock().index.get(&hash).and_then(|e| e.family.clone())
    }

    /// The cached proxy accuracy for `hash` *if* it was produced by
    /// `family` (or by a legacy record with no tag, which always matches).
    /// One lock, no allocation — a family mismatch reads as a miss so the
    /// caller re-evaluates. Prefer [`Store::score_for_contract`] when the
    /// caller also knows its execution policy's reduce width.
    pub fn score_for_family(&self, hash: u64, family: &str) -> Option<f64> {
        let mut inner = self.lock();
        inner.lookups += 1;
        let entry = inner.index.get(&hash)?;
        if entry.family.as_deref().is_some_and(|f| f != family) {
            return None;
        }
        entry.accuracy
    }

    /// The cached proxy accuracy for `hash` *if* it was produced by
    /// `family` **under** `reduce_width` — the search pipeline's recall
    /// probe. The reduction-tree width reshapes the deterministic FP
    /// summation order, so a score computed at another width is a
    /// different value, not a cache hit; the mismatch reads as a miss and
    /// the caller re-evaluates (and re-journals under its own width).
    /// Width-less legacy records carry width `1` (serial accumulation).
    pub fn score_for_contract(
        &self,
        hash: u64,
        family: &str,
        reduce_width: u32,
    ) -> Option<f64> {
        let mut inner = self.lock();
        inner.lookups += 1;
        let entry = inner.index.get(&hash)?;
        if entry.family.as_deref().is_some_and(|f| f != family) {
            return None;
        }
        if entry.score_width.is_some_and(|w| w != reduce_width) {
            return None;
        }
        entry.accuracy
    }

    /// The cached latency for `hash` on one device/compiler pair.
    pub fn latency(&self, hash: u64, device: &str, compiler: &str) -> Option<f64> {
        self.lock()
            .index
            .get(&hash)
            .and_then(|e| e.latencies.get(&(device.to_owned(), compiler.to_owned())).copied())
    }

    /// Cached latencies for every requested device under one compiler, in
    /// request order; `None` unless **all** are present.
    pub fn latencies(&self, hash: u64, devices: &[&str], compiler: &str) -> Option<Vec<f64>> {
        let inner = self.lock();
        let entry = inner.index.get(&hash)?;
        devices
            .iter()
            .map(|d| {
                entry
                    .latencies
                    .get(&((*d).to_owned(), compiler.to_owned()))
                    .copied()
            })
            .collect()
    }

    /// Decodes the journaled graph for `hash`.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownHash`] when nothing is journaled under `hash`;
    /// [`StoreError::Codec`] when the stored bytes no longer decode.
    pub fn graph(&self, hash: u64) -> Result<PGraph, StoreError> {
        let bytes = {
            let inner = self.lock();
            let entry = inner
                .index
                .get(&hash)
                .filter(|e| !e.graph.is_empty())
                .ok_or(StoreError::UnknownHash { hash })?;
            entry.graph.clone()
        };
        Ok(codec::decode_graph(&bytes)?)
    }

    /// Content hashes of every journaled candidate, in first-seen order.
    pub fn hashes(&self) -> Vec<u64> {
        self.lock().order.clone()
    }

    /// The latest checkpoint for a scenario, if any.
    pub fn checkpoint(&self, label: &str, spec_fingerprint: u64) -> Option<Checkpoint> {
        self.lock()
            .checkpoints
            .get(&(label.to_owned(), spec_fingerprint))
            .cloned()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.lock();
        let mut by_family: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for entry in inner.index.values() {
            if entry.accuracy.is_some_and(|a| !a.is_nan()) {
                // Untagged legacy records were always vision scores.
                let family = entry.family.as_deref().unwrap_or("vision");
                *by_family.entry(family).or_insert(0) += 1;
            }
        }
        StoreStats {
            candidates: inner.order.len() as u64,
            scored: by_family.values().sum(),
            scores_by_family: by_family
                .into_iter()
                .map(|(name, count)| (name.to_owned(), count))
                .collect(),
            latency_measurements: inner
                .index
                .values()
                .map(|e| e.latencies.len() as u64)
                .sum(),
            checkpoints: inner.checkpoints.len() as u64,
            file_bytes: inner.len_bytes,
            recovered_bytes: inner.recovered_bytes,
            cache_hits: inner.cache_hits,
            lookups: inner.lookups,
        }
    }

    /// Rewrites the journal keeping only the live state: one `Candidate`,
    /// at most one `ProxyScore`, and the latest latency per device/compiler
    /// pair for each hash (in first-seen order), plus the latest checkpoint
    /// per scenario. Superseded duplicates are dropped. Returns the stats
    /// after compaction.
    ///
    /// The rewrite goes through a temporary file and an atomic rename, so a
    /// crash mid-compaction leaves either the old or the new journal intact.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when writing or renaming fails.
    pub fn compact(&self) -> Result<StoreStats, StoreError> {
        let compact_span = syno_telemetry::span!("journal_compact");
        let mut inner = self.lock();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        let frame = |record: &Record, bytes: &mut Vec<u8>| {
            let payload = record.encode_payload();
            let tag = record.kind().tag();
            bytes.push(tag);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&payload);
            bytes.extend_from_slice(&frame_checksum(tag, &payload).to_le_bytes());
        };
        for &hash in &inner.order {
            let entry = &inner.index[&hash];
            if !entry.graph.is_empty() {
                frame(
                    &Record::Candidate {
                        hash,
                        graph: entry.graph.clone(),
                    },
                    &mut bytes,
                );
            }
            if let Some(accuracy) = entry.accuracy {
                frame(
                    &Record::ProxyScore {
                        hash,
                        accuracy,
                        // Legacy untagged records were vision scores
                        // computed by serial accumulation; the compacted
                        // journal makes both explicit.
                        family: entry.family.clone().unwrap_or_else(|| "vision".to_owned()),
                        reduce_width: entry.score_width.unwrap_or(1),
                    },
                    &mut bytes,
                );
            }
            let mut pairs: Vec<_> = entry.latencies.iter().collect();
            pairs.sort_by(|a, b| a.0.cmp(b.0));
            for ((device, compiler), &latency) in pairs {
                frame(
                    &Record::LatencyMeasurement {
                        hash,
                        device: device.clone(),
                        compiler: compiler.clone(),
                        latency,
                    },
                    &mut bytes,
                );
            }
        }
        let mut checkpoints: Vec<_> = inner.checkpoints.values().cloned().collect();
        checkpoints.sort_by(|a, b| {
            a.label
                .cmp(&b.label)
                .then(a.spec_fingerprint.cmp(&b.spec_fingerprint))
        });
        for cp in checkpoints {
            frame(&Record::Checkpoint(cp), &mut bytes);
        }

        let tmp = inner.path.with_extension("syno.tmp");
        let mut out = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(io_err("create compact file"))?;
        out.write_all(&bytes).map_err(io_err("write compact file"))?;
        out.sync_data().map_err(io_err("sync compact file"))?;
        // Take the single-writer lock on the replacement *before* the swap,
        // so no other opener can slip in between rename and relock; the old
        // handle's lock dies with it on reassignment below.
        out.try_lock().map_err(|e| StoreError::Io {
            op: "lock compact file",
            reason: e.to_string(),
        })?;
        std::fs::rename(&tmp, &inner.path).map_err(io_err("swap compact file"))?;
        inner.file = out;
        inner.len_bytes = bytes.len() as u64;
        drop(inner);
        syno_telemetry::counter!("syno_store_compactions_total").inc();
        syno_telemetry::counter!("syno_store_bytes_written_total").add(bytes.len() as u64);
        syno_telemetry::histogram!("syno_store_compact_seconds")
            .observe_duration(compact_span.elapsed());
        Ok(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use syno_core::prelude::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "syno-store-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pool_graphs(n: usize) -> Vec<PGraph> {
        let mut vars = VarTable::new();
        let h = vars.declare("H", VarKind::Primary);
        let s = vars.declare("s", VarKind::Coefficient);
        vars.push_valuation(vec![(h, 16), (s, 2)]);
        let vars = vars.into_shared();
        let spec = OperatorSpec::new(
            TensorShape::new(vec![Size::var(h)]),
            TensorShape::new(vec![Size::var(h).div(&Size::var(s))]),
        );
        Enumerator::new(SynthConfig::auto(&vars, 3))
            .synthesis(&vars, &spec)
            .take(n)
            .map(|r| r.unwrap())
            .collect()
    }

    #[test]
    fn records_survive_reopen() {
        let dir = temp_dir("reopen");
        let graphs = pool_graphs(3);
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            for (i, g) in graphs.iter().enumerate() {
                let hash = g.content_hash();
                assert!(store.put_candidate(hash, g).unwrap());
                store.put_score(hash, 0.5 + i as f64 / 10.0, "vision", 1).unwrap();
                store.put_latency(hash, "mobile-cpu", "TVM", 1e-3 * (i + 1) as f64).unwrap();
            }
            store
                .put_checkpoint(&Checkpoint {
                    label: "pool".into(),
                    spec_fingerprint: 42,
                    seed: 7,
                    iterations: 100,
                    discovered: 3,
                })
                .unwrap();
        }
        let store = StoreBuilder::new(&dir).open().unwrap();
        let stats = store.stats();
        assert_eq!(stats.candidates, 3);
        assert_eq!(stats.scored, 3);
        assert_eq!(stats.latency_measurements, 3);
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.recovered_bytes, 0);
        for (i, g) in graphs.iter().enumerate() {
            let hash = g.content_hash();
            assert_eq!(store.score(hash), Some(0.5 + i as f64 / 10.0));
            assert_eq!(store.latency(hash, "mobile-cpu", "TVM"), Some(1e-3 * (i + 1) as f64));
            let back = store.graph(hash).unwrap();
            assert_eq!(back.content_hash(), hash);
            assert_eq!(back.render(), g.render());
        }
        let cp = store.checkpoint("pool", 42).unwrap();
        assert_eq!(cp.iterations, 100);
        assert!(store.checkpoint("pool", 43).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_candidates_are_not_rewritten() {
        let dir = temp_dir("dedup");
        let graphs = pool_graphs(1);
        let store = StoreBuilder::new(&dir).open().unwrap();
        let hash = graphs[0].content_hash();
        assert!(store.put_candidate(hash, &graphs[0]).unwrap());
        let bytes_after_first = store.stats().file_bytes;
        assert!(!store.put_candidate(hash, &graphs[0]).unwrap());
        assert_eq!(store.stats().file_bytes, bytes_after_first);
        assert_eq!(store.stats().candidates, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        let graphs = pool_graphs(2);
        let (h0, h1) = (graphs[0].content_hash(), graphs[1].content_hash());
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            store.put_candidate(h0, &graphs[0]).unwrap();
            store.put_score(h0, 0.9, "vision", 1).unwrap();
            store.put_candidate(h1, &graphs[1]).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the last record.
        let journal = Store::journal_path(&dir);
        let len = std::fs::metadata(&journal).unwrap().len();
        let file = OpenOptions::new().write(true).open(&journal).unwrap();
        file.set_len(len - 7).unwrap();
        drop(file);

        let store = StoreBuilder::new(&dir).open().unwrap();
        let stats = store.stats();
        assert!(stats.recovered_bytes > 0, "{stats:?}");
        assert_eq!(stats.candidates, 1, "torn second candidate dropped");
        assert_eq!(store.score(h0), Some(0.9));
        assert!(!store.contains(h1));
        // The store keeps working after recovery.
        store.put_candidate(h1, &graphs[1]).unwrap();
        drop(store);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.stats().candidates, 2);
        assert_eq!(store.stats().recovered_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_tail_checksum_is_recovered() {
        let dir = temp_dir("garbage");
        let graphs = pool_graphs(1);
        let hash = graphs[0].content_hash();
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            store.put_candidate(hash, &graphs[0]).unwrap();
        }
        let journal = Store::journal_path(&dir);
        let mut file = OpenOptions::new().append(true).open(&journal).unwrap();
        file.write_all(&[2, 16, 0, 0, 0]).unwrap(); // score frame header…
        file.write_all(&[0xab; 20]).unwrap(); // …with garbage payload+crc
        drop(file);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert!(store.stats().recovered_bytes > 0);
        assert!(store.contains(hash));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_rejected() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(Store::journal_path(&dir), b"definitely not a journal").unwrap();
        assert_eq!(StoreBuilder::new(&dir).open().unwrap_err(), StoreError::BadMagic);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_store_without_create_fails() {
        let dir = temp_dir("missing");
        let err = StoreBuilder::new(&dir).create(false).open().unwrap_err();
        assert!(matches!(err, StoreError::Io { op: "open", .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_superseded_records() {
        let dir = temp_dir("compact");
        let graphs = pool_graphs(2);
        let store = StoreBuilder::new(&dir).open().unwrap();
        for g in &graphs {
            store.put_candidate(g.content_hash(), g).unwrap();
        }
        let h = graphs[0].content_hash();
        for i in 0..10 {
            store.put_score(h, i as f64 / 10.0, "vision", 1).unwrap();
            store.put_latency(h, "mobile-cpu", "TVM", 1e-3 * (i + 1) as f64).unwrap();
            store
                .put_checkpoint(&Checkpoint {
                    label: "pool".into(),
                    spec_fingerprint: 1,
                    seed: 0,
                    iterations: i,
                    discovered: 1,
                })
                .unwrap();
        }
        let before = store.stats();
        let after = store.compact().unwrap();
        assert!(after.file_bytes < before.file_bytes, "{after:?} vs {before:?}");
        assert_eq!(after.candidates, 2);
        assert_eq!(after.scored, 1);
        assert_eq!(after.latency_measurements, 1);
        assert_eq!(after.checkpoints, 1);
        // Latest values won.
        assert_eq!(store.score(h), Some(0.9));
        assert_eq!(store.latency(h, "mobile-cpu", "TVM"), Some(1e-2));
        assert_eq!(store.checkpoint("pool", 1).unwrap().iterations, 9);
        // Appending still works after the swap, and a reopen sees one
        // consistent journal.
        store.put_score(h, 0.95, "vision", 1).unwrap();
        drop(store);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.score(h), Some(0.95));
        assert_eq!(store.stats().candidates, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_writer_is_locked_out() {
        let dir = temp_dir("lock");
        let store = StoreBuilder::new(&dir).open().unwrap();
        let err = StoreBuilder::new(&dir).open().unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        drop(store);
        StoreBuilder::new(&dir).open().expect("lock released on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nan_scores_mark_journaled_failures() {
        let dir = temp_dir("nan");
        let graphs = pool_graphs(1);
        let h = graphs[0].content_hash();
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            store.put_candidate(h, &graphs[0]).unwrap();
            store.put_score(h, f64::NAN, "sequence", 1).unwrap();
            assert!(store.score(h).unwrap().is_nan());
            assert_eq!(store.stats().scored, 0, "failure markers are not scores");
            store.compact().unwrap();
        }
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert!(
            store.score(h).unwrap().is_nan(),
            "failure marker survives reopen and compaction"
        );
        assert_eq!(store.stats().scored, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recall_counts_cache_hits() {
        let dir = temp_dir("hits");
        let graphs = pool_graphs(1);
        let h = graphs[0].content_hash();
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.recall_score(h), None);
        assert_eq!(store.stats().cache_hits, 0);
        store.put_candidate(h, &graphs[0]).unwrap();
        store.put_score(h, 0.7, "vision", 1).unwrap();
        assert_eq!(store.recall_score(h), Some(0.7));
        assert_eq!(store.recall_score(h), Some(0.7));
        assert_eq!(store.stats().cache_hits, 2);
        assert_eq!(store.score(h), Some(0.7), "probe does not count");
        assert_eq!(store.stats().cache_hits, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Family tags round-trip across reopen and compaction — the store
    /// side of the codec format-version-2 change.
    #[test]
    fn score_family_tags_survive_reopen_and_compaction() {
        let dir = temp_dir("family");
        let graphs = pool_graphs(2);
        let (h0, h1) = (graphs[0].content_hash(), graphs[1].content_hash());
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            store.put_candidate(h0, &graphs[0]).unwrap();
            store.put_score(h0, 0.6, "sequence", 1).unwrap();
            store.put_candidate(h1, &graphs[1]).unwrap();
            store.put_score(h1, 0.4, "vision", 1).unwrap();
        }
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.score_family(h0).as_deref(), Some("sequence"));
        assert_eq!(store.score_family(h1).as_deref(), Some("vision"));
        assert_eq!(store.score(h0), Some(0.6));
        store.compact().unwrap();
        drop(store);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.score_family(h0).as_deref(), Some("sequence"));
        assert_eq!(store.score(h1), Some(0.4));
        assert!(store.score_family(0xdead).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A journal written before the family tag existed (16-byte
    /// `ProxyScore` payloads) must load, defaulting the family to
    /// `"vision"` — old journals stay readable across the codec bump.
    #[test]
    fn legacy_untagged_score_records_decode_as_vision() {
        let dir = temp_dir("legacy");
        let graphs = pool_graphs(1);
        let hash = graphs[0].content_hash();
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            store.put_candidate(hash, &graphs[0]).unwrap();
        }
        // Append a legacy-framed score record by hand: hash + accuracy,
        // no family string — exactly what pre-version-2 builds wrote.
        let mut e = Encoder::new();
        e.put_u64(hash);
        e.put_f64(0.8125);
        let payload = e.into_bytes();
        let tag = RecordKind::ProxyScore.tag();
        let mut frame = Vec::new();
        frame.push(tag);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&frame_checksum(tag, &payload).to_le_bytes());
        let journal = Store::journal_path(&dir);
        let mut file = OpenOptions::new().append(true).open(&journal).unwrap();
        file.write_all(&frame).unwrap();
        drop(file);

        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.stats().recovered_bytes, 0, "legacy frame is valid");
        assert_eq!(store.score(hash), Some(0.8125));
        assert_eq!(store.score_family(hash).as_deref(), Some("vision"));
        // Width-less legacy scores were produced by serial accumulation, so
        // they recall only under the width-1 contract.
        assert_eq!(store.score_for_contract(hash, "vision", 1), Some(0.8125));
        assert_eq!(store.score_for_contract(hash, "vision", 4), None);
        // Compaction rewrites it with an explicit tag and it still reads.
        store.compact().unwrap();
        drop(store);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.score(hash), Some(0.8125));
        assert_eq!(store.score_family(hash).as_deref(), Some("vision"));
        assert_eq!(store.score_for_contract(hash, "vision", 1), Some(0.8125));
        assert_eq!(store.score_for_contract(hash, "vision", 4), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `score_for_contract` treats the reduction-tree width as part of the
    /// score's identity: a score journaled under one width is a *miss* under
    /// any other, both ways, and the width survives reopen and compaction
    /// (the codec format-version-3 change).
    #[test]
    fn score_for_contract_requires_matching_width() {
        let dir = temp_dir("width");
        let graphs = pool_graphs(2);
        let (h1, h4) = (graphs[0].content_hash(), graphs[1].content_hash());
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            store.put_candidate(h1, &graphs[0]).unwrap();
            store.put_score(h1, 0.6, "vision", 1).unwrap();
            store.put_candidate(h4, &graphs[1]).unwrap();
            store.put_score(h4, 0.8, "vision", 4).unwrap();
            assert_eq!(store.score_for_contract(h1, "vision", 1), Some(0.6));
            assert_eq!(store.score_for_contract(h1, "vision", 4), None);
            assert_eq!(store.score_for_contract(h4, "vision", 4), Some(0.8));
            assert_eq!(store.score_for_contract(h4, "vision", 1), None);
            // Family mismatches are still misses, width notwithstanding.
            assert_eq!(store.score_for_contract(h4, "sequence", 4), None);
            // Every probe above counts as a lookup; hits are only recorded
            // by the caller once the recall is actually served.
            assert_eq!(store.stats().lookups, 5);
            assert_eq!(store.stats().cache_hits, 0);
        }
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.score_for_contract(h4, "vision", 4), Some(0.8));
        assert_eq!(store.score_for_contract(h4, "vision", 1), None);
        store.compact().unwrap();
        drop(store);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.score_for_contract(h1, "vision", 1), Some(0.6));
        assert_eq!(store.score_for_contract(h1, "vision", 4), None);
        assert_eq!(store.score_for_contract(h4, "vision", 4), Some(0.8));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let dir = temp_dir("threads");
        let graphs = pool_graphs(4);
        let store = Arc::new(StoreBuilder::new(&dir).open().unwrap());
        std::thread::scope(|scope| {
            for g in &graphs {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let h = g.content_hash();
                    store.put_candidate(h, g).unwrap();
                    store.put_score(h, 0.5, "vision", 1).unwrap();
                });
            }
        });
        assert_eq!(store.stats().candidates, graphs.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
