//! The versioned candidate repository: segment-per-writer journal shards,
//! an operation log, and named candidate collections, over one in-memory
//! index.
//!
//! ## On-disk layout
//!
//! A repository is a directory of journal **segments**:
//!
//! ```text
//! repo/
//! ├── journal.syno        canonical segment (fan-in compaction target)
//! ├── journal-<w1>.syno   writer w1's shard
//! └── journal-<w2>.syno   writer w2's shard
//! ```
//!
//! Each segment is the same append-only file format:
//!
//! ```text
//! +--------------------------------------------------------------+
//! | magic "SYNOSTOR" (8 bytes) | journal version (u32 LE)        |  header
//! +--------------------------------------------------------------+
//! | kind (u8) | payload len (u32 LE) | payload | checksum (u32)  |  record 0
//! +--------------------------------------------------------------+
//! | ...                                                          |  record 1…
//! ```
//!
//! A writer opens the repository with [`StoreBuilder::writer`] and takes an
//! exclusive OS advisory lock on **its own shard only**, so any number of
//! processes can share one repository directory while each segment keeps a
//! single appender. Opening replays every segment in deterministic
//! *repository order* — the canonical segment first, then shards sorted by
//! file name — so every opener converges on the same merged view.
//! [`Store::compact`] is the fan-in: it locks out every other segment's
//! writer, merges all segments into a fresh canonical segment, and removes
//! the merged-away shards.
//!
//! The checksum is the low 32 bits of a 64-bit FNV-1a digest over the kind
//! byte plus the payload, computed with the same stable hasher that backs
//! content hashes. Records are only ever appended; a crash can therefore
//! corrupt at most the **tail** of a segment. Loading walks the records in
//! order and, at the first framing or checksum failure in the writer's own
//! segment, truncates that segment back to the last good record boundary —
//! the recovery strategy of every write-ahead log. A torn tail in *another
//! writer's* shard is skipped without truncation (only its owner may
//! rewrite it; it recovers the tail on its own next open). A record that
//! frames and checksums correctly but fails to decode indicates real
//! corruption (or a foreign writer) and is reported as
//! [`StoreError::Corrupt`] rather than silently dropped.
//!
//! ## Payloads
//!
//! Payloads use [`syno_core::codec`] primitives. `Candidate` embeds the
//! graph's own versioned encoding ([`syno_core::codec::encode_graph`]), so
//! the codec's `FORMAT_VERSION` is checked again when a graph is decoded.
//! Since codec format version 2, `ProxyScore` payloads carry the task
//! family that produced the score; shorter legacy payloads decode with the
//! family defaulted to `"vision"` (the only family that existed when they
//! were written), so version-1 journals stay fully readable. Codec format
//! version 4 added the [`Operation`] log record and the [`CandidateSet`]
//! collection record; journals written before v4 simply contain none, so
//! they open unchanged as a one-shard repository.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use syno_core::codec::{self, CodecError, Decoder, Encoder};
use syno_core::graph::PGraph;
use syno_core::stable::StableHasher;

/// File magic identifying a syno-store journal.
const MAGIC: [u8; 8] = *b"SYNOSTOR";
/// Version of the journal framing (independent of the value codec's
/// [`codec::FORMAT_VERSION`], which is checked per embedded graph).
const JOURNAL_VERSION: u32 = 1;
/// Bytes of header before the first record.
const HEADER_LEN: u64 = 12;
/// Refuse absurd frame lengths so a corrupt length prefix cannot force a
/// multi-gigabyte allocation.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Errors surfaced by store operations.
///
/// Marked `#[non_exhaustive]`: repository-level failures grow with the
/// store (sharding added [`StoreError::InvalidWriter`] and
/// [`StoreError::UnknownSet`]), so downstream matchers must keep a
/// wildcard arm.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// An OS-level I/O failure, tagged with the operation that failed.
    Io {
        /// What the store was doing.
        op: &'static str,
        /// Rendered `std::io::Error`.
        reason: String,
    },
    /// The file exists but does not start with the journal magic.
    BadMagic,
    /// The journal framing version is not supported by this build.
    Version {
        /// Version found in the header.
        found: u32,
    },
    /// A record framed and checksummed correctly but its payload is
    /// malformed — not a torn tail, real corruption.
    Corrupt {
        /// Byte offset of the offending record.
        offset: u64,
        /// What went wrong.
        reason: String,
    },
    /// A value-level decode failure (from [`syno_core::codec`]).
    Codec(CodecError),
    /// The store has no journaled graph under the requested content hash.
    UnknownHash {
        /// The missing key.
        hash: u64,
    },
    /// A writer name passed to [`StoreBuilder::writer`] is not a valid
    /// shard name (`[A-Za-z0-9_-]`, 1–64 characters).
    InvalidWriter {
        /// The offending name.
        name: String,
    },
    /// A derive operation referenced a candidate set the repository does
    /// not hold.
    UnknownSet {
        /// The missing set name.
        name: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, reason } => write!(f, "store {op} failed: {reason}"),
            StoreError::BadMagic => write!(f, "not a syno-store journal (bad magic)"),
            StoreError::Version { found } => write!(
                f,
                "unsupported journal version {found} (this build reads {JOURNAL_VERSION})"
            ),
            StoreError::Corrupt { offset, reason } => {
                write!(f, "corrupt record at byte {offset}: {reason}")
            }
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::UnknownHash { hash } => {
                write!(f, "no candidate journaled under {hash:#018x}")
            }
            StoreError::InvalidWriter { name } => write!(
                f,
                "invalid writer name {name:?} (want 1-64 chars of [A-Za-z0-9_-])"
            ),
            StoreError::UnknownSet { name } => {
                write!(f, "no candidate set named {name:?} in the repository")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> StoreError {
    move |e| StoreError::Io {
        op,
        reason: e.to_string(),
    }
}

/// The journaled record kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum RecordKind {
    /// A candidate operator (content hash + encoded graph recipe).
    Candidate,
    /// A proxy-training result for a candidate.
    ProxyScore,
    /// One tuned latency for a candidate on one device/compiler pair.
    LatencyMeasurement,
    /// A search scenario's journaled position.
    Checkpoint,
    /// One entry of the repository's operation log (codec v4).
    Operation,
    /// A named candidate collection (codec v4).
    CandidateSet,
}

impl RecordKind {
    /// The wire tag byte of this kind.
    pub fn tag(self) -> u8 {
        match self {
            RecordKind::Candidate => 1,
            RecordKind::ProxyScore => 2,
            RecordKind::LatencyMeasurement => 3,
            RecordKind::Checkpoint => 4,
            RecordKind::Operation => 5,
            RecordKind::CandidateSet => 6,
        }
    }

    /// Parses a wire tag byte.
    pub fn from_tag(tag: u8) -> Option<RecordKind> {
        Some(match tag {
            1 => RecordKind::Candidate,
            2 => RecordKind::ProxyScore,
            3 => RecordKind::LatencyMeasurement,
            4 => RecordKind::Checkpoint,
            5 => RecordKind::Operation,
            6 => RecordKind::CandidateSet,
            _ => return None,
        })
    }
}

/// A search scenario's journaled position, written periodically by
/// `syno-search` and consumed by `SearchBuilder::resume_from`.
///
/// The `(label, spec_fingerprint)` pair identifies the scenario; `seed` pins
/// the MCTS rollout stream so a resumed run replays the same deterministic
/// candidate sequence (with evaluations recalled from the store instead of
/// recomputed).
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// The scenario label the checkpoint belongs to.
    pub label: String,
    /// [`OperatorSpec::fingerprint`](syno_core::spec::OperatorSpec::fingerprint)
    /// of the scenario's spec under its variable table.
    pub spec_fingerprint: u64,
    /// The MCTS seed the scenario ran with.
    pub seed: u64,
    /// Iterations completed when the checkpoint was written.
    pub iterations: u64,
    /// Distinct candidates discovered when the checkpoint was written.
    pub discovered: u64,
}

/// The typed identity of a proxy score: which task family's proxy produced
/// it, and under which deterministic reduction-tree width.
///
/// A stored accuracy is only meaningful — and only recallable — under the
/// exact `(family, reduce_width)` pair that produced it: the family picks
/// the proxy task, and the width reshapes the deterministic FP summation
/// order, so either mismatch is a different value, not a cache hit. The
/// contract travels as one value (`put_score(hash, acc, &contract)` /
/// `score_for_contract(hash, &contract)`) so growing it later does not
/// break every call site again.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ScoreContract {
    /// Task family whose proxy produced the score (e.g. `"vision"`,
    /// `"sequence"`).
    pub family: String,
    /// Reduction-tree width of the execution policy the score was computed
    /// under (`1` = serial accumulation).
    pub reduce_width: u32,
}

impl ScoreContract {
    /// A contract for `family` at `reduce_width`.
    pub fn new(family: impl Into<String>, reduce_width: u32) -> Self {
        ScoreContract {
            family: family.into(),
            reduce_width,
        }
    }
}

impl fmt::Display for ScoreContract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@w{}", self.family, self.reduce_width)
    }
}

/// What a journaled [`Operation`] records. Marked `#[non_exhaustive]`:
/// future repository operations (branch, merge, prune, …) must not be a
/// semver break for downstream matchers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpKind {
    /// A search run started fresh against the repository.
    RunStarted,
    /// A search run resumed from a journaled checkpoint.
    RunResumed,
    /// A run wrote a periodic checkpoint.
    Checkpoint,
    /// A fan-in compaction merged the repository's segments.
    Compaction,
    /// A candidate set was derived from existing sets.
    Derive,
    /// A serving-layer client attached to (took over) a live session's
    /// event stream after its original connection dropped.
    SessionAttached,
}

impl OpKind {
    fn tag(self) -> u8 {
        match self {
            OpKind::RunStarted => 0,
            OpKind::RunResumed => 1,
            OpKind::Checkpoint => 2,
            OpKind::Compaction => 3,
            OpKind::Derive => 4,
            OpKind::SessionAttached => 5,
        }
    }

    fn from_tag(tag: u8) -> Option<OpKind> {
        Some(match tag {
            0 => OpKind::RunStarted,
            1 => OpKind::RunResumed,
            2 => OpKind::Checkpoint,
            3 => OpKind::Compaction,
            4 => OpKind::Derive,
            5 => OpKind::SessionAttached,
            _ => return None,
        })
    }

    /// Stable lower-case name (`"run-started"`, `"derive"`, …).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::RunStarted => "run-started",
            OpKind::RunResumed => "run-resumed",
            OpKind::Checkpoint => "checkpoint",
            OpKind::Compaction => "compaction",
            OpKind::Derive => "derive",
            OpKind::SessionAttached => "session-attached",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One entry of the repository's operation log: which writer did what, to
/// which scenario or set, and any human-readable detail. The log is what
/// gives candidate collections *lineage* — two search runs can branch from
/// and merge into one shared repository and the history stays auditable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Operation {
    /// What happened.
    pub kind: OpKind,
    /// The shard writer that journaled the operation (`"journal"` for the
    /// canonical single-writer segment).
    pub writer: String,
    /// The scenario label or set name the operation concerns.
    pub label: String,
    /// The scenario's spec fingerprint, or `0` for operations (compaction,
    /// derive) that are not tied to one spec.
    pub spec_fingerprint: u64,
    /// Free-form detail (e.g. `"from iteration 40"` for a resume, the
    /// lineage expression for a derive).
    pub detail: String,
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}]", self.kind, self.label, self.writer)?;
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

/// A derive-style set operation over two named [`CandidateSet`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DeriveOp {
    /// Hashes in either input set.
    Union,
    /// Hashes in both input sets.
    Intersection,
    /// Hashes in the left set but not the right.
    Difference,
}

impl DeriveOp {
    /// Stable lower-case name (`"union"`, `"intersection"`, `"difference"`).
    pub fn name(self) -> &'static str {
        match self {
            DeriveOp::Union => "union",
            DeriveOp::Intersection => "intersection",
            DeriveOp::Difference => "difference",
        }
    }

    /// Parses [`DeriveOp::name`] output (the serve protocol's op strings).
    pub fn from_name(name: &str) -> Option<DeriveOp> {
        Some(match name {
            "union" => DeriveOp::Union,
            "intersection" => DeriveOp::Intersection,
            "difference" => DeriveOp::Difference,
            _ => return None,
        })
    }
}

impl fmt::Display for DeriveOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, content-hash-keyed candidate collection with lineage.
///
/// The member list is **canonical**: sorted ascending and deduplicated, so
/// equal collections have equal bytes — `derive_*` output is byte-stable
/// across repeat runs, which the multi-writer CI smoke asserts end-to-end.
/// Latest journaled set per name wins, like checkpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateSet {
    name: String,
    lineage: String,
    hashes: Vec<u64>,
}

impl CandidateSet {
    /// A set named `name` holding `hashes` (sorted + deduplicated here,
    /// whatever order they arrive in), with a free-form `lineage`
    /// expression saying where the collection came from (e.g. `"run:conv"`
    /// or `"union(conv,pool)"`).
    pub fn new(name: impl Into<String>, lineage: impl Into<String>, mut hashes: Vec<u64>) -> Self {
        hashes.sort_unstable();
        hashes.dedup();
        CandidateSet {
            name: name.into(),
            lineage: lineage.into(),
            hashes,
        }
    }

    /// The set's repository-wide name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Where the collection came from.
    pub fn lineage(&self) -> &str {
        &self.lineage
    }

    /// The member content hashes, sorted ascending.
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// `true` when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// `true` when `hash` is a member.
    pub fn contains(&self, hash: u64) -> bool {
        self.hashes.binary_search(&hash).is_ok()
    }

    /// A stable 64-bit digest over name, lineage, and members — two equal
    /// digests mean byte-identical journaled set records, which is how the
    /// CI smoke asserts derive determinism across independent runs.
    pub fn digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = StableHasher::new();
        h.write(self.name.as_bytes());
        h.write(&[0]);
        h.write(self.lineage.as_bytes());
        h.write(&[0]);
        h.write(&(self.hashes.len() as u64).to_le_bytes());
        for hash in &self.hashes {
            h.write(&hash.to_le_bytes());
        }
        h.finish()
    }

    /// The top `k` members by journaled proxy score under `contract`,
    /// best first. Members without a score under that exact contract (or
    /// with a NaN journaled-failure marker) are skipped; ties break by
    /// ascending hash so the selection is deterministic.
    pub fn top_k(&self, store: &Store, k: usize, contract: &ScoreContract) -> Vec<(u64, f64)> {
        let inner = store.lock();
        let mut scored: Vec<(u64, f64)> = self
            .hashes
            .iter()
            .filter_map(|&hash| {
                inner
                    .state
                    .contract_score(hash, contract)
                    .filter(|a| !a.is_nan())
                    .map(|a| (hash, a))
            })
            .collect();
        drop(inner);
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("NaN filtered above")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }
}

/// One decoded journal record (exposed for tooling and tests; the search
/// pipeline uses the typed `put_*`/lookup methods instead).
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A candidate operator.
    Candidate {
        /// Content hash (the store key).
        hash: u64,
        /// [`codec::encode_graph`] bytes.
        graph: Vec<u8>,
    },
    /// A proxy accuracy for `hash`.
    ProxyScore {
        /// Content hash of the scored candidate.
        hash: u64,
        /// Proxy accuracy in `[0, 1]`.
        accuracy: f64,
        /// The task family whose proxy produced the score (e.g.
        /// `"vision"`, `"sequence"`). Records written before codec format
        /// version 2 carry no tag and decode as `"vision"` — historically
        /// the only family that existed.
        family: String,
        /// Reduction-tree width of the execution policy that produced the
        /// score. The width reshapes the deterministic FP summation order,
        /// so scores are only comparable (and recallable) at the same
        /// width. Records written before codec format version 3 carry no
        /// width and decode as `1` — serial accumulation, which is what
        /// produced them.
        reduce_width: u32,
    },
    /// A tuned latency for `hash` on one device/compiler pair.
    LatencyMeasurement {
        /// Content hash of the tuned candidate.
        hash: u64,
        /// Device display name.
        device: String,
        /// Compiler display name.
        compiler: String,
        /// Latency in seconds.
        latency: f64,
    },
    /// A search checkpoint.
    Checkpoint(Checkpoint),
    /// One operation-log entry (codec v4).
    Operation(Operation),
    /// A named candidate collection (codec v4; latest per name wins).
    CandidateSet(CandidateSet),
}

impl Record {
    /// The kind tag of this record.
    pub fn kind(&self) -> RecordKind {
        match self {
            Record::Candidate { .. } => RecordKind::Candidate,
            Record::ProxyScore { .. } => RecordKind::ProxyScore,
            Record::LatencyMeasurement { .. } => RecordKind::LatencyMeasurement,
            Record::Checkpoint(_) => RecordKind::Checkpoint,
            Record::Operation(_) => RecordKind::Operation,
            Record::CandidateSet(_) => RecordKind::CandidateSet,
        }
    }

    /// Encodes the record's payload bytes (everything between the frame's
    /// length prefix and its checksum). Public so codec round-trip tests
    /// and tooling can frame records without a live store.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Record::Candidate { hash, graph } => {
                e.put_u64(*hash);
                e.put_bytes(graph);
            }
            Record::ProxyScore {
                hash,
                accuracy,
                family,
                reduce_width,
            } => {
                e.put_u64(*hash);
                e.put_f64(*accuracy);
                e.put_str(family);
                e.put_u32(*reduce_width);
            }
            Record::LatencyMeasurement {
                hash,
                device,
                compiler,
                latency,
            } => {
                e.put_u64(*hash);
                e.put_str(device);
                e.put_str(compiler);
                e.put_f64(*latency);
            }
            Record::Checkpoint(cp) => {
                e.put_str(&cp.label);
                e.put_u64(cp.spec_fingerprint);
                e.put_u64(cp.seed);
                e.put_u64(cp.iterations);
                e.put_u64(cp.discovered);
            }
            Record::Operation(op) => {
                e.put_u8(op.kind.tag());
                e.put_str(&op.writer);
                e.put_str(&op.label);
                e.put_u64(op.spec_fingerprint);
                e.put_str(&op.detail);
            }
            Record::CandidateSet(set) => {
                e.put_str(&set.name);
                e.put_str(&set.lineage);
                e.put_u32(set.hashes.len() as u32);
                for hash in &set.hashes {
                    e.put_u64(*hash);
                }
            }
        }
        e.into_bytes()
    }

    /// Decodes one record payload of the given `kind`; the inverse of
    /// [`Record::encode_payload`]. Trailing bytes are rejected.
    pub fn decode_payload(kind: RecordKind, payload: &[u8]) -> Result<Record, CodecError> {
        let mut d = Decoder::new(payload);
        let record = match kind {
            RecordKind::Candidate => Record::Candidate {
                hash: d.get_u64()?,
                graph: d.get_bytes()?.to_vec(),
            },
            RecordKind::ProxyScore => {
                let hash = d.get_u64()?;
                let accuracy = d.get_f64()?;
                // Legacy (codec format version 1) score records end here;
                // every score written back then came from the vision
                // proxy, so the default tag is historically exact.
                let family = if d.remaining() > 0 {
                    d.get_str()?
                } else {
                    "vision".to_owned()
                };
                // Pre-version-3 records carry no reduce width; they were
                // produced by serial accumulation, i.e. width 1.
                let reduce_width = if d.remaining() > 0 { d.get_u32()? } else { 1 };
                Record::ProxyScore {
                    hash,
                    accuracy,
                    family,
                    reduce_width,
                }
            }
            RecordKind::LatencyMeasurement => Record::LatencyMeasurement {
                hash: d.get_u64()?,
                device: d.get_str()?,
                compiler: d.get_str()?,
                latency: d.get_f64()?,
            },
            RecordKind::Checkpoint => Record::Checkpoint(Checkpoint {
                label: d.get_str()?,
                spec_fingerprint: d.get_u64()?,
                seed: d.get_u64()?,
                iterations: d.get_u64()?,
                discovered: d.get_u64()?,
            }),
            RecordKind::Operation => {
                let tag = d.get_u8()?;
                let kind = OpKind::from_tag(tag).ok_or(CodecError::BadTag {
                    what: "operation kind",
                    tag,
                })?;
                Record::Operation(Operation {
                    kind,
                    writer: d.get_str()?,
                    label: d.get_str()?,
                    spec_fingerprint: d.get_u64()?,
                    detail: d.get_str()?,
                })
            }
            RecordKind::CandidateSet => {
                let name = d.get_str()?;
                let lineage = d.get_str()?;
                let count = d.get_u32()? as usize;
                let mut hashes = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    hashes.push(d.get_u64()?);
                }
                // `new` re-normalizes (sort + dedup), so even a hand-built
                // record decodes into a canonical collection.
                Record::CandidateSet(CandidateSet::new(name, lineage, hashes))
            }
        };
        if d.remaining() != 0 {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after record payload",
                d.remaining()
            )));
        }
        Ok(record)
    }
}

/// FNV-1a over the kind byte + payload, truncated to 32 bits.
fn frame_checksum(kind: u8, payload: &[u8]) -> u32 {
    use std::hash::Hasher;
    let mut h = StableHasher::new();
    h.write(&[kind]);
    h.write(payload);
    h.finish() as u32
}

/// Aggregate store counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct candidates journaled.
    pub candidates: u64,
    /// Candidates with a successful proxy score (NaN failure markers are
    /// excluded).
    pub scored: u64,
    /// Successful proxy scores per task family, sorted by family name
    /// (NaN failure markers are excluded) — the per-family breakdown the
    /// serving layer's `Status` reply reports to tenants.
    pub scores_by_family: Vec<(String, u64)>,
    /// Latency measurements journaled (device/compiler pairs).
    pub latency_measurements: u64,
    /// Live checkpoints (latest per scenario).
    pub checkpoints: u64,
    /// Operation-log entries (run lineage, compactions, derives).
    pub operations: u64,
    /// Named candidate sets (latest per name).
    pub candidate_sets: u64,
    /// Journal segments in the repository when this handle opened (own
    /// shard + canonical + other writers' shards); fan-in compaction
    /// brings it back toward 1.
    pub segments: u64,
    /// Repository size on disk, bytes: this writer's segment plus every
    /// other segment as of open.
    pub file_bytes: u64,
    /// Bytes discarded by torn-tail recovery when the store was opened.
    pub recovered_bytes: u64,
    /// Evaluations served from the store instead of recomputed, this
    /// process (not persisted).
    pub cache_hits: u64,
    /// Recall probes answered this process, hit or miss (not persisted).
    /// Together with [`cache_hits`](StoreStats::cache_hits) this gives the
    /// warm-store hit ratio.
    pub lookups: u64,
}

impl StoreStats {
    /// Fraction of recall probes served from the journal this process, or
    /// `None` before the first probe. `Some(1.0)` is a fully warm store.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        if self.lookups == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / self.lookups as f64)
        }
    }

    /// Successful proxy scores recorded for `family`.
    pub fn scores_for_family(&self, family: &str) -> u64 {
        self.scores_by_family
            .iter()
            .find(|(name, _)| name == family)
            .map(|&(_, count)| count)
            .unwrap_or(0)
    }
}

#[derive(Clone, Debug, Default)]
struct CandidateEntry {
    graph: Vec<u8>,
    accuracy: Option<f64>,
    /// Task family that produced `accuracy` (`"vision"` for legacy
    /// records); set with it by `ProxyScore` records.
    family: Option<String>,
    /// Reduction-tree width that produced `accuracy` (`1` for legacy
    /// records); set with it by `ProxyScore` records.
    score_width: Option<u32>,
    /// `(device, compiler) → latency seconds`, latest record wins.
    latencies: HashMap<(String, String), f64>,
}

/// The merged in-memory view of every replayed segment. Split from
/// [`Inner`] so fan-in compaction can rebuild a fresh view from disk and
/// swap it in atomically.
#[derive(Default)]
struct ReplayState {
    /// Content hash → everything known about the candidate.
    index: HashMap<u64, CandidateEntry>,
    /// First-journaled order of candidate hashes in repository order
    /// (compaction preserves it).
    order: Vec<u64>,
    /// `(label, spec fingerprint) → latest checkpoint`.
    checkpoints: HashMap<(String, u64), Checkpoint>,
    /// The operation log, in repository replay order.
    ops: Vec<Operation>,
    /// Named candidate sets, latest record per name; `BTreeMap` so
    /// compaction writes them in deterministic name order.
    sets: BTreeMap<String, CandidateSet>,
}

struct Inner {
    file: File,
    path: PathBuf,
    /// The repository directory holding every segment.
    dir: PathBuf,
    /// Shard writer name, or `None` for the canonical segment's writer.
    writer: Option<String>,
    sync_on_append: bool,
    /// Length of this writer's own segment (the append offset).
    len_bytes: u64,
    /// Bytes of *other* segments replayed at open (or left by a fan-in
    /// compaction); together with `len_bytes` this is the repository size.
    foreign_bytes: u64,
    /// Segment files seen at open.
    segments: u64,
    recovered_bytes: u64,
    cache_hits: u64,
    lookups: u64,
    state: ReplayState,
}

/// Opens or creates a [`Store`].
///
/// The builder is inert until [`open`](StoreBuilder::open) is called, hence
/// the `#[must_use]`.
#[must_use = "a StoreBuilder does nothing until .open() is called"]
#[derive(Clone, Debug)]
pub struct StoreBuilder {
    path: PathBuf,
    create: bool,
    sync_on_append: bool,
    writer: Option<String>,
}

impl StoreBuilder {
    /// Targets the repository directory `path` (the canonical journal
    /// segment lives at `path/journal.syno`; writer shards — see
    /// [`StoreBuilder::writer`] — at `path/journal-<writer>.syno`).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        StoreBuilder {
            path: path.into(),
            create: true,
            sync_on_append: false,
            writer: None,
        }
    }

    /// Opens the repository as the named shard writer: appends go to
    /// `journal-<name>.syno` and only *that* segment is exclusively
    /// locked, so any number of differently-named writers (across
    /// processes) share one repository directory concurrently. Without a
    /// writer name the store is the canonical segment's single writer —
    /// the pre-sharding behavior, which is also how v1–v3 single-journal
    /// stores keep opening read/write as a one-shard repository.
    ///
    /// Names are restricted to 1–64 characters of `[A-Za-z0-9_-]` so
    /// every shard file name parses back unambiguously.
    pub fn writer(mut self, name: impl Into<String>) -> Self {
        self.writer = Some(name.into());
        self
    }

    /// Whether to create the directory and journal when missing (default
    /// `true`); with `false`, opening a missing store fails.
    pub fn create(mut self, yes: bool) -> Self {
        self.create = yes;
        self
    }

    /// `fsync` the journal after every append (default `false`: appends are
    /// flushed to the OS but not forced to disk, so a *power* failure may
    /// tear the tail — which recovery handles — while a process crash loses
    /// nothing).
    pub fn sync_on_append(mut self, yes: bool) -> Self {
        self.sync_on_append = yes;
        self
    }

    /// Opens the repository, replaying **every** segment into the
    /// in-memory index in deterministic repository order (canonical
    /// segment first, then shards sorted by file name) and truncating a
    /// torn tail record of this writer's own segment if its last session
    /// crashed mid-append. Torn tails of *other* writers' shards are
    /// skipped without truncation — only their owner may rewrite them.
    ///
    /// Each segment is **single-writer**: opening takes an exclusive OS
    /// advisory lock on this writer's own segment, held until the
    /// [`Store`] is dropped, so a second open under the same writer name
    /// (or of the canonical segment without a name) — from this process
    /// or another — fails instead of silently interleaving appends.
    /// Differently-named writers lock different shard files and coexist.
    /// The lock is released by the kernel even on crash.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidWriter`] for a malformed writer name;
    /// [`StoreError::Io`] when the directory or file cannot be
    /// created/opened, or when another live `Store` holds this segment's
    /// lock; [`StoreError::BadMagic`] / [`StoreError::Version`] for a
    /// foreign or incompatible file; [`StoreError::Corrupt`] when a
    /// well-framed record fails to decode (which truncation must *not*
    /// paper over).
    pub fn open(self) -> Result<Store, StoreError> {
        let dir = &self.path;
        if let Some(name) = &self.writer {
            if !Store::valid_writer_name(name) {
                return Err(StoreError::InvalidWriter { name: name.clone() });
            }
        }
        if !dir.exists() {
            if !self.create {
                return Err(StoreError::Io {
                    op: "open",
                    reason: format!("{} does not exist", dir.display()),
                });
            }
            std::fs::create_dir_all(dir).map_err(io_err("create dir"))?;
        }
        let own_path = match &self.writer {
            None => Store::journal_path(dir),
            Some(name) => Store::shard_path(dir, name),
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(self.create)
            .open(&own_path)
            .map_err(io_err("open journal"))?;
        // Per-segment single-writer guard: an exclusive advisory lock held
        // for the store's lifetime. Two writers of one segment would
        // append at overlapping offsets and shred each other's frames; the
        // kernel releases the lock on crash, so there are no stale locks
        // to clean.
        file.try_lock().map_err(|e| StoreError::Io {
            op: "lock journal segment (is another process writing it?)",
            reason: e.to_string(),
        })?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err("read journal"))?;

        let mut inner = Inner {
            file,
            path: own_path.clone(),
            dir: dir.clone(),
            writer: self.writer.clone(),
            sync_on_append: self.sync_on_append,
            len_bytes: 0,
            foreign_bytes: 0,
            segments: 0,
            recovered_bytes: 0,
            cache_hits: 0,
            lookups: 0,
            state: ReplayState::default(),
        };

        // Initialize or validate this writer's own segment first; records
        // are applied below, in repository order.
        if bytes.len() < HEADER_LEN as usize {
            // Empty or torn-header file: start the segment fresh.
            inner.recovered_bytes = bytes.len() as u64;
            inner.file.set_len(0).map_err(io_err("truncate"))?;
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(&MAGIC);
            header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
            inner.file.seek(SeekFrom::Start(0)).map_err(io_err("seek"))?;
            inner.file.write_all(&header).map_err(io_err("write header"))?;
            inner.file.sync_data().map_err(io_err("sync header"))?;
            bytes.clear();
            bytes.extend_from_slice(&MAGIC);
            bytes.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        } else {
            if bytes[..8] != MAGIC {
                return Err(StoreError::BadMagic);
            }
            let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
            if version != JOURNAL_VERSION {
                return Err(StoreError::Version { found: version });
            }
        }

        // Replay every segment in repository order. The own segment is
        // replayed from the bytes read above (and its torn tail, if any,
        // is truncated on disk); other writers' segments are replayed
        // read-only from disk.
        for segment in Store::segment_paths(dir).map_err(io_err("list repository"))? {
            if segment == own_path {
                let good = replay_segment(&mut inner.state, &bytes, &own_path)?;
                if good < bytes.len() {
                    inner.recovered_bytes += (bytes.len() - good) as u64;
                    inner.file.set_len(good as u64).map_err(io_err("truncate"))?;
                    inner.file.sync_data().map_err(io_err("sync truncate"))?;
                }
                inner.len_bytes = good as u64;
            } else {
                // A concurrent writer may still be initializing (or a
                // concurrent compaction may have just removed) the file;
                // both read as "no records yet".
                let Ok(seg_bytes) = std::fs::read(&segment) else {
                    continue;
                };
                if seg_bytes.len() < HEADER_LEN as usize {
                    inner.segments += 1;
                    continue;
                }
                if seg_bytes[..8] != MAGIC {
                    return Err(StoreError::BadMagic);
                }
                let version = u32::from_le_bytes(seg_bytes[8..12].try_into().unwrap());
                if version != JOURNAL_VERSION {
                    return Err(StoreError::Version { found: version });
                }
                replay_segment(&mut inner.state, &seg_bytes, &segment)?;
                inner.foreign_bytes += seg_bytes.len() as u64;
            }
            inner.segments += 1;
        }
        Ok(Store {
            inner: Mutex::new(inner),
        })
    }
}

enum FrameResult {
    Record(Record, usize),
    /// Clean end of journal.
    End,
    /// The frame is incomplete or fails its checksum: a torn append.
    Torn,
    /// The frame is intact but its payload is malformed.
    Corrupt(String),
}

fn read_frame(bytes: &[u8], offset: usize) -> FrameResult {
    if offset == bytes.len() {
        return FrameResult::End;
    }
    if bytes.len() - offset < 5 {
        return FrameResult::Torn;
    }
    let tag = bytes[offset];
    let len = u32::from_le_bytes(bytes[offset + 1..offset + 5].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return FrameResult::Torn;
    }
    let payload_start = offset + 5;
    let payload_end = payload_start + len as usize;
    let frame_end = payload_end + 4;
    if bytes.len() < frame_end {
        return FrameResult::Torn;
    }
    let payload = &bytes[payload_start..payload_end];
    let stored = u32::from_le_bytes(bytes[payload_end..frame_end].try_into().unwrap());
    if stored != frame_checksum(tag, payload) {
        return FrameResult::Torn;
    }
    // Frame verified: structural failures beyond this point are corruption,
    // not a torn tail.
    let Some(kind) = RecordKind::from_tag(tag) else {
        return FrameResult::Corrupt(format!("unknown record tag {tag:#04x}"));
    };
    match Record::decode_payload(kind, payload) {
        Ok(record) => FrameResult::Record(record, frame_end),
        Err(e) => FrameResult::Corrupt(e.to_string()),
    }
}

/// Replays one already-header-validated segment's records into `state`,
/// stopping at the first torn frame. Returns the offset just past the last
/// good record (callers owning the segment truncate to it; readers of
/// foreign shards just stop).
fn replay_segment(
    state: &mut ReplayState,
    bytes: &[u8],
    segment: &Path,
) -> Result<usize, StoreError> {
    let mut offset = HEADER_LEN as usize;
    let mut good = offset;
    loop {
        match read_frame(bytes, offset) {
            FrameResult::Record(record, next) => {
                state.apply(record);
                offset = next;
                good = next;
            }
            FrameResult::End | FrameResult::Torn => break,
            FrameResult::Corrupt(reason) => {
                return Err(StoreError::Corrupt {
                    offset: offset as u64,
                    reason: format!("{reason} (segment {})", segment.display()),
                });
            }
        }
    }
    Ok(good)
}

impl ReplayState {
    /// The index entry for `hash`, created (and ordered) on first sight.
    fn entry(&mut self, hash: u64) -> &mut CandidateEntry {
        if !self.index.contains_key(&hash) {
            self.order.push(hash);
            self.index.insert(hash, CandidateEntry::default());
        }
        self.index.get_mut(&hash).expect("just inserted")
    }

    fn apply(&mut self, record: Record) {
        match record {
            Record::Candidate { hash, graph } => {
                let entry = self.entry(hash);
                if entry.graph.is_empty() {
                    entry.graph = graph;
                }
            }
            Record::ProxyScore {
                hash,
                accuracy,
                family,
                reduce_width,
            } => {
                let entry = self.entry(hash);
                entry.accuracy = Some(accuracy);
                entry.family = Some(family);
                entry.score_width = Some(reduce_width);
            }
            Record::LatencyMeasurement {
                hash,
                device,
                compiler,
                latency,
            } => {
                self.entry(hash).latencies.insert((device, compiler), latency);
            }
            Record::Checkpoint(cp) => {
                self.checkpoints
                    .insert((cp.label.clone(), cp.spec_fingerprint), cp);
            }
            Record::Operation(op) => {
                self.ops.push(op);
            }
            Record::CandidateSet(set) => {
                self.sets.insert(set.name.clone(), set);
            }
        }
    }

    /// The journaled accuracy for `hash` iff it matches `contract` (a
    /// legacy record with no family/width tag always matches).
    fn contract_score(&self, hash: u64, contract: &ScoreContract) -> Option<f64> {
        let entry = self.index.get(&hash)?;
        if entry.family.as_deref().is_some_and(|f| f != contract.family) {
            return None;
        }
        if entry
            .score_width
            .is_some_and(|w| w != contract.reduce_width)
        {
            return None;
        }
        entry.accuracy
    }
}

impl Inner {
    /// This handle's writer id as journaled in operation-log entries.
    fn writer_id(&self) -> &str {
        self.writer.as_deref().unwrap_or("journal")
    }

    fn append(&mut self, record: &Record) -> Result<(), StoreError> {
        let append_span = syno_telemetry::span!("journal_append");
        let payload = record.encode_payload();
        let tag = record.kind().tag();
        let mut frame = Vec::with_capacity(payload.len() + 9);
        frame.push(tag);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&frame_checksum(tag, &payload).to_le_bytes());
        self.file
            .seek(SeekFrom::Start(self.len_bytes))
            .map_err(io_err("seek"))?;
        self.file.write_all(&frame).map_err(io_err("append"))?;
        self.file.flush().map_err(io_err("flush"))?;
        if self.sync_on_append {
            let fsync_span = syno_telemetry::span!("journal_fsync");
            self.file.sync_data().map_err(io_err("sync"))?;
            syno_telemetry::histogram!("syno_store_fsync_seconds")
                .observe_duration(fsync_span.elapsed());
        }
        self.len_bytes += frame.len() as u64;
        syno_telemetry::counter!("syno_store_appends_total").inc();
        syno_telemetry::counter!("syno_store_bytes_written_total").add(frame.len() as u64);
        syno_telemetry::histogram!("syno_store_append_seconds")
            .observe_duration(append_span.elapsed());
        Ok(())
    }
}

/// The persistent candidate store: an append-only journal plus an in-memory
/// index keyed by content hash.
///
/// All methods take `&self`; the store is internally synchronized and is
/// shared across search workers behind an [`Arc`](std::sync::Arc).
pub struct Store {
    inner: Mutex<Inner>,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("Store")
            .field("path", &self.path())
            .field("candidates", &stats.candidates)
            .field("scored", &stats.scored)
            .field("checkpoints", &stats.checkpoints)
            .finish()
    }
}

impl Store {
    /// The canonical journal segment inside a repository directory.
    pub fn journal_path(dir: &Path) -> PathBuf {
        dir.join("journal.syno")
    }

    /// The shard segment a named writer appends to.
    pub fn shard_path(dir: &Path, writer: &str) -> PathBuf {
        dir.join(format!("journal-{writer}.syno"))
    }

    /// `true` when `name` is a legal shard writer name: 1–64 characters
    /// of `[A-Za-z0-9_-]`, so shard file names parse back unambiguously.
    pub fn valid_writer_name(name: &str) -> bool {
        !name.is_empty()
            && name.len() <= 64
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    }

    /// Every journal segment currently in the repository directory, in
    /// deterministic *repository order*: the canonical segment first, then
    /// writer shards sorted by file name. This is the order segments are
    /// replayed in, so every opener converges on the same merged view.
    ///
    /// # Errors
    ///
    /// Forwards the directory-listing I/O error.
    pub fn segment_paths(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        let mut canonical = None;
        let mut shards = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name == "journal.syno" {
                canonical = Some(entry.path());
            } else if let Some(stem) = name.strip_prefix("journal-") {
                if let Some(writer) = stem.strip_suffix(".syno") {
                    if Store::valid_writer_name(writer) {
                        shards.push((name.to_owned(), entry.path()));
                    }
                }
            }
        }
        shards.sort();
        Ok(canonical
            .into_iter()
            .chain(shards.into_iter().map(|(_, path)| path))
            .collect())
    }

    /// Shorthand for `StoreBuilder::new(path).open()`.
    ///
    /// # Errors
    ///
    /// See [`StoreBuilder::open`].
    pub fn open(path: impl Into<PathBuf>) -> Result<Store, StoreError> {
        StoreBuilder::new(path).open()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("store lock")
    }

    /// Path of this writer's own journal segment.
    pub fn path(&self) -> PathBuf {
        self.lock().path.clone()
    }

    /// The repository directory holding every segment.
    pub fn dir(&self) -> PathBuf {
        self.lock().dir.clone()
    }

    /// The shard writer name this handle opened under, or `None` for the
    /// canonical segment's writer.
    pub fn writer(&self) -> Option<String> {
        self.lock().writer.clone()
    }

    /// Journals a candidate operator under its content hash. Returns `false`
    /// without writing when the hash is already present (cross-run dedup).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails.
    pub fn put_candidate(&self, hash: u64, graph: &PGraph) -> Result<bool, StoreError> {
        let mut inner = self.lock();
        if inner
            .state
            .index
            .get(&hash)
            .is_some_and(|e| !e.graph.is_empty())
        {
            return Ok(false);
        }
        let record = Record::Candidate {
            hash,
            graph: codec::encode_graph(graph),
        };
        inner.append(&record)?;
        inner.state.apply(record);
        Ok(true)
    }

    /// Journals a proxy score for `hash` under its typed
    /// [`ScoreContract`] — the task family whose proxy produced it and the
    /// reduce width of the execution policy it was computed under (the
    /// width determines the deterministic FP summation order, so it is
    /// part of the score's identity — see [`Store::score_for_contract`]).
    ///
    /// By convention `NaN` marks a *journaled failure*: the candidate's
    /// proxy training failed deterministically, and consumers (the search
    /// pipeline) skip it on recall instead of re-training. NaN scores are
    /// excluded from [`StoreStats::scored`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails.
    pub fn put_score(
        &self,
        hash: u64,
        accuracy: f64,
        contract: &ScoreContract,
    ) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let record = Record::ProxyScore {
            hash,
            accuracy,
            family: contract.family.clone(),
            reduce_width: contract.reduce_width,
        };
        inner.append(&record)?;
        inner.state.apply(record);
        Ok(())
    }

    /// Journals a tuned latency for `hash` on one device/compiler pair.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails.
    pub fn put_latency(
        &self,
        hash: u64,
        device: &str,
        compiler: &str,
        latency: f64,
    ) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let record = Record::LatencyMeasurement {
            hash,
            device: device.to_owned(),
            compiler: compiler.to_owned(),
            latency,
        };
        inner.append(&record)?;
        inner.state.apply(record);
        Ok(())
    }

    /// Journals a checkpoint (latest per `(label, spec_fingerprint)` wins).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails.
    pub fn put_checkpoint(&self, checkpoint: &Checkpoint) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let record = Record::Checkpoint(checkpoint.clone());
        inner.append(&record)?;
        inner.state.apply(record);
        Ok(())
    }

    /// Journals a pre-built operation-log entry verbatim. Most callers
    /// want [`Store::log_operation`], which stamps this writer's id.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails.
    pub fn put_operation(&self, op: &Operation) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let record = Record::Operation(op.clone());
        inner.append(&record)?;
        inner.state.apply(record);
        Ok(())
    }

    /// Journals one operation-log entry stamped with this writer's id and
    /// returns it — how search runs record their lineage (started,
    /// resumed, checkpointed) against the repository.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails.
    pub fn log_operation(
        &self,
        kind: OpKind,
        label: &str,
        spec_fingerprint: u64,
        detail: impl Into<String>,
    ) -> Result<Operation, StoreError> {
        let mut inner = self.lock();
        let op = Operation {
            kind,
            writer: inner.writer_id().to_owned(),
            label: label.to_owned(),
            spec_fingerprint,
            detail: detail.into(),
        };
        let record = Record::Operation(op.clone());
        inner.append(&record)?;
        inner.state.apply(record);
        Ok(op)
    }

    /// The full operation log in repository replay order.
    pub fn operations(&self) -> Vec<Operation> {
        self.lock().state.ops.clone()
    }

    /// The operation log from entry `index` onward, in replay order — the
    /// serving layer's attach-replay cursor: a client that recorded how
    /// many operations it had seen reads exactly what it missed.
    pub fn operations_since(&self, index: usize) -> Vec<Operation> {
        let inner = self.lock();
        inner
            .state
            .ops
            .get(index.min(inner.state.ops.len())..)
            .unwrap_or_default()
            .to_vec()
    }

    /// The operation log filtered to one scenario label or set name.
    pub fn operations_for(&self, label: &str) -> Vec<Operation> {
        self.lock()
            .state
            .ops
            .iter()
            .filter(|op| op.label == label)
            .cloned()
            .collect()
    }

    /// The most recent operation journaled for `(label, spec_fingerprint)`
    /// — what `resume_from` consults to report a resumed run's lineage.
    pub fn last_operation(&self, label: &str, spec_fingerprint: u64) -> Option<Operation> {
        self.lock()
            .state
            .ops
            .iter()
            .rev()
            .find(|op| op.label == label && op.spec_fingerprint == spec_fingerprint)
            .cloned()
    }

    /// Journals a named candidate set (latest record per name wins, like
    /// checkpoints).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the append fails.
    pub fn put_set(&self, set: &CandidateSet) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let record = Record::CandidateSet(set.clone());
        inner.append(&record)?;
        inner.state.apply(record);
        Ok(())
    }

    /// The latest journaled candidate set under `name`, if any.
    pub fn candidate_set(&self, name: &str) -> Option<CandidateSet> {
        self.lock().state.sets.get(name).cloned()
    }

    /// Every live candidate-set name, sorted.
    pub fn set_names(&self) -> Vec<String> {
        self.lock().state.sets.keys().cloned().collect()
    }

    /// Derives a new named candidate set as `op` over the sets named
    /// `left` and `right`, journaling the set **and** a `Derive`
    /// operation-log entry recording its lineage. The result is canonical
    /// (sorted, deduplicated), so repeat derivations over equal inputs are
    /// byte-identical — the determinism the multi-writer CI smoke asserts.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownSet`] when either input set is missing;
    /// [`StoreError::Io`] when the append fails.
    pub fn derive(
        &self,
        op: DeriveOp,
        name: &str,
        left: &str,
        right: &str,
    ) -> Result<CandidateSet, StoreError> {
        use std::collections::BTreeSet;
        let mut inner = self.lock();
        let left_set = inner.state.sets.get(left).ok_or_else(|| StoreError::UnknownSet {
            name: left.to_owned(),
        })?;
        let right_set = inner.state.sets.get(right).ok_or_else(|| StoreError::UnknownSet {
            name: right.to_owned(),
        })?;
        let l: BTreeSet<u64> = left_set.hashes.iter().copied().collect();
        let r: BTreeSet<u64> = right_set.hashes.iter().copied().collect();
        let hashes: Vec<u64> = match op {
            DeriveOp::Union => l.union(&r).copied().collect(),
            DeriveOp::Intersection => l.intersection(&r).copied().collect(),
            DeriveOp::Difference => l.difference(&r).copied().collect(),
        };
        let lineage = format!("{}({left},{right})", op.name());
        let set = CandidateSet::new(name, lineage.clone(), hashes);
        let record = Record::CandidateSet(set.clone());
        inner.append(&record)?;
        inner.state.apply(record);
        let log = Record::Operation(Operation {
            kind: OpKind::Derive,
            writer: inner.writer_id().to_owned(),
            label: name.to_owned(),
            spec_fingerprint: 0,
            detail: lineage,
        });
        inner.append(&log)?;
        inner.state.apply(log);
        drop(inner);
        syno_telemetry::counter!("syno_store_derives_total").inc();
        Ok(set)
    }

    /// [`Store::derive`] with [`DeriveOp::Union`].
    ///
    /// # Errors
    ///
    /// See [`Store::derive`].
    pub fn derive_union(&self, name: &str, left: &str, right: &str) -> Result<CandidateSet, StoreError> {
        self.derive(DeriveOp::Union, name, left, right)
    }

    /// [`Store::derive`] with [`DeriveOp::Intersection`].
    ///
    /// # Errors
    ///
    /// See [`Store::derive`].
    pub fn derive_intersection(
        &self,
        name: &str,
        left: &str,
        right: &str,
    ) -> Result<CandidateSet, StoreError> {
        self.derive(DeriveOp::Intersection, name, left, right)
    }

    /// [`Store::derive`] with [`DeriveOp::Difference`].
    ///
    /// # Errors
    ///
    /// See [`Store::derive`].
    pub fn derive_difference(
        &self,
        name: &str,
        left: &str,
        right: &str,
    ) -> Result<CandidateSet, StoreError> {
        self.derive(DeriveOp::Difference, name, left, right)
    }

    /// `true` when a candidate is journaled under `hash`.
    pub fn contains(&self, hash: u64) -> bool {
        self.lock().state.index.contains_key(&hash)
    }

    /// The cached proxy accuracy for `hash`, counting a hit toward
    /// [`StoreStats::cache_hits`] when present. Use [`Store::score`] for a
    /// side-effect-free probe, or probe + [`Store::record_hit`] when the
    /// recall may still fall through to recomputation (the search pipeline
    /// does this so `cache_hits` counts only evaluations actually served).
    pub fn recall_score(&self, hash: u64) -> Option<f64> {
        let mut inner = self.lock();
        let hit = inner.state.index.get(&hash).and_then(|e| e.accuracy);
        if hit.is_some() {
            inner.cache_hits += 1;
        }
        hit
    }

    /// Counts one served recall toward [`StoreStats::cache_hits`]. For
    /// callers that probe with [`Store::score`] and only later learn
    /// whether the recall was actually served.
    pub fn record_hit(&self) {
        self.lock().cache_hits += 1;
    }

    /// The cached proxy accuracy for `hash`, without touching hit counters.
    /// `Some(NaN)` is the journaled-failure marker (see
    /// [`Store::put_score`]).
    pub fn score(&self, hash: u64) -> Option<f64> {
        self.lock().state.index.get(&hash).and_then(|e| e.accuracy)
    }

    /// The task family that produced the cached score for `hash`
    /// (`"vision"` for legacy untagged records), or `None` when no score
    /// is journaled.
    pub fn score_family(&self, hash: u64) -> Option<String> {
        self.lock()
            .state
            .index
            .get(&hash)
            .and_then(|e| e.family.clone())
    }

    /// The cached proxy accuracy for `hash` *if* it was produced by
    /// `family` (or by a legacy record with no tag, which always matches).
    /// One lock, no allocation — a family mismatch reads as a miss so the
    /// caller re-evaluates. Prefer [`Store::score_for_contract`] when the
    /// caller also knows its execution policy's reduce width.
    pub fn score_for_family(&self, hash: u64, family: &str) -> Option<f64> {
        let mut inner = self.lock();
        inner.lookups += 1;
        let entry = inner.state.index.get(&hash)?;
        if entry.family.as_deref().is_some_and(|f| f != family) {
            return None;
        }
        entry.accuracy
    }

    /// The cached proxy accuracy for `hash` *if* it matches the typed
    /// [`ScoreContract`] — the search pipeline's recall probe. The
    /// reduction-tree width reshapes the deterministic FP summation
    /// order, so a score computed at another width (or by another
    /// family's proxy) is a different value, not a cache hit; the
    /// mismatch reads as a miss and the caller re-evaluates (and
    /// re-journals under its own contract). Legacy records carry family
    /// `"vision"` and width `1` (serial accumulation).
    pub fn score_for_contract(&self, hash: u64, contract: &ScoreContract) -> Option<f64> {
        let mut inner = self.lock();
        inner.lookups += 1;
        inner.state.contract_score(hash, contract)
    }

    /// The cached latency for `hash` on one device/compiler pair.
    pub fn latency(&self, hash: u64, device: &str, compiler: &str) -> Option<f64> {
        self.lock()
            .state
            .index
            .get(&hash)
            .and_then(|e| e.latencies.get(&(device.to_owned(), compiler.to_owned())).copied())
    }

    /// Cached latencies for every requested device under one compiler, in
    /// request order; `None` unless **all** are present.
    pub fn latencies(&self, hash: u64, devices: &[&str], compiler: &str) -> Option<Vec<f64>> {
        let inner = self.lock();
        let entry = inner.state.index.get(&hash)?;
        devices
            .iter()
            .map(|d| {
                entry
                    .latencies
                    .get(&((*d).to_owned(), compiler.to_owned()))
                    .copied()
            })
            .collect()
    }

    /// Decodes the journaled graph for `hash`.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownHash`] when nothing is journaled under `hash`;
    /// [`StoreError::Codec`] when the stored bytes no longer decode.
    pub fn graph(&self, hash: u64) -> Result<PGraph, StoreError> {
        let bytes = {
            let inner = self.lock();
            let entry = inner
                .state
                .index
                .get(&hash)
                .filter(|e| !e.graph.is_empty())
                .ok_or(StoreError::UnknownHash { hash })?;
            entry.graph.clone()
        };
        Ok(codec::decode_graph(&bytes)?)
    }

    /// Content hashes of every journaled candidate, in repository
    /// first-seen order.
    pub fn hashes(&self) -> Vec<u64> {
        self.lock().state.order.clone()
    }

    /// The latest checkpoint for a scenario, if any.
    pub fn checkpoint(&self, label: &str, spec_fingerprint: u64) -> Option<Checkpoint> {
        self.lock()
            .state
            .checkpoints
            .get(&(label.to_owned(), spec_fingerprint))
            .cloned()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> StoreStats {
        let inner = self.lock();
        let mut by_family: BTreeMap<&str, u64> = BTreeMap::new();
        for entry in inner.state.index.values() {
            if entry.accuracy.is_some_and(|a| !a.is_nan()) {
                // Untagged legacy records were always vision scores.
                let family = entry.family.as_deref().unwrap_or("vision");
                *by_family.entry(family).or_insert(0) += 1;
            }
        }
        StoreStats {
            candidates: inner.state.order.len() as u64,
            scored: by_family.values().sum(),
            scores_by_family: by_family
                .into_iter()
                .map(|(name, count)| (name.to_owned(), count))
                .collect(),
            latency_measurements: inner
                .state
                .index
                .values()
                .map(|e| e.latencies.len() as u64)
                .sum(),
            checkpoints: inner.state.checkpoints.len() as u64,
            operations: inner.state.ops.len() as u64,
            candidate_sets: inner.state.sets.len() as u64,
            segments: inner.segments,
            file_bytes: inner.len_bytes + inner.foreign_bytes,
            recovered_bytes: inner.recovered_bytes,
            cache_hits: inner.cache_hits,
            lookups: inner.lookups,
        }
    }

    /// Fan-in compaction: merges **every** segment of the repository into
    /// a fresh canonical segment keeping only the live state — one
    /// `Candidate`, at most one `ProxyScore`, and the latest latency per
    /// device/compiler pair for each hash (in repository first-seen
    /// order), the latest checkpoint per scenario, the full operation log
    /// (plus a new `Compaction` entry), and the latest candidate set per
    /// name. Superseded duplicates are dropped, merged-away shards are
    /// removed, and this writer's own shard (when named) is reset to
    /// header-only. Returns the stats after compaction.
    ///
    /// Every *other* segment's writer lock is taken for the duration, so
    /// a live writer makes the compaction fail loudly instead of losing
    /// its in-flight appends. The rewrite goes through a temporary file
    /// and an atomic rename, so a crash mid-compaction leaves either the
    /// old or the new canonical segment intact (and shards are only
    /// removed after the rename lands).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when a segment is still locked by a live
    /// writer, or when writing or renaming fails.
    pub fn compact(&self) -> Result<StoreStats, StoreError> {
        let compact_span = syno_telemetry::span!("journal_compact");
        let mut inner = self.lock();
        let dir = inner.dir.clone();
        let canonical = Store::journal_path(&dir);
        let own_is_canonical = inner.writer.is_none();

        // Fan-in guard: hold every other segment's writer lock so no live
        // writer can append while its shard is merged away.
        let segments = Store::segment_paths(&dir).map_err(io_err("list repository"))?;
        let mut guards: Vec<(PathBuf, File)> = Vec::new();
        for segment in &segments {
            if *segment == inner.path {
                continue;
            }
            // A segment vanishing here means a concurrent compaction
            // already merged it; skip it and merge what remains.
            let Ok(guard) = OpenOptions::new().read(true).write(true).open(segment) else {
                continue;
            };
            guard.try_lock().map_err(|e| StoreError::Io {
                op: "lock segment for compaction (live writer?)",
                reason: format!("{}: {e}", segment.display()),
            })?;
            guards.push((segment.clone(), guard));
        }

        // Rebuild the merged view fresh from disk in repository order:
        // foreign shards may have grown since this handle opened, and the
        // own segment's bytes on disk are exactly its in-memory state.
        let mut merged = ReplayState::default();
        for segment in &segments {
            let Ok(seg_bytes) = std::fs::read(segment) else {
                continue;
            };
            if seg_bytes.len() < HEADER_LEN as usize {
                continue;
            }
            if seg_bytes[..8] != MAGIC {
                return Err(StoreError::BadMagic);
            }
            replay_segment(&mut merged, &seg_bytes, segment)?;
        }
        merged.ops.push(Operation {
            kind: OpKind::Compaction,
            writer: inner.writer_id().to_owned(),
            label: String::new(),
            spec_fingerprint: 0,
            detail: format!("fan-in of {} segments", segments.len()),
        });

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        let frame = |record: &Record, bytes: &mut Vec<u8>| {
            let payload = record.encode_payload();
            let tag = record.kind().tag();
            bytes.push(tag);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&payload);
            bytes.extend_from_slice(&frame_checksum(tag, &payload).to_le_bytes());
        };
        for &hash in &merged.order {
            let entry = &merged.index[&hash];
            if !entry.graph.is_empty() {
                frame(
                    &Record::Candidate {
                        hash,
                        graph: entry.graph.clone(),
                    },
                    &mut bytes,
                );
            }
            if let Some(accuracy) = entry.accuracy {
                frame(
                    &Record::ProxyScore {
                        hash,
                        accuracy,
                        // Legacy untagged records were vision scores
                        // computed by serial accumulation; the compacted
                        // journal makes both explicit.
                        family: entry.family.clone().unwrap_or_else(|| "vision".to_owned()),
                        reduce_width: entry.score_width.unwrap_or(1),
                    },
                    &mut bytes,
                );
            }
            let mut pairs: Vec<_> = entry.latencies.iter().collect();
            pairs.sort_by(|a, b| a.0.cmp(b.0));
            for ((device, compiler), &latency) in pairs {
                frame(
                    &Record::LatencyMeasurement {
                        hash,
                        device: device.clone(),
                        compiler: compiler.clone(),
                        latency,
                    },
                    &mut bytes,
                );
            }
        }
        let mut checkpoints: Vec<_> = merged.checkpoints.values().cloned().collect();
        checkpoints.sort_by(|a, b| {
            a.label
                .cmp(&b.label)
                .then(a.spec_fingerprint.cmp(&b.spec_fingerprint))
        });
        for cp in checkpoints {
            frame(&Record::Checkpoint(cp), &mut bytes);
        }
        for op in &merged.ops {
            frame(&Record::Operation(op.clone()), &mut bytes);
        }
        for set in merged.sets.values() {
            frame(&Record::CandidateSet(set.clone()), &mut bytes);
        }

        let tmp = match &inner.writer {
            None => inner.path.with_extension("syno.tmp"),
            Some(writer) => dir.join(format!("compact-{writer}.tmp")),
        };
        let mut out = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(io_err("create compact file"))?;
        out.write_all(&bytes).map_err(io_err("write compact file"))?;
        out.sync_data().map_err(io_err("sync compact file"))?;
        // Take the single-writer lock on the replacement *before* the swap,
        // so no other opener can slip in between rename and relock; the old
        // handle's lock dies with it when it is dropped/reassigned below.
        out.try_lock().map_err(|e| StoreError::Io {
            op: "lock compact file",
            reason: e.to_string(),
        })?;
        std::fs::rename(&tmp, &canonical).map_err(io_err("swap compact file"))?;
        if own_is_canonical {
            inner.file = out;
            inner.len_bytes = bytes.len() as u64;
            inner.foreign_bytes = 0;
            inner.segments = 1;
        } else {
            // The canonical segment belongs to whichever writer(None)
            // opens the repository next; release the replacement's lock.
            drop(out);
            // This shard's records were folded into the canonical segment;
            // reset it to header-only and keep appending here.
            inner
                .file
                .set_len(HEADER_LEN)
                .map_err(io_err("reset shard"))?;
            inner.file.sync_data().map_err(io_err("sync shard reset"))?;
            inner.len_bytes = HEADER_LEN;
            inner.foreign_bytes = bytes.len() as u64;
            inner.segments = 2;
        }
        // Remove merged-away shards; their (now moot) locks are still held
        // in `guards`, so no writer raced an append into them.
        for (path, guard) in guards {
            if path != canonical {
                let _ = std::fs::remove_file(&path);
            }
            drop(guard);
        }
        inner.state = merged;
        drop(inner);
        syno_telemetry::counter!("syno_store_compactions_total").inc();
        syno_telemetry::counter!("syno_store_bytes_written_total").add(bytes.len() as u64);
        syno_telemetry::histogram!("syno_store_compact_seconds")
            .observe_duration(compact_span.elapsed());
        Ok(self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use syno_core::prelude::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "syno-store-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Shorthand score contract for tests.
    fn c(family: &str, width: u32) -> ScoreContract {
        ScoreContract::new(family, width)
    }

    fn pool_graphs(n: usize) -> Vec<PGraph> {
        let mut vars = VarTable::new();
        let h = vars.declare("H", VarKind::Primary);
        let s = vars.declare("s", VarKind::Coefficient);
        vars.push_valuation(vec![(h, 16), (s, 2)]);
        let vars = vars.into_shared();
        let spec = OperatorSpec::new(
            TensorShape::new(vec![Size::var(h)]),
            TensorShape::new(vec![Size::var(h).div(&Size::var(s))]),
        );
        Enumerator::new(SynthConfig::auto(&vars, 3))
            .synthesis(&vars, &spec)
            .take(n)
            .map(|r| r.unwrap())
            .collect()
    }

    #[test]
    fn records_survive_reopen() {
        let dir = temp_dir("reopen");
        let graphs = pool_graphs(3);
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            for (i, g) in graphs.iter().enumerate() {
                let hash = g.content_hash();
                assert!(store.put_candidate(hash, g).unwrap());
                store.put_score(hash, 0.5 + i as f64 / 10.0, &c("vision", 1)).unwrap();
                store.put_latency(hash, "mobile-cpu", "TVM", 1e-3 * (i + 1) as f64).unwrap();
            }
            store
                .put_checkpoint(&Checkpoint {
                    label: "pool".into(),
                    spec_fingerprint: 42,
                    seed: 7,
                    iterations: 100,
                    discovered: 3,
                })
                .unwrap();
        }
        let store = StoreBuilder::new(&dir).open().unwrap();
        let stats = store.stats();
        assert_eq!(stats.candidates, 3);
        assert_eq!(stats.scored, 3);
        assert_eq!(stats.latency_measurements, 3);
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.recovered_bytes, 0);
        for (i, g) in graphs.iter().enumerate() {
            let hash = g.content_hash();
            assert_eq!(store.score(hash), Some(0.5 + i as f64 / 10.0));
            assert_eq!(store.latency(hash, "mobile-cpu", "TVM"), Some(1e-3 * (i + 1) as f64));
            let back = store.graph(hash).unwrap();
            assert_eq!(back.content_hash(), hash);
            assert_eq!(back.render(), g.render());
        }
        let cp = store.checkpoint("pool", 42).unwrap();
        assert_eq!(cp.iterations, 100);
        assert!(store.checkpoint("pool", 43).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_candidates_are_not_rewritten() {
        let dir = temp_dir("dedup");
        let graphs = pool_graphs(1);
        let store = StoreBuilder::new(&dir).open().unwrap();
        let hash = graphs[0].content_hash();
        assert!(store.put_candidate(hash, &graphs[0]).unwrap());
        let bytes_after_first = store.stats().file_bytes;
        assert!(!store.put_candidate(hash, &graphs[0]).unwrap());
        assert_eq!(store.stats().file_bytes, bytes_after_first);
        assert_eq!(store.stats().candidates, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        let graphs = pool_graphs(2);
        let (h0, h1) = (graphs[0].content_hash(), graphs[1].content_hash());
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            store.put_candidate(h0, &graphs[0]).unwrap();
            store.put_score(h0, 0.9, &c("vision", 1)).unwrap();
            store.put_candidate(h1, &graphs[1]).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the last record.
        let journal = Store::journal_path(&dir);
        let len = std::fs::metadata(&journal).unwrap().len();
        let file = OpenOptions::new().write(true).open(&journal).unwrap();
        file.set_len(len - 7).unwrap();
        drop(file);

        let store = StoreBuilder::new(&dir).open().unwrap();
        let stats = store.stats();
        assert!(stats.recovered_bytes > 0, "{stats:?}");
        assert_eq!(stats.candidates, 1, "torn second candidate dropped");
        assert_eq!(store.score(h0), Some(0.9));
        assert!(!store.contains(h1));
        // The store keeps working after recovery.
        store.put_candidate(h1, &graphs[1]).unwrap();
        drop(store);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.stats().candidates, 2);
        assert_eq!(store.stats().recovered_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_tail_checksum_is_recovered() {
        let dir = temp_dir("garbage");
        let graphs = pool_graphs(1);
        let hash = graphs[0].content_hash();
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            store.put_candidate(hash, &graphs[0]).unwrap();
        }
        let journal = Store::journal_path(&dir);
        let mut file = OpenOptions::new().append(true).open(&journal).unwrap();
        file.write_all(&[2, 16, 0, 0, 0]).unwrap(); // score frame header…
        file.write_all(&[0xab; 20]).unwrap(); // …with garbage payload+crc
        drop(file);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert!(store.stats().recovered_bytes > 0);
        assert!(store.contains(hash));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_rejected() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(Store::journal_path(&dir), b"definitely not a journal").unwrap();
        assert_eq!(StoreBuilder::new(&dir).open().unwrap_err(), StoreError::BadMagic);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_store_without_create_fails() {
        let dir = temp_dir("missing");
        let err = StoreBuilder::new(&dir).create(false).open().unwrap_err();
        assert!(matches!(err, StoreError::Io { op: "open", .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_superseded_records() {
        let dir = temp_dir("compact");
        let graphs = pool_graphs(2);
        let store = StoreBuilder::new(&dir).open().unwrap();
        for g in &graphs {
            store.put_candidate(g.content_hash(), g).unwrap();
        }
        let h = graphs[0].content_hash();
        for i in 0..10 {
            store.put_score(h, i as f64 / 10.0, &c("vision", 1)).unwrap();
            store.put_latency(h, "mobile-cpu", "TVM", 1e-3 * (i + 1) as f64).unwrap();
            store
                .put_checkpoint(&Checkpoint {
                    label: "pool".into(),
                    spec_fingerprint: 1,
                    seed: 0,
                    iterations: i,
                    discovered: 1,
                })
                .unwrap();
        }
        let before = store.stats();
        let after = store.compact().unwrap();
        assert!(after.file_bytes < before.file_bytes, "{after:?} vs {before:?}");
        assert_eq!(after.candidates, 2);
        assert_eq!(after.scored, 1);
        assert_eq!(after.latency_measurements, 1);
        assert_eq!(after.checkpoints, 1);
        // Latest values won.
        assert_eq!(store.score(h), Some(0.9));
        assert_eq!(store.latency(h, "mobile-cpu", "TVM"), Some(1e-2));
        assert_eq!(store.checkpoint("pool", 1).unwrap().iterations, 9);
        // Appending still works after the swap, and a reopen sees one
        // consistent journal.
        store.put_score(h, 0.95, &c("vision", 1)).unwrap();
        drop(store);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.score(h), Some(0.95));
        assert_eq!(store.stats().candidates, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_writer_is_locked_out() {
        let dir = temp_dir("lock");
        let store = StoreBuilder::new(&dir).open().unwrap();
        let err = StoreBuilder::new(&dir).open().unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        drop(store);
        StoreBuilder::new(&dir).open().expect("lock released on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nan_scores_mark_journaled_failures() {
        let dir = temp_dir("nan");
        let graphs = pool_graphs(1);
        let h = graphs[0].content_hash();
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            store.put_candidate(h, &graphs[0]).unwrap();
            store.put_score(h, f64::NAN, &c("sequence", 1)).unwrap();
            assert!(store.score(h).unwrap().is_nan());
            assert_eq!(store.stats().scored, 0, "failure markers are not scores");
            store.compact().unwrap();
        }
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert!(
            store.score(h).unwrap().is_nan(),
            "failure marker survives reopen and compaction"
        );
        assert_eq!(store.stats().scored, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recall_counts_cache_hits() {
        let dir = temp_dir("hits");
        let graphs = pool_graphs(1);
        let h = graphs[0].content_hash();
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.recall_score(h), None);
        assert_eq!(store.stats().cache_hits, 0);
        store.put_candidate(h, &graphs[0]).unwrap();
        store.put_score(h, 0.7, &c("vision", 1)).unwrap();
        assert_eq!(store.recall_score(h), Some(0.7));
        assert_eq!(store.recall_score(h), Some(0.7));
        assert_eq!(store.stats().cache_hits, 2);
        assert_eq!(store.score(h), Some(0.7), "probe does not count");
        assert_eq!(store.stats().cache_hits, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Family tags round-trip across reopen and compaction — the store
    /// side of the codec format-version-2 change.
    #[test]
    fn score_family_tags_survive_reopen_and_compaction() {
        let dir = temp_dir("family");
        let graphs = pool_graphs(2);
        let (h0, h1) = (graphs[0].content_hash(), graphs[1].content_hash());
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            store.put_candidate(h0, &graphs[0]).unwrap();
            store.put_score(h0, 0.6, &c("sequence", 1)).unwrap();
            store.put_candidate(h1, &graphs[1]).unwrap();
            store.put_score(h1, 0.4, &c("vision", 1)).unwrap();
        }
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.score_family(h0).as_deref(), Some("sequence"));
        assert_eq!(store.score_family(h1).as_deref(), Some("vision"));
        assert_eq!(store.score(h0), Some(0.6));
        store.compact().unwrap();
        drop(store);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.score_family(h0).as_deref(), Some("sequence"));
        assert_eq!(store.score(h1), Some(0.4));
        assert!(store.score_family(0xdead).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A journal written before the family tag existed (16-byte
    /// `ProxyScore` payloads) must load, defaulting the family to
    /// `"vision"` — old journals stay readable across the codec bump.
    #[test]
    fn legacy_untagged_score_records_decode_as_vision() {
        let dir = temp_dir("legacy");
        let graphs = pool_graphs(1);
        let hash = graphs[0].content_hash();
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            store.put_candidate(hash, &graphs[0]).unwrap();
        }
        // Append a legacy-framed score record by hand: hash + accuracy,
        // no family string — exactly what pre-version-2 builds wrote.
        let mut e = Encoder::new();
        e.put_u64(hash);
        e.put_f64(0.8125);
        let payload = e.into_bytes();
        let tag = RecordKind::ProxyScore.tag();
        let mut frame = Vec::new();
        frame.push(tag);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&frame_checksum(tag, &payload).to_le_bytes());
        let journal = Store::journal_path(&dir);
        let mut file = OpenOptions::new().append(true).open(&journal).unwrap();
        file.write_all(&frame).unwrap();
        drop(file);

        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.stats().recovered_bytes, 0, "legacy frame is valid");
        assert_eq!(store.score(hash), Some(0.8125));
        assert_eq!(store.score_family(hash).as_deref(), Some("vision"));
        // Width-less legacy scores were produced by serial accumulation, so
        // they recall only under the width-1 contract.
        assert_eq!(store.score_for_contract(hash, &c("vision", 1)), Some(0.8125));
        assert_eq!(store.score_for_contract(hash, &c("vision", 4)), None);
        // Compaction rewrites it with an explicit tag and it still reads.
        store.compact().unwrap();
        drop(store);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.score(hash), Some(0.8125));
        assert_eq!(store.score_family(hash).as_deref(), Some("vision"));
        assert_eq!(store.score_for_contract(hash, &c("vision", 1)), Some(0.8125));
        assert_eq!(store.score_for_contract(hash, &c("vision", 4)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `score_for_contract` treats the reduction-tree width as part of the
    /// score's identity: a score journaled under one width is a *miss* under
    /// any other, both ways, and the width survives reopen and compaction
    /// (the codec format-version-3 change).
    #[test]
    fn score_for_contract_requires_matching_width() {
        let dir = temp_dir("width");
        let graphs = pool_graphs(2);
        let (h1, h4) = (graphs[0].content_hash(), graphs[1].content_hash());
        {
            let store = StoreBuilder::new(&dir).open().unwrap();
            store.put_candidate(h1, &graphs[0]).unwrap();
            store.put_score(h1, 0.6, &c("vision", 1)).unwrap();
            store.put_candidate(h4, &graphs[1]).unwrap();
            store.put_score(h4, 0.8, &c("vision", 4)).unwrap();
            assert_eq!(store.score_for_contract(h1, &c("vision", 1)), Some(0.6));
            assert_eq!(store.score_for_contract(h1, &c("vision", 4)), None);
            assert_eq!(store.score_for_contract(h4, &c("vision", 4)), Some(0.8));
            assert_eq!(store.score_for_contract(h4, &c("vision", 1)), None);
            // Family mismatches are still misses, width notwithstanding.
            assert_eq!(store.score_for_contract(h4, &c("sequence", 4)), None);
            // Every probe above counts as a lookup; hits are only recorded
            // by the caller once the recall is actually served.
            assert_eq!(store.stats().lookups, 5);
            assert_eq!(store.stats().cache_hits, 0);
        }
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.score_for_contract(h4, &c("vision", 4)), Some(0.8));
        assert_eq!(store.score_for_contract(h4, &c("vision", 1)), None);
        store.compact().unwrap();
        drop(store);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.score_for_contract(h1, &c("vision", 1)), Some(0.6));
        assert_eq!(store.score_for_contract(h1, &c("vision", 4)), None);
        assert_eq!(store.score_for_contract(h4, &c("vision", 4)), Some(0.8));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The typed-contract API (sole survivor of the PR-9 positional
    /// deprecation cycle) keys scores by the full contract: a width
    /// mismatch reads as a miss.
    #[test]
    fn contract_api_keys_scores_by_family_and_width() {
        let dir = temp_dir("contract-keyed");
        let graphs = pool_graphs(1);
        let h = graphs[0].content_hash();
        let store = StoreBuilder::new(&dir).open().unwrap();
        store.put_candidate(h, &graphs[0]).unwrap();
        store.put_score(h, 0.625, &c("vision", 4)).unwrap();
        assert_eq!(store.score_for_contract(h, &c("vision", 4)), Some(0.625));
        assert_eq!(store.score_for_contract(h, &c("vision", 1)), None);
        assert_eq!(store.score_for_contract(h, &c("sequence", 4)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_writer_names_are_rejected() {
        let dir = temp_dir("badwriter");
        for bad in ["", "a/b", "dots.bad", "sp ace", &"x".repeat(65)] {
            let err = StoreBuilder::new(&dir).writer(bad).open().unwrap_err();
            assert!(matches!(err, StoreError::InvalidWriter { .. }), "{bad:?}: {err}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Two writers share one repository directory concurrently: each locks
    /// only its own shard, both sets of records are visible to a fresh
    /// reader, and fan-in compaction merges them into one canonical
    /// segment with nothing lost.
    #[test]
    fn two_writers_share_a_repository_and_compact_fans_in() {
        let dir = temp_dir("shards");
        let graphs = pool_graphs(4);
        let hashes: Vec<u64> = graphs.iter().map(|g| g.content_hash()).collect();
        let w1 = StoreBuilder::new(&dir).writer("w1").open().unwrap();
        let w2 = StoreBuilder::new(&dir).writer("w2").open().unwrap();
        // Same writer name is still locked out; a different name is not.
        assert!(StoreBuilder::new(&dir).writer("w1").open().is_err());
        for (i, g) in graphs.iter().enumerate() {
            let (store, width) = if i % 2 == 0 { (&w1, 1) } else { (&w2, 4) };
            store.put_candidate(hashes[i], g).unwrap();
            store.put_score(hashes[i], i as f64 / 10.0, &c("vision", width)).unwrap();
        }
        w1.put_set(&CandidateSet::new("even", "run:even", vec![hashes[0], hashes[2]]))
            .unwrap();
        w2.put_set(&CandidateSet::new("odd", "run:odd", vec![hashes[1], hashes[3]]))
            .unwrap();
        // A writer sees only the segments present when it opened, so a
        // fresh handle (any writer name not in use) sees everything.
        drop(w2);
        let reader = StoreBuilder::new(&dir).writer("reader").open().unwrap();
        let stats = reader.stats();
        assert_eq!(stats.candidates, 4, "{stats:?}");
        assert_eq!(stats.candidate_sets, 2);
        assert_eq!(stats.segments, 3, "canonical + w1 + w2");
        // Fan-in compaction fails while w1 is live…
        let err = reader.compact().unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        drop(w1);
        // …and succeeds once the shard locks are free.
        let after = reader.compact().unwrap();
        assert_eq!(after.candidates, 4);
        assert_eq!(after.candidate_sets, 2);
        assert!(
            !Store::shard_path(&dir, "w1").exists() && !Store::shard_path(&dir, "w2").exists(),
            "merged shards removed"
        );
        let union = reader.derive_union("all", "even", "odd").unwrap();
        assert_eq!(union.hashes().len(), 4);
        drop(reader);
        // The merged repository reopens as a plain canonical store.
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.stats().candidates, 4);
        assert_eq!(store.candidate_set("all").unwrap().hashes().len(), 4);
        for (i, &h) in hashes.iter().enumerate() {
            let width = if i % 2 == 0 { 1 } else { 4 };
            assert_eq!(store.score_for_contract(h, &c("vision", width)), Some(i as f64 / 10.0));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Fan-in compaction is byte-stable: two repositories built by the
    /// same writers in the same order compact to identical canonical
    /// bytes, and so do repeated compactions of one repository.
    #[test]
    fn fan_in_compaction_is_byte_stable() {
        let graphs = pool_graphs(3);
        let build = |tag: &str| -> (PathBuf, Vec<u8>) {
            let dir = temp_dir(tag);
            {
                let w1 = StoreBuilder::new(&dir).writer("w1").open().unwrap();
                let w2 = StoreBuilder::new(&dir).writer("w2").open().unwrap();
                for (i, g) in graphs.iter().enumerate() {
                    let store = if i % 2 == 0 { &w1 } else { &w2 };
                    store.put_candidate(g.content_hash(), g).unwrap();
                    store.put_score(g.content_hash(), 0.25, &c("vision", 1)).unwrap();
                }
                w1.put_set(&CandidateSet::new(
                    "a",
                    "run:a",
                    graphs.iter().map(|g| g.content_hash()).collect(),
                ))
                .unwrap();
            }
            let reader = StoreBuilder::new(&dir).writer("z").open().unwrap();
            reader.compact().unwrap();
            drop(reader);
            let bytes = std::fs::read(Store::journal_path(&dir)).unwrap();
            (dir, bytes)
        };
        let (dir_a, bytes_a) = build("stable-a");
        let (dir_b, bytes_b) = build("stable-b");
        assert_eq!(bytes_a, bytes_b, "same history compacts to identical bytes");
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    /// Derive operations are deterministic set algebra over named
    /// collections, journal their own lineage into the op log, and
    /// survive reopen.
    #[test]
    fn derive_set_operations_are_deterministic_and_journaled() {
        let dir = temp_dir("derive");
        let store = StoreBuilder::new(&dir).open().unwrap();
        // Hash order in the input is irrelevant: sets are canonicalized.
        store.put_set(&CandidateSet::new("a", "run:a", vec![30, 10, 20, 10])).unwrap();
        store.put_set(&CandidateSet::new("b", "run:b", vec![20, 40])).unwrap();
        let union = store.derive_union("u", "a", "b").unwrap();
        assert_eq!(union.hashes(), &[10, 20, 30, 40]);
        assert_eq!(union.lineage(), "union(a,b)");
        let inter = store.derive_intersection("i", "a", "b").unwrap();
        assert_eq!(inter.hashes(), &[20]);
        let diff = store.derive_difference("d", "a", "b").unwrap();
        assert_eq!(diff.hashes(), &[10, 30]);
        assert_eq!(
            store.derive_union("u2", "a", "b").unwrap().digest(),
            store.derive_union("u2", "a", "b").unwrap().digest(),
            "repeat derives agree"
        );
        let err = store.derive_union("x", "a", "nope").unwrap_err();
        assert!(matches!(err, StoreError::UnknownSet { .. }), "{err}");
        let derives: Vec<_> = store
            .operations()
            .into_iter()
            .filter(|op| op.kind == OpKind::Derive)
            .collect();
        assert_eq!(derives.len(), 5);
        assert_eq!(derives[0].detail, "union(a,b)");
        drop(store);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.candidate_set("u").unwrap().hashes(), &[10, 20, 30, 40]);
        assert_eq!(store.candidate_set("i").unwrap().lineage(), "intersection(a,b)");
        let mut names = store.set_names();
        names.sort();
        assert_eq!(names, ["a", "b", "d", "i", "u", "u2"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `CandidateSet::top_k` ranks by contract score (desc, hash asc
    /// tiebreak), skipping unscored members and NaN failure markers.
    #[test]
    fn candidate_set_top_k_ranks_by_contract_score() {
        let dir = temp_dir("topk");
        let graphs = pool_graphs(4);
        let hashes: Vec<u64> = graphs.iter().map(|g| g.content_hash()).collect();
        let store = StoreBuilder::new(&dir).open().unwrap();
        for g in &graphs {
            store.put_candidate(g.content_hash(), g).unwrap();
        }
        store.put_score(hashes[0], 0.5, &c("vision", 1)).unwrap();
        store.put_score(hashes[1], 0.9, &c("vision", 1)).unwrap();
        store.put_score(hashes[2], f64::NAN, &c("vision", 1)).unwrap();
        store.put_score(hashes[3], 0.9, &c("sequence", 1)).unwrap();
        let set = CandidateSet::new("s", "run:s", hashes.clone());
        let top = set.top_k(&store, 10, &c("vision", 1));
        assert_eq!(top.len(), 2, "NaN and family-mismatch excluded: {top:?}");
        assert_eq!(top[0], (hashes[1], 0.9));
        assert_eq!(top[1], (hashes[0], 0.5));
        assert_eq!(set.top_k(&store, 1, &c("vision", 1)), vec![(hashes[1], 0.9)]);
        assert!(set.top_k(&store, 10, &c("vision", 4)).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The operation log records run lifecycle events with writer
    /// attribution, and `last_operation` finds the newest entry for a
    /// scenario.
    #[test]
    fn operation_log_records_lifecycle_with_writer_attribution() {
        let dir = temp_dir("oplog");
        {
            let store = StoreBuilder::new(&dir).writer("runner-1").open().unwrap();
            store.log_operation(OpKind::RunStarted, "pool", 42, "seed 7").unwrap();
            store.log_operation(OpKind::Checkpoint, "pool", 42, "iteration 10").unwrap();
        }
        let store = StoreBuilder::new(&dir).open().unwrap();
        store.log_operation(OpKind::RunResumed, "pool", 42, "from iteration 10").unwrap();
        let ops = store.operations_for("pool");
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].kind, OpKind::RunStarted);
        assert_eq!(ops[0].writer, "runner-1");
        assert_eq!(ops[2].writer, "journal", "canonical writer id");
        let last = store.last_operation("pool", 42).unwrap();
        assert_eq!(last.kind, OpKind::RunResumed);
        assert!(store.last_operation("pool", 99).is_none());
        assert_eq!(store.stats().operations, 3);

        // The attach-replay cursor: `operations_since(n)` returns exactly
        // what a reader who saw the first `n` entries missed.
        let all = store.operations();
        assert_eq!(store.operations_since(0), all);
        assert_eq!(store.operations_since(1), all[1..].to_vec());
        store
            .log_operation(OpKind::SessionAttached, "pool", 42, "tenant a from seq 3")
            .unwrap();
        let missed = store.operations_since(all.len());
        assert_eq!(missed.len(), 1);
        assert_eq!(missed[0].kind, OpKind::SessionAttached);
        assert_eq!(missed[0].kind.name(), "session-attached");
        assert!(store.operations_since(usize::MAX).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Crash recovery is per-shard: a torn tail on one shard truncates
    /// only when its owner reopens, and never damages the other shards'
    /// records or the derived sets stored in them.
    #[test]
    fn torn_shard_tail_leaves_other_shards_and_sets_intact() {
        let dir = temp_dir("tornshard");
        let graphs = pool_graphs(3);
        let hashes: Vec<u64> = graphs.iter().map(|g| g.content_hash()).collect();
        {
            let w1 = StoreBuilder::new(&dir).writer("w1").open().unwrap();
            let w2 = StoreBuilder::new(&dir).writer("w2").open().unwrap();
            w1.put_candidate(hashes[0], &graphs[0]).unwrap();
            w1.put_set(&CandidateSet::new("keep", "run:keep", vec![hashes[0]])).unwrap();
            w2.put_candidate(hashes[1], &graphs[1]).unwrap();
            w2.put_candidate(hashes[2], &graphs[2]).unwrap();
        }
        // Crash mid-append on w2's shard.
        let shard = Store::shard_path(&dir, "w2");
        let len = std::fs::metadata(&shard).unwrap().len();
        let file = OpenOptions::new().write(true).open(&shard).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);
        // A *foreign* reader skips the torn tail without truncating.
        {
            let reader = StoreBuilder::new(&dir).writer("r").open().unwrap();
            let stats = reader.stats();
            assert_eq!(stats.candidates, 2, "torn third candidate skipped");
            assert_eq!(stats.recovered_bytes, 0, "foreign tails are not truncated");
            assert!(reader.contains(hashes[0]) && reader.contains(hashes[1]));
            assert_eq!(reader.candidate_set("keep").unwrap().hashes(), &[hashes[0]]);
        }
        assert_eq!(std::fs::metadata(&shard).unwrap().len(), len - 5);
        // The shard's own writer truncates and keeps going.
        let w2 = StoreBuilder::new(&dir).writer("w2").open().unwrap();
        assert!(w2.stats().recovered_bytes > 0);
        w2.put_candidate(hashes[2], &graphs[2]).unwrap();
        assert_eq!(w2.stats().candidates, 3);
        assert_eq!(w2.candidate_set("keep").unwrap().hashes(), &[hashes[0]]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A named writer's compaction folds everything into the canonical
    /// segment, resets its own shard to header-only, and keeps accepting
    /// appends.
    #[test]
    fn named_writer_compaction_resets_own_shard() {
        let dir = temp_dir("shardreset");
        let graphs = pool_graphs(2);
        let (h0, h1) = (graphs[0].content_hash(), graphs[1].content_hash());
        let w1 = StoreBuilder::new(&dir).writer("w1").open().unwrap();
        w1.put_candidate(h0, &graphs[0]).unwrap();
        w1.compact().unwrap();
        assert_eq!(
            std::fs::metadata(Store::shard_path(&dir, "w1")).unwrap().len(),
            HEADER_LEN,
            "own shard reset to header-only"
        );
        w1.put_candidate(h1, &graphs[1]).unwrap();
        assert_eq!(w1.stats().candidates, 2);
        drop(w1);
        let store = StoreBuilder::new(&dir).open().unwrap();
        assert_eq!(store.stats().candidates, 2);
        assert!(
            store.operations().iter().any(|op| op.kind == OpKind::Compaction),
            "compaction is journaled in the op log"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let dir = temp_dir("threads");
        let graphs = pool_graphs(4);
        let store = Arc::new(StoreBuilder::new(&dir).open().unwrap());
        std::thread::scope(|scope| {
            for g in &graphs {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    let h = g.content_hash();
                    store.put_candidate(h, g).unwrap();
                    store.put_score(h, 0.5, &c("vision", 1)).unwrap();
                });
            }
        });
        assert_eq!(store.stats().candidates, graphs.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
