//! # syno-store — the persistent, content-addressed candidate store
//!
//! Syno's search loop (Algorithm 1) spends nearly all of its wall-clock on
//! candidate evaluation: proxy training and latency tuning dominate, and the
//! paper leans on canonical-form deduplication to avoid redundant work
//! *within* one run. This crate extends that amortization *across* runs: an
//! append-only on-disk journal of candidate operators and their evaluation
//! results, keyed by the stable content hash
//! ([`PGraph::content_hash`](syno_core::graph::PGraph::content_hash)), plus
//! search checkpoints that let an interrupted run resume without repeating
//! completed evaluations.
//!
//! * [`Store`] — the journal: [`Record`]s (`Candidate`, `ProxyScore`,
//!   `LatencyMeasurement`, `Checkpoint`) framed with length + checksum,
//!   loaded through crash-safe recovery that truncates a torn tail record,
//!   indexed in memory by content hash, and compactable in place.
//! * [`StoreBuilder`] — open/create configuration.
//! * [`StoreStats`] — counters for dashboards and tests.
//! * [`Checkpoint`] — a search scenario's journaled position (label, spec
//!   fingerprint, seed, iterations, discoveries), consumed by
//!   `SearchBuilder::resume_from` in `syno-search`.
//!
//! Serialization is `syno-core`'s hand-rolled versioned binary codec
//! ([`syno_core::codec`]); this crate adds the journal framing on top. There
//! are no dependencies beyond `syno-core` and `std`.
//!
//! ## Example
//!
//! ```no_run
//! use syno_store::StoreBuilder;
//!
//! let store = StoreBuilder::new("/tmp/syno-store").create(true).open().unwrap();
//! println!("{:?}", store.stats());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod journal;

pub use journal::{
    Checkpoint, Record, RecordKind, Store, StoreBuilder, StoreError, StoreStats,
};
