//! # syno-store — the persistent, content-addressed candidate store
//!
//! Syno's search loop (Algorithm 1) spends nearly all of its wall-clock on
//! candidate evaluation: proxy training and latency tuning dominate, and the
//! paper leans on canonical-form deduplication to avoid redundant work
//! *within* one run. This crate extends that amortization *across* runs: an
//! append-only on-disk journal of candidate operators and their evaluation
//! results, keyed by the stable content hash
//! ([`PGraph::content_hash`](syno_core::graph::PGraph::content_hash)), plus
//! search checkpoints that let an interrupted run resume without repeating
//! completed evaluations.
//!
//! Since codec v4 the store is a **versioned candidate repository**: a
//! directory of journal *segments* — one canonical `journal.syno` plus one
//! `journal-<writer>.syno` shard per named writer — so many processes can
//! append to one repository concurrently, each holding only its own shard's
//! lock. Fan-in [`Store::compact`] merges every segment back into the
//! canonical one. An operation log ([`Operation`]/[`OpKind`]) gives runs and
//! derived collections lineage, and [`CandidateSet`] adds named, determin-
//! istic set algebra (`derive_union` / `derive_intersection` /
//! `derive_difference`) plus `top_k` selection over candidate collections.
//!
//! * [`Store`] — the repository: [`Record`]s (`Candidate`, `ProxyScore`,
//!   `LatencyMeasurement`, `Checkpoint`, `Operation`, `CandidateSet`)
//!   framed with length + checksum, loaded through crash-safe recovery
//!   that truncates a torn tail record on the writer's own segment,
//!   indexed in memory by content hash, and compactable fan-in.
//! * [`StoreBuilder`] — open/create configuration, including
//!   [`StoreBuilder::writer`] for shard-per-writer mode.
//! * [`ScoreContract`] — the typed identity of a proxy score (family +
//!   reduction-tree width), taken by `put_score` / `score_for_contract`.
//! * [`StoreStats`] — counters for dashboards and tests.
//! * [`Checkpoint`] — a search scenario's journaled position (label, spec
//!   fingerprint, seed, iterations, discoveries), consumed by
//!   `SearchBuilder::resume_from` in `syno-search`.
//! * [`CandidateSet`] / [`DeriveOp`] — named content-hash collections and
//!   the derive algebra over them.
//!
//! Serialization is `syno-core`'s hand-rolled versioned binary codec
//! ([`syno_core::codec`]); this crate adds the journal framing on top. There
//! are no dependencies beyond `syno-core` and `std`.
//!
//! ## Example
//!
//! ```no_run
//! use syno_store::StoreBuilder;
//!
//! let store = StoreBuilder::new("/tmp/syno-store").create(true).open().unwrap();
//! println!("{:?}", store.stats());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod journal;

pub use journal::{
    CandidateSet, Checkpoint, DeriveOp, Operation, OpKind, Record, RecordKind, ScoreContract,
    Store, StoreBuilder, StoreError, StoreStats,
};
