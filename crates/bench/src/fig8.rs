//! Figure 8: the Operator 1 case study — against the original convolution,
//! INT8 quantization, and the stacked-convolution control, on ResNet-18
//! with TVM.

use syno_compiler::{compile, CompilerKind, DType, Device, OperatorClass};
use syno_models::{model_latency, resnet18, shape_of, stacked_convolution, Substitution};
use syno_nn::{operator_accuracy, ProxyConfig, TrainConfig};

/// One variant of the Fig. 8 comparison.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Variant label.
    pub variant: String,
    /// Latency per device (mobile CPU, mobile GPU, A100), seconds.
    pub latencies: Vec<f64>,
    /// Proxy accuracy in `[0, 1]`.
    pub accuracy: f64,
}

fn stacked_latency(device: &Device) -> f64 {
    // Sum of per-layer stacked-convolution latencies over ResNet-18's
    // substitutable sites, baseline elsewhere.
    let backbone = resnet18();
    let mut total = 0.0;
    for layer in &backbone.convs {
        let shape = shape_of(layer);
        let site = match stacked_convolution(&shape) {
            Some((a, b)) => {
                let la = syno_compiler::profile_graph(&a, 0, OperatorClass::Standard, "s1")
                    .map(|p| compile(&p, device, CompilerKind::Tvm, DType::F32).latency)
                    .unwrap_or(f64::INFINITY);
                let lb = syno_compiler::profile_graph(&b, 0, OperatorClass::Standard, "s2")
                    .map(|p| compile(&p, device, CompilerKind::Tvm, DType::F32).latency)
                    .unwrap_or(f64::INFINITY);
                la + lb
            }
            None => syno_models::site_latency(
                layer,
                Substitution::Baseline,
                device,
                CompilerKind::Tvm,
            ),
        };
        total += site * layer.count as f64;
    }
    total
}

fn stacked_accuracy(config: &ProxyConfig) -> f64 {
    // The stacked convolution trains the same student through its first
    // stage operator; the paper found it doubles Operator 1's accuracy
    // degradation (narrower 3×3 receptive field vs 3×5). The proxy
    // evaluates the grouped first stage.
    let shape = syno_models::ConvShape {
        n: 16,
        cin: 8,
        cout: 8,
        hw: 8,
        k: 3,
        g: 2,
        s: 2,
    };
    match syno_models::grouped_conv_graph(&shape) {
        Some(g) => operator_accuracy(&g, 0, config) as f64,
        None => 0.0,
    }
}

/// Computes the four Fig. 8 variants.
pub fn fig8_data(quick: bool) -> Vec<Fig8Row> {
    let devices = Device::all();
    let backbone = resnet18();
    // 30-step training is too noisy for stable accuracy orderings (the
    // student swings by ±0.15 across init seeds); 60 steps with 4 eval
    // batches keeps the quick path deterministic *and* representative.
    let proxy = ProxyConfig {
        train: TrainConfig {
            steps: if quick { 60 } else { 80 },
            batch: 16,
            eval_batches: 4,
            ..TrainConfig::default()
        },
        ..ProxyConfig::default()
    };
    let shape = syno_models::ConvShape {
        n: 16,
        cin: 8,
        cout: 8,
        hw: 8,
        k: 3,
        g: 2,
        s: 2,
    };

    let lat = |subst: Substitution| -> Vec<f64> {
        devices
            .iter()
            .map(|d| model_latency(&backbone, subst, d, CompilerKind::Tvm))
            .collect()
    };

    let conv_acc = syno_models::conv_graph(&shape)
        .map(|g| operator_accuracy(&g, 0, &proxy) as f64)
        .unwrap_or(0.0);
    let op1_acc = syno_models::operator1(&shape)
        .map(|g| operator_accuracy(&g, 0, &proxy) as f64)
        .unwrap_or(0.0);

    vec![
        Fig8Row {
            variant: "original".into(),
            latencies: lat(Substitution::Baseline),
            accuracy: conv_acc,
        },
        Fig8Row {
            variant: "int8-quantized".into(),
            latencies: lat(Substitution::Int8),
            accuracy: (conv_acc - 0.02).max(0.0),
        },
        Fig8Row {
            variant: "stacked-convolution".into(),
            latencies: devices.iter().map(stacked_latency).collect(),
            accuracy: stacked_accuracy(&proxy),
        },
        Fig8Row {
            variant: "operator-1".into(),
            latencies: lat(Substitution::Operator1),
            accuracy: op1_acc,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_orderings_hold() {
        let rows = fig8_data(true);
        assert_eq!(rows.len(), 4);
        let get = |name: &str| rows.iter().find(|r| r.variant == name).unwrap();
        let original = get("original");
        let op1 = get("operator-1");
        let int8 = get("int8-quantized");
        // Operator 1 beats the original on the mobile CPU (paper: 2.68×).
        assert!(op1.latencies[0] < original.latencies[0]);
        // Operator 1 has lower CPU latency than INT8 (paper's Fig. 8).
        assert!(op1.latencies[0] < int8.latencies[0]);
        // And roughly matches INT8's accuracy. The slack reflects the
        // proxy's evaluation granularity (64 held-out samples → 1/64 steps)
        // plus its short-training variance; the paper's claim is "slight
        // degradation", not equality.
        assert!(
            op1.accuracy >= int8.accuracy - 0.1,
            "op1 {} vs int8 {}",
            op1.accuracy,
            int8.accuracy
        );
    }
}
