//! Figure 6: accuracy-vs-latency Pareto curves per model (ImageNet in the
//! paper; the proxy task here — see DESIGN.md §3).

use syno_compiler::{CompilerKind, Device};
use syno_models::{model_latency, vision_backbones, ConvShape, Substitution};
use syno_nn::{operator_accuracy, ProxyConfig, TrainConfig};
use syno_search::{pareto_front, TradeoffPoint};

/// One point of a Fig. 6 curve.
#[derive(Clone, Debug)]
pub struct Fig6Point {
    /// Model name.
    pub model: String,
    /// Substitution label (`baseline` is the hollow point of the paper).
    pub operator: String,
    /// End-to-end latency (seconds).
    pub latency: f64,
    /// Proxy accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// `true` when the point is on the Pareto front.
    pub on_front: bool,
}

/// Proxy accuracy of a substitution, evaluated once at a representative
/// residual-block shape (the paper trains the full substituted model; the
/// proxy trains the operator inside a fixed student — DESIGN.md §3).
fn substitution_accuracy(subst: Substitution, config: &ProxyConfig) -> f64 {
    let shape = ConvShape {
        n: 16,
        cin: 8,
        cout: 8,
        hw: 8,
        k: 3,
        g: 2,
        s: 2,
    };
    let graph = match subst {
        Substitution::Baseline | Substitution::Int8 => syno_models::conv_graph(&shape),
        Substitution::Operator1 => syno_models::operator1(&shape),
        Substitution::Operator2 => syno_models::operator2(&shape),
        Substitution::NasPte(seq) => {
            syno_models::nas_pte_graphs(&shape, seq).and_then(|mut v| v.pop())
        }
    };
    match graph {
        Some(g) => {
            let mut acc = operator_accuracy(&g, 0, config) as f64;
            if subst == Substitution::Int8 {
                // Quantization costs a little accuracy (Fig. 8: INT8 sits
                // slightly below Operator 1).
                acc -= 0.02;
            }
            acc
        }
        None => 0.0,
    }
}

/// Computes the Fig. 6 points for all vision models on one device/compiler.
pub fn fig6_data(device: &Device, compiler: CompilerKind, quick: bool) -> Vec<Fig6Point> {
    let proxy = ProxyConfig {
        train: TrainConfig {
            steps: if quick { 30 } else { 80 },
            batch: 16,
            eval_batches: if quick { 2 } else { 4 },
            ..TrainConfig::default()
        },
        ..ProxyConfig::default()
    };
    let substitutions = [
        Substitution::Baseline,
        Substitution::Operator1,
        Substitution::Operator2,
    ];
    // Accuracies depend on the operator, not the backbone: evaluate once.
    let accuracies: Vec<f64> = substitutions
        .iter()
        .map(|&s| substitution_accuracy(s, &proxy))
        .collect();

    let mut out = Vec::new();
    for backbone in vision_backbones() {
        let mut points = Vec::new();
        for (&subst, &accuracy) in substitutions.iter().zip(&accuracies) {
            let latency = model_latency(&backbone, subst, device, compiler);
            points.push((subst, latency, accuracy));
        }
        let tradeoffs: Vec<TradeoffPoint> = points
            .iter()
            .map(|&(_, latency, accuracy)| TradeoffPoint { latency, accuracy })
            .collect();
        let front = pareto_front(&tradeoffs);
        for (idx, (subst, latency, accuracy)) in points.into_iter().enumerate() {
            out.push(Fig6Point {
                model: backbone.name.to_owned(),
                operator: subst.name(),
                latency,
                accuracy,
                on_front: front.contains(&idx),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_pareto_structure() {
        let points = fig6_data(&Device::mobile_cpu(), CompilerKind::Tvm, true);
        assert_eq!(points.len(), 5 * 3);
        for model in ["ResNet-18", "ResNet-34"] {
            let slice: Vec<&Fig6Point> =
                points.iter().filter(|p| p.model == model).collect();
            // Syno operators must be faster than the baseline...
            let base = slice.iter().find(|p| p.operator == "baseline").unwrap();
            let op1 = slice.iter().find(|p| p.operator == "syno-op1").unwrap();
            assert!(op1.latency < base.latency);
            // ...at bounded accuracy cost (the paper's 1–2% regime scaled
            // to the proxy's resolution).
            assert!(op1.accuracy > base.accuracy - 0.25);
            // At least one point is on the front.
            assert!(slice.iter().any(|p| p.on_front));
        }
    }
}
