//! Table 3 (§9.4): canonical rates by pGraph size, and the shape-distance
//! ablation.
//!
//! * **Table 3** — sample primitive sequences *without* canonicalization
//!   (permissive rules) and measure what fraction of each size would have
//!   been accepted by the full rule set. The paper finds > 70× redundancy.
//! * **Shape-distance ablation** — count valid operators found by random
//!   trials with and without the shape-distance guidance; the paper's
//!   unguided run found zero in 500M trials.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use syno_core::canon::CanonRules;
use syno_core::graph::PGraph;
use syno_core::prelude::*;
use syno_core::size::Size;
use syno_core::spec::{OperatorSpec, TensorShape};
use syno_core::var::{VarKind, VarTable};

/// One row of Table 3.
#[derive(Clone, Copy, Debug)]
pub struct Table3Row {
    /// pGraph size (number of primitives).
    pub size: usize,
    /// Samples drawn at this size.
    pub sampled: u64,
    /// Samples whose every step passes the full canonicalization rules.
    pub canonical: u64,
}

impl Table3Row {
    /// The canonical rate.
    pub fn rate(&self) -> f64 {
        if self.sampled == 0 {
            f64::NAN
        } else {
            self.canonical as f64 / self.sampled as f64
        }
    }
}

/// The conv-like specification used for sampling experiments.
pub fn sampling_spec() -> (Arc<VarTable>, OperatorSpec) {
    let mut vars = VarTable::new();
    let cin = vars.declare("Cin", VarKind::Primary);
    let cout = vars.declare("Cout", VarKind::Primary);
    let h = vars.declare("H", VarKind::Primary);
    let w = vars.declare("W", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    let s = vars.declare("s", VarKind::Coefficient);
    vars.push_valuation(vec![(cin, 16), (cout, 32), (h, 16), (w, 16), (k, 3), (s, 2)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![Size::var(cin), Size::var(h), Size::var(w)]),
        TensorShape::new(vec![Size::var(cout), Size::var(h), Size::var(w)]),
    );
    (vars, spec)
}

/// Samples `trials` random primitive sequences with canonicalization
/// disabled and reports, per size, how many would have been canonical.
pub fn table3_data(trials: u64, max_size: usize, seed: u64) -> Vec<Table3Row> {
    let (vars, spec) = sampling_spec();
    let mut permissive = SynthConfig::auto(&vars, max_size);
    permissive.canon = CanonRules::permissive();
    let sampler = Enumerator::new(permissive);
    let strict = CanonRules::default();

    let mut rows: Vec<Table3Row> = (2..=max_size)
        .map(|size| Table3Row {
            size,
            sampled: 0,
            canonical: 0,
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..trials {
        // Random walk of random length in [2, max_size].
        let target = rng.random_range(2..=max_size);
        let mut state = PGraph::new(Arc::clone(&vars), spec.clone());
        let mut all_canonical = true;
        let mut replay = PGraph::new(Arc::clone(&vars), spec.clone());
        let mut reached = 0;
        for _ in 0..target {
            let children = sampler.children(&state);
            if children.is_empty() {
                break;
            }
            let action = children[rng.random_range(0..children.len())].clone();
            if all_canonical && strict.allows(&replay, &action).is_err() {
                all_canonical = false;
            }
            state = state.apply(&action).expect("child applies");
            if all_canonical {
                replay = replay.apply(&action).expect("canonical replay");
            }
            reached += 1;
        }
        if reached < 2 {
            continue;
        }
        let row = &mut rows[reached - 2];
        row.sampled += 1;
        if all_canonical {
            row.canonical += 1;
        }
    }
    rows
}

/// Shape-distance ablation results.
#[derive(Clone, Copy, Debug)]
pub struct SdAblation {
    /// Trials per arm.
    pub trials: u64,
    /// Valid operators found with guidance.
    pub guided_found: u64,
    /// Distinct guided operators.
    pub guided_distinct: u64,
    /// Valid operators found without guidance.
    pub unguided_found: u64,
}

/// Runs `trials` random rollouts with and without shape-distance guidance
/// (§9.4: guided sampling finds hundreds of distinct operators; unguided
/// sampling finds none).
pub fn ablation_shape_distance(trials: u64, max_steps: usize, seed: u64) -> SdAblation {
    let (vars, spec) = sampling_spec();
    let config = SynthConfig::auto(&vars, max_steps);
    let enumerator = Enumerator::new(config);
    let root = PGraph::new(Arc::clone(&vars), spec);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut guided_found = 0;
    let mut distinct = std::collections::HashSet::new();
    for _ in 0..trials {
        if let RolloutResult::Complete(g) = rollout(&mut rng, &enumerator, &root, true) {
            guided_found += 1;
            distinct.insert(g.state_hash());
        }
    }
    let mut unguided_found = 0;
    for _ in 0..trials {
        if let RolloutResult::Complete(_) = rollout(&mut rng, &enumerator, &root, false) {
            unguided_found += 1;
        }
    }
    SdAblation {
        trials,
        guided_found,
        guided_distinct: distinct.len() as u64,
        unguided_found,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_rate_decays_with_size() {
        let rows = table3_data(400, 6, 42);
        let small = rows.iter().find(|r| r.size == 2).unwrap();
        let large = rows.iter().find(|r| r.size == 6).unwrap();
        assert!(small.sampled > 0 && large.sampled > 0);
        assert!(
            small.rate() > large.rate(),
            "rate must decay: {:.3} -> {:.3}",
            small.rate(),
            large.rate()
        );
        // Deep graphs are overwhelmingly uncanonical (Table 3: 1.22% at 6).
        assert!(large.rate() < 0.5);
    }

    #[test]
    fn guidance_dominates_unguided_sampling() {
        let result = ablation_shape_distance(150, 5, 7);
        assert!(
            result.guided_found > result.unguided_found,
            "guided {} vs unguided {}",
            result.guided_found,
            result.unguided_found
        );
        assert!(result.guided_found > 0);
    }
}
