//! Figure 9: layer-wise speedups on ResNet-34 — Syno Operators 1 and 2
//! versus the three NAS-PTE sequences, under both compilers, for the ten
//! layers the paper plots.

use syno_compiler::{CompilerKind, Device};
use syno_models::{resnet34_layers, site_latency, NasPteSeq, Substitution, FIG9_LAYERS};

/// One (layer, device, compiler) group of Fig. 9.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Layer label (`L7`, …).
    pub layer: String,
    /// Device name.
    pub device: String,
    /// Compiler name.
    pub compiler: String,
    /// Baseline (standard conv) latency.
    pub baseline: f64,
    /// NAS-PTE sequence latencies (1–3).
    pub nas_pte: Vec<f64>,
    /// Syno Operator 1 / Operator 2 latencies.
    pub syno: Vec<f64>,
}

impl Fig9Row {
    /// Speedup of the best Syno operator over the best NAS-PTE sequence.
    pub fn syno_vs_naspte(&self) -> f64 {
        let best_syno = self.syno.iter().copied().fold(f64::INFINITY, f64::min);
        let best_pte = self.nas_pte.iter().copied().fold(f64::INFINITY, f64::min);
        best_pte / best_syno
    }
}

/// Computes the Fig. 9 rows.
pub fn fig9_data() -> Vec<Fig9Row> {
    let layers = resnet34_layers();
    let mut rows = Vec::new();
    for device in Device::all() {
        for compiler in [CompilerKind::Tvm, CompilerKind::TorchInductor] {
            for &idx in &FIG9_LAYERS {
                let layer = &layers[idx - 1];
                let baseline = site_latency(layer, Substitution::Baseline, &device, compiler);
                let nas_pte: Vec<f64> = NasPteSeq::ALL
                    .iter()
                    .map(|&seq| {
                        site_latency(layer, Substitution::NasPte(seq), &device, compiler)
                    })
                    .collect();
                let syno = vec![
                    site_latency(layer, Substitution::Operator1, &device, compiler),
                    site_latency(layer, Substitution::Operator2, &device, compiler),
                ];
                rows.push(Fig9Row {
                    layer: format!("L{idx}"),
                    device: device.name.to_owned(),
                    compiler: compiler.name().to_owned(),
                    baseline,
                    nas_pte,
                    syno,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_tvm_favors_syno() {
        let rows = fig9_data();
        assert_eq!(rows.len(), 3 * 2 * 10);
        // Paper: with TVM, Syno's best operators beat NAS-PTE's best on
        // average (2.13×/1.68×/1.63× per device). Check the geomean > 1.
        for device in ["mobile-cpu", "mobile-gpu", "a100"] {
            let slice: Vec<f64> = rows
                .iter()
                .filter(|r| r.device == device && r.compiler == "TVM")
                .map(Fig9Row::syno_vs_naspte)
                .collect();
            let geomean =
                (slice.iter().map(|s| s.ln()).sum::<f64>() / slice.len() as f64).exp();
            assert!(
                geomean > 1.0,
                "Syno vs NAS-PTE geomean on {device} (TVM): {geomean:.2}"
            );
        }
    }

    #[test]
    fn fig9_inductor_penalizes_novel_ops_on_mobile() {
        // Paper: under TorchInductor on mobile, Syno *underperforms*
        // NAS-PTE (0.83×/0.84×) because novel operators fall back to ATen.
        let rows = fig9_data();
        let slice: Vec<f64> = rows
            .iter()
            .filter(|r| r.device == "mobile-cpu" && r.compiler == "TorchInductor")
            .map(Fig9Row::syno_vs_naspte)
            .collect();
        let geomean = (slice.iter().map(|s| s.ln()).sum::<f64>() / slice.len() as f64).exp();
        let tvm: Vec<f64> = rows
            .iter()
            .filter(|r| r.device == "mobile-cpu" && r.compiler == "TVM")
            .map(Fig9Row::syno_vs_naspte)
            .collect();
        let tvm_geomean = (tvm.iter().map(|s| s.ln()).sum::<f64>() / tvm.len() as f64).exp();
        assert!(
            geomean < tvm_geomean,
            "fallback must hurt Syno under TorchInductor on mobile: {geomean:.2} vs {tvm_geomean:.2}"
        );
    }
}
