//! Search-throughput measurement: candidates/second of the evaluation
//! pipeline across three sections —
//!
//! * **serial vs pipelined** (`eval_workers(1)` vs `eval_workers(n)`) on
//!   the vision spec, with the determinism contract (identical candidate
//!   sets) checked alongside the timing;
//! * **multi-scenario**: a vision and an LM scenario side by side over the
//!   scenario worker pool — the task-family registry's throughput probe;
//! * **warm-store**: the same vision run cold (journal everything) and
//!   warm (recall everything), measuring the cross-run caching win.
//!
//! This is the perf-trajectory probe for the system's hottest path — the
//! paper's search cost is dominated by evaluating complete candidates
//! (§7.2, ≈0.1 GPU-hours of proxy training each). The `bench_search`
//! binary prints the result and emits `BENCH_search.json`; CI diffs its
//! throughput against the committed `BENCH_baseline.json` and gates on the
//! determinism section.

use std::sync::Arc;
use std::time::Instant;
use syno_core::size::Size;
use syno_core::spec::{OperatorSpec, TensorShape};
use syno_core::var::{VarKind, VarTable};
use syno_nn::{ProxyConfig, TrainConfig};
use syno_search::{ExecPolicy, MctsConfig, SearchBuilder, SearchEvent};
use syno_store::StoreBuilder;

/// One timed pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineSample {
    /// `SearchBuilder::eval_workers` setting.
    pub eval_workers: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Fully evaluated candidates the run produced.
    pub candidates: usize,
    /// Candidates per second of wall clock.
    pub throughput: f64,
}

/// The multi-scenario (vision + LM) section: both task families searched
/// in one run over the scenario worker pool.
#[derive(Clone, Copy, Debug)]
pub struct MultiScenarioSample {
    /// Wall-clock seconds for the combined run.
    pub wall_secs: f64,
    /// Fully evaluated candidates from the vision scenario.
    pub vision_candidates: usize,
    /// Fully evaluated candidates from the LM scenario.
    pub lm_candidates: usize,
    /// Combined candidates per second of wall clock.
    pub throughput: f64,
}

/// The warm-store section: one vision run journaling to a cold store, then
/// the identical run recalling from it.
#[derive(Clone, Copy, Debug)]
pub struct WarmStoreSample {
    /// Wall-clock seconds of the cold (journal-everything) run.
    pub cold_wall_secs: f64,
    /// Wall-clock seconds of the warm (recall-everything) run.
    pub warm_wall_secs: f64,
    /// `CacheHit` evaluations the warm run served from the journal.
    pub cache_hits: usize,
    /// Proxy trainings the warm run still had to perform (0 when the
    /// journal covers the whole candidate set).
    pub warm_trainings: usize,
    /// Cold-over-warm wall-clock speedup — the cross-run caching win.
    pub speedup: f64,
    /// Whether cold and warm discovered the identical candidate set — the
    /// replay-determinism contract of the store.
    pub identical_sets: bool,
}

/// One per-phase wall-clock split (fractions of the run's wall clock),
/// measured with telemetry enabled.
#[derive(Clone, Copy, Debug)]
pub struct PhaseSample {
    /// `SearchBuilder::eval_workers` setting.
    pub eval_workers: usize,
    /// Wall-clock seconds for the run.
    pub wall_secs: f64,
    /// Fraction of wall in tree search (selection + rollout synthesis).
    pub synth_frac: f64,
    /// Fraction of wall in proxy training.
    pub eval_frac: f64,
    /// Fraction of wall in store lookups/appends.
    pub store_frac: f64,
    /// Fraction of wall in latency tuning.
    pub tune_frac: f64,
    /// Unattributed fraction (clamped at zero when phases overlap wall
    /// with `eval_workers > 1`).
    pub idle_frac: f64,
}

/// The telemetry section: serial throughput with the spans + metrics
/// machinery enabled vs disabled (the <5% overhead budget), the
/// determinism contract with tracing on, and the per-phase breakdown.
#[derive(Clone, Debug)]
pub struct TelemetryData {
    /// Serial wall-clock seconds with telemetry disabled (the plain
    /// serial sample, re-stated here for the overhead ratio).
    pub disabled_wall_secs: f64,
    /// Serial wall-clock seconds with telemetry enabled.
    pub enabled_wall_secs: f64,
    /// `enabled/disabled - 1` — positive means telemetry cost wall time.
    pub overhead_frac: f64,
    /// Whether the telemetry-enabled run discovered the identical
    /// candidate set as the disabled run — tracing must be out-of-band.
    pub identical_sets: bool,
    /// Per-phase splits at `eval_workers` 1 and n (empty when the
    /// breakdown was not requested).
    pub phase_breakdown: Vec<PhaseSample>,
}

/// The exec-thread invariance section: the same search run under
/// data-parallel execution policies with 1, 2, and 4 worker threads (at
/// the pinned reduction width) must discover **bit-identical** candidate
/// sets — `exec_threads` shards loops without ever moving a score bit,
/// so the deterministic-search contract survives data parallelism.
#[derive(Clone, Debug)]
pub struct ExecInvarianceData {
    /// The thread levels compared.
    pub exec_threads: Vec<usize>,
    /// Whether every level discovered the same `(content hash, accuracy
    /// bits)` set.
    pub identical_candidate_sets: bool,
}

/// Runs the bench scenario once per exec-thread level and diffs the
/// scored candidate sets bit-for-bit.
pub fn exec_thread_invariance(iterations: usize, proxy_steps: usize) -> ExecInvarianceData {
    let (vars, spec) = bench_scenario();
    let exec_threads = vec![1usize, 2, 4];
    let sets: Vec<Vec<(u64, u64)>> = exec_threads
        .iter()
        .map(|&threads| {
            let report = SearchBuilder::new()
                .scenario("bench-conv", &vars, &spec)
                .mcts(MctsConfig {
                    iterations,
                    seed: 7,
                    ..MctsConfig::default()
                })
                .proxy(bench_proxy(proxy_steps))
                .exec_policy(ExecPolicy::with_threads(threads))
                .run()
                .expect("exec-invariance bench runs");
            let mut ids: Vec<(u64, u64)> = report
                .candidates
                .iter()
                .map(|c| (c.graph.content_hash(), c.accuracy.to_bits()))
                .collect();
            ids.sort_unstable();
            ids
        })
        .collect();
    ExecInvarianceData {
        exec_threads,
        identical_candidate_sets: sets.iter().all(|s| s == &sets[0]),
    }
}

/// The serial-versus-pipelined comparison on the bench spec.
#[derive(Clone, Debug)]
pub struct SearchPipelineData {
    /// MCTS iterations per run.
    pub iterations: usize,
    /// The serial baseline.
    pub serial: PipelineSample,
    /// The pipelined run.
    pub pipelined: PipelineSample,
    /// Wall-clock speedup of the pipelined run over serial.
    pub speedup: f64,
    /// Whether both runs discovered the identical candidate set (keyed by
    /// content hash) — the determinism contract.
    pub identical_sets: bool,
    /// Hardware parallelism the measurement ran on; a speedup near 1.0 is
    /// expected when this is 1 regardless of `eval_workers`.
    pub available_parallelism: usize,
    /// The vision + LM multi-scenario section (`None` when not requested —
    /// determinism-only runs skip this unasserted timing).
    pub multi_scenario: Option<MultiScenarioSample>,
    /// The cold/warm store section (`None` when not requested).
    pub warm_store: Option<WarmStoreSample>,
    /// The telemetry overhead + phase-breakdown section (`None` when not
    /// requested).
    pub telemetry: Option<TelemetryData>,
}

/// The 4-D conv-like spec the accuracy proxy can score — the same shape
/// family as the search integration tests.
pub(crate) fn bench_scenario() -> (Arc<VarTable>, OperatorSpec) {
    let mut vars = VarTable::new();
    let n = vars.declare("N", VarKind::Primary);
    let cin = vars.declare("Cin", VarKind::Primary);
    let cout = vars.declare("Cout", VarKind::Primary);
    let h = vars.declare("H", VarKind::Primary);
    let w = vars.declare("W", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    vars.push_valuation(vec![(n, 4), (cin, 3), (cout, 4), (h, 8), (w, 8), (k, 3)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![
            Size::var(n),
            Size::var(cin),
            Size::var(h),
            Size::var(w),
        ]),
        TensorShape::new(vec![
            Size::var(n),
            Size::var(cout),
            Size::var(h),
            Size::var(w),
        ]),
    );
    (vars, spec)
}

/// The `[B, T, C] → [B, T, C]` sequence spec scored by the LM proxy
/// family — the second half of the multi-scenario section.
fn lm_bench_scenario() -> (Arc<VarTable>, OperatorSpec) {
    let mut vars = VarTable::new();
    let b = vars.declare("B", VarKind::Primary);
    let t = vars.declare("T", VarKind::Primary);
    let c = vars.declare("C", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    vars.push_valuation(vec![(b, 4), (t, 4), (c, 8), (k, 2)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![Size::var(b), Size::var(t), Size::var(c)]),
        TensorShape::new(vec![Size::var(b), Size::var(t), Size::var(c)]),
    );
    (vars, spec)
}

pub(crate) fn bench_proxy(proxy_steps: usize) -> ProxyConfig {
    ProxyConfig {
        train: TrainConfig {
            steps: proxy_steps,
            batch: 4,
            eval_batches: 1,
            ..TrainConfig::default()
        },
        ..ProxyConfig::default()
    }
}

fn timed_run(
    vars: &Arc<VarTable>,
    spec: &OperatorSpec,
    iterations: usize,
    proxy_steps: usize,
    eval_workers: usize,
) -> (PipelineSample, Vec<u64>, PhaseSample) {
    let proxy = bench_proxy(proxy_steps);
    let started = Instant::now();
    let report = SearchBuilder::new()
        .scenario("bench-conv", vars, spec)
        .mcts(MctsConfig {
            iterations,
            seed: 7,
            ..MctsConfig::default()
        })
        .proxy(proxy)
        .eval_workers(eval_workers)
        .run()
        .expect("bench search runs");
    let wall_secs = started.elapsed().as_secs_f64();
    let mut ids: Vec<u64> = report
        .candidates
        .iter()
        .map(|c| c.graph.content_hash())
        .collect();
    ids.sort_unstable();
    let candidates = report.candidates.len();
    let frac = |phase| syno_search::PhaseWall::fraction_of(phase, report.wall);
    let phases = PhaseSample {
        eval_workers,
        wall_secs,
        synth_frac: frac(report.phases.synth),
        eval_frac: frac(report.phases.eval),
        store_frac: frac(report.phases.store),
        tune_frac: frac(report.phases.tune),
        idle_frac: frac(report.phases.idle),
    };
    (
        PipelineSample {
            eval_workers,
            wall_secs,
            candidates,
            throughput: if wall_secs > 0.0 {
                candidates as f64 / wall_secs
            } else {
                0.0
            },
        },
        ids,
        phases,
    )
}

/// The vision + LM multi-scenario section: one run, two task families,
/// two scenario workers.
fn multi_scenario_sample(iterations: usize, proxy_steps: usize) -> MultiScenarioSample {
    let (conv_vars, conv_spec) = bench_scenario();
    let (lm_vars, lm_spec) = lm_bench_scenario();
    let started = Instant::now();
    let report = SearchBuilder::new()
        .scenario("bench-conv", &conv_vars, &conv_spec)
        .scenario("bench-lm", &lm_vars, &lm_spec)
        .mcts(MctsConfig {
            iterations,
            seed: 7,
            ..MctsConfig::default()
        })
        .proxy(bench_proxy(proxy_steps))
        .workers(2)
        .run()
        .expect("multi-scenario bench runs");
    let wall_secs = started.elapsed().as_secs_f64();
    let vision = report.candidates.iter().filter(|c| c.scenario == 0).count();
    let lm = report.candidates.iter().filter(|c| c.scenario == 1).count();
    MultiScenarioSample {
        wall_secs,
        vision_candidates: vision,
        lm_candidates: lm,
        throughput: if wall_secs > 0.0 {
            (vision + lm) as f64 / wall_secs
        } else {
            0.0
        },
    }
}

/// The cold/warm store section: journal a run, then replay it from disk.
fn warm_store_sample(iterations: usize, proxy_steps: usize) -> WarmStoreSample {
    let (vars, spec) = bench_scenario();
    let dir = std::env::temp_dir().join(format!("syno-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mcts = MctsConfig {
        iterations,
        seed: 7,
        ..MctsConfig::default()
    };

    let run = |label: &str| {
        let store = Arc::new(
            StoreBuilder::new(&dir)
                .open()
                .unwrap_or_else(|e| panic!("open bench store ({label}): {e}")),
        );
        let started = Instant::now();
        let run = SearchBuilder::new()
            .scenario("bench-conv", &vars, &spec)
            .mcts(mcts)
            .proxy(bench_proxy(proxy_steps))
            .store(Arc::clone(&store))
            .start()
            .expect("warm-store bench runs");
        let mut hits = 0usize;
        let mut trainings = 0usize;
        for event in run.events() {
            match event {
                SearchEvent::CacheHit { .. } => hits += 1,
                SearchEvent::ProxyScored { .. } => trainings += 1,
                _ => {}
            }
        }
        let report = run.join().expect("warm-store bench joins");
        let wall = started.elapsed().as_secs_f64();
        let mut ids: Vec<u64> = report
            .candidates
            .iter()
            .map(|c| c.graph.content_hash())
            .collect();
        ids.sort_unstable();
        (wall, hits, trainings, ids)
    };

    let (cold_wall, _, _, cold_ids) = run("cold");
    let (warm_wall, warm_hits, warm_trainings, warm_ids) = run("warm");
    let _ = std::fs::remove_dir_all(&dir);
    WarmStoreSample {
        cold_wall_secs: cold_wall,
        warm_wall_secs: warm_wall,
        cache_hits: warm_hits,
        warm_trainings,
        speedup: if warm_wall > 0.0 { cold_wall / warm_wall } else { 0.0 },
        identical_sets: cold_ids == warm_ids,
    }
}

/// The telemetry section: re-runs the serial bench with tracing + metrics
/// enabled (same seed), comparing wall clock and candidate sets against
/// the disabled serial sample, and — when `with_breakdown` — the
/// per-phase splits at `eval_workers` 1 and n.
fn telemetry_data(
    iterations: usize,
    proxy_steps: usize,
    eval_workers: usize,
    disabled: &PipelineSample,
    disabled_ids: &[u64],
    with_breakdown: bool,
) -> TelemetryData {
    let (vars, spec) = bench_scenario();
    syno_telemetry::reset();
    syno_telemetry::set_enabled(true);
    let (enabled, enabled_ids, serial_phases) =
        timed_run(&vars, &spec, iterations, proxy_steps, 1);
    let mut phase_breakdown = Vec::new();
    if with_breakdown {
        phase_breakdown.push(serial_phases);
        let (_, _, pooled_phases) = timed_run(&vars, &spec, iterations, proxy_steps, eval_workers);
        phase_breakdown.push(pooled_phases);
    }
    syno_telemetry::set_enabled(false);
    TelemetryData {
        disabled_wall_secs: disabled.wall_secs,
        enabled_wall_secs: enabled.wall_secs,
        overhead_frac: if disabled.wall_secs > 0.0 {
            enabled.wall_secs / disabled.wall_secs - 1.0
        } else {
            0.0
        },
        identical_sets: enabled_ids == disabled_ids,
        phase_breakdown,
    }
}

/// Times the bench spec serially and with `eval_workers` evaluator threads
/// (same seed), `iterations` MCTS iterations each, `proxy_steps` training
/// steps per candidate. `with_multi_scenario` / `with_warm_store` /
/// `with_telemetry` opt into the vision + LM, cold/warm store, and
/// telemetry-overhead sections individually — the determinism-only CI
/// step runs the warm-store and telemetry sections (both assert
/// contracts) but skips the unasserted multi-scenario timing;
/// `with_breakdown` additionally measures the per-phase splits (a timing,
/// so determinism-only runs skip it).
pub fn search_pipeline_data(
    iterations: usize,
    proxy_steps: usize,
    eval_workers: usize,
    with_multi_scenario: bool,
    with_warm_store: bool,
    with_telemetry: bool,
    with_breakdown: bool,
) -> SearchPipelineData {
    let (vars, spec) = bench_scenario();
    let (serial, serial_ids, _) = timed_run(&vars, &spec, iterations, proxy_steps, 1);
    let (pipelined, piped_ids, _) = timed_run(&vars, &spec, iterations, proxy_steps, eval_workers);
    let multi_scenario = with_multi_scenario.then(|| multi_scenario_sample(iterations, proxy_steps));
    let warm_store = with_warm_store.then(|| warm_store_sample(iterations, proxy_steps));
    let telemetry = with_telemetry.then(|| {
        telemetry_data(
            iterations,
            proxy_steps,
            eval_workers,
            &serial,
            &serial_ids,
            with_breakdown,
        )
    });
    SearchPipelineData {
        iterations,
        serial,
        pipelined,
        speedup: if pipelined.wall_secs > 0.0 {
            serial.wall_secs / pipelined.wall_secs
        } else {
            0.0
        },
        identical_sets: serial_ids == piped_ids,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        multi_scenario,
        warm_store,
        telemetry,
    }
}
