//! Search-throughput measurement: candidates/second of the single-scenario
//! evaluation pipeline, serial (`eval_workers(1)`) versus pipelined
//! (`eval_workers(n)`).
//!
//! This is the perf-trajectory probe for the system's hottest path — the
//! paper's search cost is dominated by evaluating complete candidates
//! (§7.2, ≈0.1 GPU-hours of proxy training each), which the reproduction
//! pipelines over evaluator workers. Both runs use the same seed, so the
//! determinism contract (identical candidate sets) is checked alongside
//! the timing. The `bench_search` binary prints the result and emits
//! `BENCH_search.json`.

use std::sync::Arc;
use std::time::Instant;
use syno_core::size::Size;
use syno_core::spec::{OperatorSpec, TensorShape};
use syno_core::var::{VarKind, VarTable};
use syno_nn::{ProxyConfig, TrainConfig};
use syno_search::{MctsConfig, SearchBuilder};

/// One timed pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineSample {
    /// `SearchBuilder::eval_workers` setting.
    pub eval_workers: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Fully evaluated candidates the run produced.
    pub candidates: usize,
    /// Candidates per second of wall clock.
    pub throughput: f64,
}

/// The serial-versus-pipelined comparison on the bench spec.
#[derive(Clone, Debug)]
pub struct SearchPipelineData {
    /// MCTS iterations per run.
    pub iterations: usize,
    /// The serial baseline.
    pub serial: PipelineSample,
    /// The pipelined run.
    pub pipelined: PipelineSample,
    /// Wall-clock speedup of the pipelined run over serial.
    pub speedup: f64,
    /// Whether both runs discovered the identical candidate set (keyed by
    /// content hash) — the determinism contract.
    pub identical_sets: bool,
    /// Hardware parallelism the measurement ran on; a speedup near 1.0 is
    /// expected when this is 1 regardless of `eval_workers`.
    pub available_parallelism: usize,
}

/// The 4-D conv-like spec the accuracy proxy can score — the same shape
/// family as the search integration tests.
fn bench_scenario() -> (Arc<VarTable>, OperatorSpec) {
    let mut vars = VarTable::new();
    let n = vars.declare("N", VarKind::Primary);
    let cin = vars.declare("Cin", VarKind::Primary);
    let cout = vars.declare("Cout", VarKind::Primary);
    let h = vars.declare("H", VarKind::Primary);
    let w = vars.declare("W", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    vars.push_valuation(vec![(n, 4), (cin, 3), (cout, 4), (h, 8), (w, 8), (k, 3)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![
            Size::var(n),
            Size::var(cin),
            Size::var(h),
            Size::var(w),
        ]),
        TensorShape::new(vec![
            Size::var(n),
            Size::var(cout),
            Size::var(h),
            Size::var(w),
        ]),
    );
    (vars, spec)
}

fn timed_run(
    vars: &Arc<VarTable>,
    spec: &OperatorSpec,
    iterations: usize,
    proxy_steps: usize,
    eval_workers: usize,
) -> (PipelineSample, Vec<u64>) {
    let proxy = ProxyConfig {
        train: TrainConfig {
            steps: proxy_steps,
            batch: 4,
            eval_batches: 1,
            ..TrainConfig::default()
        },
        ..ProxyConfig::default()
    };
    let started = Instant::now();
    let report = SearchBuilder::new()
        .scenario("bench-conv", vars, spec)
        .mcts(MctsConfig {
            iterations,
            seed: 7,
            ..MctsConfig::default()
        })
        .proxy(proxy)
        .eval_workers(eval_workers)
        .run()
        .expect("bench search runs");
    let wall_secs = started.elapsed().as_secs_f64();
    let mut ids: Vec<u64> = report
        .candidates
        .iter()
        .map(|c| c.graph.content_hash())
        .collect();
    ids.sort_unstable();
    let candidates = report.candidates.len();
    (
        PipelineSample {
            eval_workers,
            wall_secs,
            candidates,
            throughput: if wall_secs > 0.0 {
                candidates as f64 / wall_secs
            } else {
                0.0
            },
        },
        ids,
    )
}

/// Times the bench spec serially and with `eval_workers` evaluator threads
/// (same seed), `iterations` MCTS iterations each, `proxy_steps` training
/// steps per candidate.
pub fn search_pipeline_data(
    iterations: usize,
    proxy_steps: usize,
    eval_workers: usize,
) -> SearchPipelineData {
    let (vars, spec) = bench_scenario();
    let (serial, serial_ids) = timed_run(&vars, &spec, iterations, proxy_steps, 1);
    let (pipelined, piped_ids) = timed_run(&vars, &spec, iterations, proxy_steps, eval_workers);
    SearchPipelineData {
        iterations,
        serial,
        pipelined,
        speedup: if pipelined.wall_secs > 0.0 {
            serial.wall_secs / pipelined.wall_secs
        } else {
            0.0
        },
        identical_sets: serial_ids == piped_ids,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}
