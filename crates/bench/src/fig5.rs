//! Figure 5: end-to-end inference speedups of Syno-optimized models over
//! their baselines, per platform and compiler, normalized to the TVM
//! baseline as in the paper.

use syno_compiler::{CompilerKind, Device};
use syno_models::{model_latency, vision_backbones, Substitution};

/// One bar group of Fig. 5.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Model name.
    pub model: String,
    /// Device name.
    pub device: String,
    /// Compiler name.
    pub compiler: String,
    /// Baseline latency (seconds).
    pub baseline: f64,
    /// Best Syno substitution latency (seconds).
    pub syno: f64,
    /// Which operator won.
    pub winner: String,
}

impl Fig5Row {
    /// Syno speedup over the baseline under the same compiler.
    pub fn speedup(&self) -> f64 {
        self.baseline / self.syno
    }
}

/// Computes the Fig. 5 rows: every vision backbone × 3 devices × 2
/// compilers; Syno picks the faster of Operators 1 and 2 per configuration
/// (the paper searches per model; the reproduction selects between the two
/// published operators).
pub fn fig5_data() -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for backbone in vision_backbones() {
        for device in Device::all() {
            for compiler in [CompilerKind::Tvm, CompilerKind::TorchInductor] {
                let baseline =
                    model_latency(&backbone, Substitution::Baseline, &device, compiler);
                let op1 = model_latency(&backbone, Substitution::Operator1, &device, compiler);
                let op2 = model_latency(&backbone, Substitution::Operator2, &device, compiler);
                let (syno, winner) = if op1 <= op2 {
                    (op1, "op1")
                } else {
                    (op2, "op2")
                };
                rows.push(Fig5Row {
                    model: backbone.name.to_owned(),
                    device: device.name.to_owned(),
                    compiler: compiler.name().to_owned(),
                    baseline,
                    syno,
                    winner: winner.to_owned(),
                });
            }
        }
    }
    rows
}

/// Geometric-mean speedup for one device+compiler slice.
pub fn geomean_speedup(rows: &[Fig5Row], device: &str, compiler: &str) -> f64 {
    let slice: Vec<f64> = rows
        .iter()
        .filter(|r| r.device == device && r.compiler == compiler)
        .map(Fig5Row::speedup)
        .collect();
    if slice.is_empty() {
        return f64::NAN;
    }
    (slice.iter().map(|s| s.ln()).sum::<f64>() / slice.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_holds() {
        let rows = fig5_data();
        assert_eq!(rows.len(), 5 * 3 * 2);
        // The paper's headline: Syno speeds models up on average on every
        // platform with TVM.
        for device in ["mobile-cpu", "mobile-gpu", "a100"] {
            let g = geomean_speedup(&rows, device, "TVM");
            assert!(
                g > 1.0,
                "geomean TVM speedup on {device} must exceed 1: {g:.2}"
            );
        }
        // And classic ResNets gain more than the NAS-optimized
        // EfficientNetV2 (§9.2).
        let speedup_of = |model: &str| {
            rows.iter()
                .find(|r| r.model == model && r.device == "mobile-cpu" && r.compiler == "TVM")
                .map(Fig5Row::speedup)
                .expect("row exists")
        };
        assert!(speedup_of("ResNet-18") > speedup_of("EfficientNetV2-S"));
    }
}
