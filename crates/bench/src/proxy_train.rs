//! Train-step throughput of the execution engine — the `proxy_train`
//! section of `BENCH_search.json`.
//!
//! Candidate evaluation is dominated by proxy training (§7.2), and proxy
//! training is dominated by the tensor runtime's inner loops. This bench
//! trains the same conv student twice on the same task:
//!
//! * **compiled** — the stride-compiled einsum engine with tape/buffer
//!   reuse ([`Tape::new`](syno_tensor::Tape::new) + [`syno_nn::train_step_on`] in a reused-tape loop);
//! * **reference** — the pre-compilation engine kept for differential
//!   testing ([`Tape::new_reference`](syno_tensor::Tape::new_reference): naive per-element einsum, fresh
//!   allocations every op).
//!
//! Both runs must produce **bit-identical** final scores — the bench
//! doubles as a determinism probe (`scores_identical` gates in the CI
//! determinism mode). A second sub-section times the loop-nest kernel
//! engines on the lowered conv: stride-compiled [`Kernel::execute`](syno_ir::Kernel::execute) vs the
//! tree-walking [`Kernel::execute_reference`](syno_ir::Kernel::execute_reference), also bit-checked.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use syno_core::ops;
use syno_core::var::{VarKind, VarTable};
use syno_ir::lower_optimized;
use syno_nn::{
    accuracy_on, train_step_on, GlobalAvgPool, LinearLayer, Model, OperatorLayer, ReluLayer, Sgd,
    TrainConfig, VisionTask,
};
use syno_tensor::{init, ExecPolicy, Tape};

/// One engine's timing.
#[derive(Clone, Copy, Debug)]
pub struct EngineSample {
    /// Wall-clock seconds for the whole training run.
    pub wall_secs: f64,
    /// Train steps per second.
    pub steps_per_sec: f64,
    /// Final held-out accuracy bits (for the identity check).
    pub score_bits: u32,
}

/// The `proxy_train` section: compiled vs reference train-step throughput
/// plus the kernel-interpreter comparison.
#[derive(Clone, Copy, Debug)]
pub struct ProxyTrainData {
    /// Train steps per run.
    pub steps: usize,
    /// The stride-compiled engine.
    pub compiled: EngineSample,
    /// The naive reference engine (pre-PR behavior).
    pub reference: EngineSample,
    /// Train-step throughput speedup, compiled over reference.
    pub speedup: f64,
    /// Whether both engines produced bit-identical final scores — the
    /// bit-identity contract of the execution engine.
    pub scores_identical: bool,
    /// Wall-clock seconds for `kernel_iters` compiled kernel executions.
    pub kernel_compiled_secs: f64,
    /// Wall-clock seconds for `kernel_iters` reference-interpreter runs.
    pub kernel_reference_secs: f64,
    /// Kernel-engine speedup, compiled over reference interpreter.
    pub kernel_speedup: f64,
    /// Kernel executions timed per engine.
    pub kernel_iters: usize,
}

/// One exec-thread level of the `proxy_parallel` section.
#[derive(Clone, Copy, Debug)]
pub struct ParallelSample {
    /// `ExecPolicy::exec_threads` for this run (pinned reduce width).
    pub exec_threads: usize,
    /// The timing and final score bits.
    pub engine: EngineSample,
    /// Train-step throughput over the PR 5 serial engine.
    pub speedup_vs_serial: f64,
}

/// The `proxy_parallel` section: data-parallel train-step throughput at
/// 1/2/4 exec threads under the pinned reduction width, against the PR 5
/// serial engine (one thread, serial left-to-right accumulation).
///
/// The value contract rides along: `scores_invariant` is `true` iff every
/// thread level landed on bit-identical final scores — `exec_threads`
/// must never move a bit at fixed `reduce_width`. (The serial baseline
/// runs at width 1 and is *expected* to differ in low bits; it anchors
/// the throughput comparison, not the invariance check.)
#[derive(Clone, Debug)]
pub struct ProxyParallelData {
    /// Train steps per run.
    pub steps: usize,
    /// `ExecPolicy::serial()` — the exact PR 5 engine.
    pub serial: EngineSample,
    /// One entry per exec-thread level (1, 2, 4), pinned width.
    pub threads: Vec<ParallelSample>,
    /// Whether all thread levels produced bit-identical scores.
    pub scores_invariant: bool,
    /// Hardware threads the measurement ran on — speedups near 1.0 are
    /// expected when this is 1 regardless of `exec_threads`.
    pub available_parallelism: usize,
}

fn conv_graph() -> syno_core::graph::PGraph {
    let mut vars = VarTable::new();
    let n = vars.declare("N", VarKind::Primary);
    let cin = vars.declare("Cin", VarKind::Primary);
    let cout = vars.declare("Cout", VarKind::Primary);
    let h = vars.declare("H", VarKind::Primary);
    let w = vars.declare("W", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    vars.push_valuation(vec![(n, 8), (cin, 3), (cout, 4), (h, 8), (w, 8), (k, 3)]);
    let vars = vars.into_shared();
    ops::conv2d(&vars, n, cin, cout, h, w, k).expect("conv fixture builds")
}

fn student(seed: u64) -> Model {
    let graph = conv_graph();
    let layer = OperatorLayer::new(graph, 0).expect("conv layer realizes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = Model::new();
    model.push(Box::new(layer), &mut rng);
    model.push(Box::new(ReluLayer), &mut rng);
    model.push(Box::new(GlobalAvgPool), &mut rng);
    model.push(Box::new(LinearLayer::new(4, 4)), &mut rng);
    model
}

fn timed_train(tape: &mut Tape, steps: usize) -> EngineSample {
    let task = VisionTask::new(1234, 3, 8, 4);
    let config = TrainConfig {
        steps,
        batch: 8,
        eval_batches: 2,
        ..TrainConfig::default()
    };
    // Same init seed for both engines: identical models, identical task
    // stream, so the scores must match bit-for-bit.
    let mut model = student(99);
    let mut opt = Sgd::new(&model, config.lr, config.momentum, config.weight_decay);
    // Time the train steps only (the measured quantity is train-step
    // throughput); the held-out accuracy runs untimed afterwards, purely
    // for the bit-identity check.
    let started = Instant::now();
    for step in 0..config.steps {
        let (images, labels) = task.batch(step as u64, config.batch);
        train_step_on(tape, &mut model, &mut opt, &images, &labels);
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let mut correct_frac = 0.0;
    for i in 0..config.eval_batches {
        let (images, labels) = task.batch(u64::MAX / 2 - i as u64, config.batch);
        correct_frac += accuracy_on(tape, &model, &images, &labels);
    }
    let acc = correct_frac / config.eval_batches.max(1) as f32;
    EngineSample {
        wall_secs,
        steps_per_sec: if wall_secs > 0.0 {
            steps as f64 / wall_secs
        } else {
            0.0
        },
        score_bits: acc.to_bits(),
    }
}

/// Measures both engines for `steps` train steps and `kernel_iters` kernel
/// executions each.
pub fn proxy_train_data(steps: usize, kernel_iters: usize) -> ProxyTrainData {
    // Reference first, compiled second: if anything leaks between runs the
    // ordering disadvantages the compiled engine, not the claim.
    let reference = timed_train(&mut Tape::new_reference(), steps);
    let compiled = timed_train(&mut Tape::new(), steps);

    // Kernel-interpreter comparison on the lowered conv.
    let graph = conv_graph();
    let kernel = lower_optimized(&graph, 0).expect("conv lowers");
    let mut rng = StdRng::seed_from_u64(7);
    let input = init::uniform(&mut rng, &kernel.input_shape, -1.0, 1.0);
    let weights: Vec<_> = kernel
        .weight_shapes
        .iter()
        .map(|s| init::uniform(&mut rng, s, -1.0, 1.0))
        .collect();
    let started = Instant::now();
    let mut slow_out = None;
    for _ in 0..kernel_iters {
        slow_out = Some(kernel.execute_reference(&input, &weights));
    }
    let kernel_reference_secs = started.elapsed().as_secs_f64();
    let compiled_kernel = kernel.compile();
    let started = Instant::now();
    let mut fast_out = None;
    for _ in 0..kernel_iters {
        fast_out = Some(compiled_kernel.execute(&input, &weights));
    }
    let kernel_compiled_secs = started.elapsed().as_secs_f64();
    let kernels_identical = match (fast_out, slow_out) {
        (Some(f), Some(s)) => {
            f.shape() == s.shape()
                && f.data()
                    .iter()
                    .zip(s.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        }
        _ => kernel_iters == 0,
    };

    ProxyTrainData {
        steps,
        compiled,
        reference,
        speedup: if compiled.wall_secs > 0.0 {
            reference.wall_secs / compiled.wall_secs
        } else {
            0.0
        },
        scores_identical: compiled.score_bits == reference.score_bits && kernels_identical,
        kernel_compiled_secs,
        kernel_reference_secs,
        kernel_speedup: if kernel_compiled_secs > 0.0 {
            kernel_reference_secs / kernel_compiled_secs
        } else {
            0.0
        },
        kernel_iters,
    }
}

/// Measures the data-parallel engine at `exec_threads` ∈ {1, 2, 4} under
/// the pinned reduction width, plus the PR 5 serial baseline.
pub fn proxy_parallel_data(steps: usize) -> ProxyParallelData {
    let serial = timed_train(&mut Tape::with_policy(ExecPolicy::serial()), steps);
    let threads: Vec<ParallelSample> = [1usize, 2, 4]
        .into_iter()
        .map(|exec_threads| {
            let engine = timed_train(
                &mut Tape::with_policy(ExecPolicy::with_threads(exec_threads)),
                steps,
            );
            ParallelSample {
                exec_threads,
                engine,
                speedup_vs_serial: if engine.wall_secs > 0.0 {
                    serial.wall_secs / engine.wall_secs
                } else {
                    0.0
                },
            }
        })
        .collect();
    let scores_invariant = threads
        .iter()
        .all(|t| t.engine.score_bits == threads[0].engine.score_bits);
    ProxyParallelData {
        steps,
        serial,
        threads,
        scores_invariant,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_bitwise() {
        let data = proxy_train_data(3, 2);
        assert!(data.scores_identical, "engines diverged");
        assert!(data.compiled.steps_per_sec > 0.0);
        assert!(data.reference.steps_per_sec > 0.0);
    }

    #[test]
    fn exec_threads_never_move_a_score_bit() {
        let data = proxy_parallel_data(3);
        assert!(data.scores_invariant, "thread count moved a score bit");
        assert_eq!(data.threads.len(), 3);
        assert!(data.threads.iter().all(|t| t.engine.steps_per_sec > 0.0));
    }
}
