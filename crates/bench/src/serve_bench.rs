//! Serving-layer throughput: per-tenant candidates/second through the
//! `syno-serve` daemon at 1, 2 and 4 concurrent sessions against one
//! shared eval pool, compared to the in-process [`SearchBuilder`]
//! baseline on the same spec.
//!
//! Each daemon tenant searches the vision bench spec with a distinct MCTS
//! seed (so the sessions do real, non-overlapping work — no store is
//! attached, so nothing is served from cache) while the daemon fans every
//! candidate into its shared worker pool. The interesting numbers are how
//! the per-tenant rate degrades as sessions contend for the pool, and how
//! close the single-session daemon rate sits to the in-process baseline
//! (the wire + session-manager overhead). The `bench_search` binary emits
//! this as the `serve` section of `BENCH_search.json`.

use std::time::Instant;
use syno_core::codec::encode_spec;
use syno_search::{MctsConfig, SearchBuilder};
use syno_serve::{Daemon, SearchRequest, ServeConfig, SessionMessage, SynoClient};

use crate::search_pipeline::{bench_proxy, bench_scenario};

/// One fan-out level: `sessions` concurrent tenants through one daemon
/// (or the in-process baseline when measured without a daemon).
#[derive(Clone, Copy, Debug)]
pub struct ServeSample {
    /// Concurrent sessions at this level.
    pub sessions: usize,
    /// Wall-clock seconds from first submit to last `SearchDone`.
    pub wall_secs: f64,
    /// Fully evaluated candidates across all sessions.
    pub candidates: usize,
    /// Candidates per second *per tenant*: `candidates / sessions /
    /// wall_secs`.
    pub per_tenant_throughput: f64,
}

/// The serving-layer section: in-process baseline plus the 1/2/4-session
/// daemon fan-out.
#[derive(Clone, Debug)]
pub struct ServeData {
    /// MCTS iterations per session.
    pub iterations: usize,
    /// Shared eval-pool width of the daemon (and `eval_workers` of the
    /// in-process baseline).
    pub eval_workers: usize,
    /// The in-process `SearchBuilder` run — no daemon, no wire.
    pub baseline: ServeSample,
    /// Daemon runs at 1, 2 and 4 concurrent sessions.
    pub fanout: Vec<ServeSample>,
}

fn sample(sessions: usize, wall_secs: f64, candidates: usize) -> ServeSample {
    ServeSample {
        sessions,
        wall_secs,
        candidates,
        per_tenant_throughput: if wall_secs > 0.0 {
            candidates as f64 / sessions as f64 / wall_secs
        } else {
            0.0
        },
    }
}

/// The in-process baseline: the identical search (same spec, seed, proxy
/// config) driven directly through [`SearchBuilder`].
fn baseline_run(iterations: usize, proxy_steps: usize, eval_workers: usize) -> ServeSample {
    let (vars, spec) = bench_scenario();
    let started = Instant::now();
    let report = SearchBuilder::new()
        .scenario("serve-baseline", &vars, &spec)
        .mcts(MctsConfig {
            iterations,
            seed: 40,
            ..MctsConfig::default()
        })
        .proxy(bench_proxy(proxy_steps))
        .workers(1)
        .eval_workers(eval_workers)
        .run()
        .expect("baseline search runs");
    sample(1, started.elapsed().as_secs_f64(), report.candidates.len())
}

/// One daemon fan-out level: `sessions` tenants, each its own client
/// connection and MCTS seed, racing through one shared eval pool.
fn fanout_run(
    sessions: usize,
    iterations: usize,
    proxy_steps: usize,
    eval_workers: usize,
) -> ServeSample {
    let (vars, spec) = bench_scenario();
    let spec_bytes = encode_spec(&vars, &spec);
    let config = ServeConfig {
        eval_workers,
        max_sessions: sessions.max(1),
        max_sessions_per_tenant: 1,
        ..ServeConfig::default()
    };
    let daemon = Daemon::bind("127.0.0.1:0", None, config).expect("bind bench daemon");
    let (handle, daemon_thread) = daemon.spawn();

    let started = Instant::now();
    let candidates: usize = std::thread::scope(|scope| {
        let mut tenants = Vec::new();
        for tenant in 0..sessions {
            let addr = handle.addr().to_string();
            let spec_bytes = spec_bytes.clone();
            tenants.push(scope.spawn(move || {
                let client = SynoClient::connect(&addr, &format!("bench-{tenant}"))
                    .expect("connect bench tenant");
                let request = SearchRequest {
                    label: format!("serve-bench-{tenant}"),
                    spec: spec_bytes,
                    family: "vision".into(),
                    iterations: iterations as u32,
                    seed: 40 + tenant as u64,
                    progress_every: u64::MAX,
                    max_steps: 0,
                    // Mirror `bench_proxy(proxy_steps)` via the
                    // request-level overrides so daemon sessions train
                    // exactly like the in-process baseline.
                    train_steps: proxy_steps as u32,
                    train_batch: 4,
                    eval_batches: 1,
                    resume: false,
                };
                let session = client.submit(&request).expect("bench session admitted");
                let mut found = 0usize;
                for message in session.messages() {
                    match message {
                        SessionMessage::Done { candidates, .. } => found = candidates as usize,
                        SessionMessage::Error(error) => panic!("bench session failed: {error}"),
                        SessionMessage::Lost { session, .. } => {
                            panic!("bench session {session} lost its connection")
                        }
                        SessionMessage::Event(_) => {}
                    }
                }
                found
            }));
        }
        tenants
            .into_iter()
            .map(|t| t.join().expect("bench tenant thread"))
            .sum()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    handle.shutdown();
    let _ = daemon_thread.join();
    sample(sessions, wall_secs, candidates)
}

/// Measures the serving layer: the in-process baseline, then the daemon
/// at 1, 2 and 4 concurrent sessions over one shared `eval_workers`-wide
/// pool. Each daemon session uses the request-level proxy override so the
/// config matches the baseline exactly.
pub fn serve_data(iterations: usize, proxy_steps: usize, eval_workers: usize) -> ServeData {
    let baseline = baseline_run(iterations, proxy_steps, eval_workers);
    let fanout = [1usize, 2, 4]
        .into_iter()
        .map(|sessions| fanout_run(sessions, iterations, proxy_steps, eval_workers))
        .collect();
    ServeData {
        iterations,
        eval_workers,
        baseline,
        fanout,
    }
}

/// One side of the coalescing comparison: total wall clock, proxy
/// trainings actually executed, and candidates produced.
#[derive(Clone, Copy, Debug)]
pub struct CoalesceSample {
    /// Wall-clock seconds for the whole side.
    pub wall_secs: f64,
    /// Proxy trainings executed (`syno_search_proxy_train_total` delta).
    pub trainings: u64,
    /// Fully evaluated candidates across all sessions.
    pub candidates: usize,
}

/// The in-flight-coalescing section: two tenants racing the *same* spec
/// and seed through one storeless daemon, against the serial cost of
/// running that search twice in-process. With the daemon's shared
/// [`CoalesceTable`](syno_search::CoalesceTable), the concurrent side
/// should train each candidate once (`coalesced.trainings ≈
/// serial.trainings / 2`) while both sessions still stream full event
/// traces.
#[derive(Clone, Debug)]
pub struct CoalesceData {
    /// MCTS iterations per session.
    pub iterations: usize,
    /// Shared eval-pool width of the daemon.
    pub eval_workers: usize,
    /// Two identical searches run back-to-back in-process (pays twice).
    pub serial: CoalesceSample,
    /// Two tenants submitting the identical search concurrently through
    /// one daemon (pays once per candidate).
    pub coalesced: CoalesceSample,
}

fn proxy_trainings() -> u64 {
    syno_telemetry::counter!("syno_search_proxy_train_total").get()
}

/// Runs the identical `(spec, seed)` search twice sequentially
/// in-process — the cost two tenants would pay without coalescing.
fn coalesce_serial(iterations: usize, proxy_steps: usize, eval_workers: usize) -> CoalesceSample {
    let (vars, spec) = bench_scenario();
    let before = proxy_trainings();
    let started = Instant::now();
    let mut candidates = 0usize;
    for _ in 0..2 {
        let report = SearchBuilder::new()
            .scenario("coalesce-serial", &vars, &spec)
            .mcts(MctsConfig {
                iterations,
                seed: 40,
                ..MctsConfig::default()
            })
            .proxy(bench_proxy(proxy_steps))
            .workers(1)
            .eval_workers(eval_workers)
            .run()
            .expect("serial search runs");
        candidates += report.candidates.len();
    }
    CoalesceSample {
        wall_secs: started.elapsed().as_secs_f64(),
        trainings: proxy_trainings() - before,
        candidates,
    }
}

/// Two tenants, one daemon, the *same* request (label, spec, seed) —
/// every candidate discovery races through the daemon's coalescing
/// table, so each trains exactly once. Both sessions are admitted before
/// either stream is consumed, so the table cannot go idle (and drop its
/// memos) mid-comparison.
fn coalesce_concurrent(
    iterations: usize,
    proxy_steps: usize,
    eval_workers: usize,
) -> CoalesceSample {
    let (vars, spec) = bench_scenario();
    let spec_bytes = encode_spec(&vars, &spec);
    let config = ServeConfig {
        eval_workers,
        max_sessions: 2,
        max_sessions_per_tenant: 1,
        ..ServeConfig::default()
    };
    let daemon = Daemon::bind("127.0.0.1:0", None, config).expect("bind coalesce daemon");
    let (handle, daemon_thread) = daemon.spawn();

    let request = SearchRequest {
        label: "coalesce-bench".into(),
        spec: spec_bytes,
        family: "vision".into(),
        iterations: iterations as u32,
        seed: 40,
        progress_every: u64::MAX,
        max_steps: 0,
        train_steps: proxy_steps as u32,
        train_batch: 4,
        eval_batches: 1,
        resume: false,
    };
    fn consume(session: syno_serve::client::ClientSession<'_>) -> usize {
        let mut found = 0usize;
        for message in session.messages() {
            match message {
                SessionMessage::Done { candidates, .. } => found = candidates as usize,
                SessionMessage::Error(error) => panic!("coalesce session failed: {error}"),
                SessionMessage::Lost { session, .. } => {
                    panic!("coalesce session {session} lost its connection")
                }
                SessionMessage::Event(_) => {}
            }
        }
        found
    }

    let before = proxy_trainings();
    let started = Instant::now();
    let client_a =
        SynoClient::connect(handle.addr(), "coalesce-a").expect("connect coalesce tenant a");
    let client_b =
        SynoClient::connect(handle.addr(), "coalesce-b").expect("connect coalesce tenant b");
    let session_a = client_a.submit(&request).expect("coalesce session a admitted");
    let session_b = client_b.submit(&request).expect("coalesce session b admitted");
    let candidates: usize = std::thread::scope(|scope| {
        let ta = scope.spawn(move || consume(session_a));
        let tb = scope.spawn(move || consume(session_b));
        ta.join().expect("coalesce tenant a thread") + tb.join().expect("coalesce tenant b thread")
    });
    let wall_secs = started.elapsed().as_secs_f64();

    drop(client_a);
    drop(client_b);
    handle.shutdown();
    let _ = daemon_thread.join();
    CoalesceSample {
        wall_secs,
        trainings: proxy_trainings() - before,
        candidates,
    }
}

/// Measures in-flight training coalescing. Telemetry counters are the
/// measurement here, so the process-global registry is enabled for the
/// duration and restored afterwards.
pub fn coalesce_data(iterations: usize, proxy_steps: usize, eval_workers: usize) -> CoalesceData {
    let was_enabled = syno_telemetry::enabled();
    syno_telemetry::set_enabled(true);
    let serial = coalesce_serial(iterations, proxy_steps, eval_workers);
    let coalesced = coalesce_concurrent(iterations, proxy_steps, eval_workers);
    syno_telemetry::set_enabled(was_enabled);
    CoalesceData {
        iterations,
        eval_workers,
        serial,
        coalesced,
    }
}
