//! # syno-bench — regenerating every table and figure of the evaluation
//!
//! Each `figN_*` function computes the data behind one figure of §9; the
//! `src/bin/*` binaries print them as tables and the Criterion benches
//! exercise the same paths. [`search_pipeline`], [`proxy_train`] and
//! [`serve_bench`] are the odd ones out: repo-perf probes (serial vs
//! pipelined candidate evaluation; stride-compiled vs reference execution
//! engine; daemon fan-out per-tenant throughput — the `bench_search`
//! binary / `BENCH_search.json` CI artifact) rather than paper figures. Absolute latencies come from the
//! `syno-compiler` machine models, accuracies from the `syno-nn` proxies —
//! see EXPERIMENTS.md for the paper-vs-measured comparison.

#![warn(missing_docs)]

pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod proxy_train;
pub mod search_pipeline;
pub mod serve_bench;
pub mod store_sharded;
pub mod table3;

pub use fig10::{fig10_data, Fig10Data};
pub use fig5::{fig5_data, Fig5Row};
pub use fig6::{fig6_data, Fig6Point};
pub use fig8::{fig8_data, Fig8Row};
pub use fig9::{fig9_data, Fig9Row};
pub use proxy_train::{proxy_train_data, EngineSample, ProxyTrainData};
pub use search_pipeline::{search_pipeline_data, PipelineSample, SearchPipelineData};
pub use serve_bench::{coalesce_data, serve_data, CoalesceData, CoalesceSample, ServeData, ServeSample};
pub use store_sharded::{store_sharded_data, StoreShardedData, TwoWriterPass};
pub use table3::{ablation_shape_distance, table3_data, SdAblation, Table3Row};
