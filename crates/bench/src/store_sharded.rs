//! Sharded-repository probe: multiple OS-process writers appending to one
//! repository directory through their own journal shards
//! (`StoreBuilder::writer`), then fan-in [`compact`](Store::compact) and a
//! deterministic `derive_union` over the per-run candidate sets.
//!
//! Two consumers share this module:
//!
//! * the `bench_search` binary's `store_sharded` section — wall clock of
//!   two *concurrent* writer processes vs the same two searches run by
//!   one writer sequentially;
//! * the `multi_writer_smoke` binary — the CI gating step: zero lost
//!   records after fan-in compaction and byte-stable `derive_union`
//!   output across repeat runs.
//!
//! Both binaries re-exec themselves as the writer children: a process
//! whose environment carries [`ENV_WRITER`] runs one small search against
//! the shared repository dir and exits, so the concurrency under test is
//! real process-level concurrency over the shard files, not threads.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use std::time::Instant;

use syno_search::{MctsConfig, SearchBuilder};
use syno_store::{DeriveOp, Record, Store, StoreBuilder};

use crate::search_pipeline::{bench_proxy, bench_scenario};

/// Shard writer name for the re-exec'd child (empty = canonical segment).
pub const ENV_WRITER: &str = "SYNO_SHARD_WRITER";
const ENV_DIR: &str = "SYNO_SHARD_DIR";
const ENV_LABEL: &str = "SYNO_SHARD_LABEL";
const ENV_SEED: &str = "SYNO_SHARD_SEED";
const ENV_ITERS: &str = "SYNO_SHARD_ITERS";
const ENV_PROXY_STEPS: &str = "SYNO_SHARD_PROXY_STEPS";

/// Child mode: when [`ENV_WRITER`] is present, run one writer search
/// against the repository dir named by the companion env vars and return
/// `true` (the caller's `main` should then return immediately). Call this
/// first in any binary that spawns writers via [`spawn_writer`].
pub fn run_writer_from_env() -> bool {
    let Ok(writer) = std::env::var(ENV_WRITER) else {
        return false;
    };
    let dir = PathBuf::from(std::env::var(ENV_DIR).expect("writer child needs SYNO_SHARD_DIR"));
    let label = std::env::var(ENV_LABEL).expect("writer child needs SYNO_SHARD_LABEL");
    let seed: u64 = std::env::var(ENV_SEED)
        .expect("writer child needs SYNO_SHARD_SEED")
        .parse()
        .expect("SYNO_SHARD_SEED is a u64");
    let iterations: usize = std::env::var(ENV_ITERS)
        .expect("writer child needs SYNO_SHARD_ITERS")
        .parse()
        .expect("SYNO_SHARD_ITERS is a usize");
    let proxy_steps: usize = std::env::var(ENV_PROXY_STEPS)
        .expect("writer child needs SYNO_SHARD_PROXY_STEPS")
        .parse()
        .expect("SYNO_SHARD_PROXY_STEPS is a usize");
    run_writer(&dir, &writer, &label, seed, iterations, proxy_steps);
    true
}

/// One writer's workload: open the shared repository (through the named
/// shard, or the canonical segment when `writer` is empty) and run a
/// small deterministic search against it. The search journals its
/// candidates, scores, checkpoints, operation log, and the per-run
/// `CandidateSet` named after `label`.
pub fn run_writer(
    dir: &Path,
    writer: &str,
    label: &str,
    seed: u64,
    iterations: usize,
    proxy_steps: usize,
) {
    let mut builder = StoreBuilder::new(dir);
    if !writer.is_empty() {
        builder = builder.writer(writer);
    }
    let store = Arc::new(builder.open().expect("writer opens its shard"));
    let (vars, spec) = bench_scenario();
    let report = SearchBuilder::new()
        .scenario(label, &vars, &spec)
        .mcts(MctsConfig {
            iterations,
            seed,
            ..MctsConfig::default()
        })
        .proxy(bench_proxy(proxy_steps))
        .store_handle(store)
        .run()
        .expect("writer search runs");
    eprintln!(
        "writer '{}' ({label}): {} candidates",
        if writer.is_empty() { "journal" } else { writer },
        report.candidates.len()
    );
}

/// Re-execs the current binary as one writer child. The caller's `main`
/// must begin with [`run_writer_from_env`].
pub fn spawn_writer(
    dir: &Path,
    writer: &str,
    label: &str,
    seed: u64,
    iterations: usize,
    proxy_steps: usize,
) -> std::io::Result<std::process::Child> {
    let exe = std::env::current_exe()?;
    Command::new(exe)
        .env(ENV_WRITER, writer)
        .env(ENV_DIR, dir)
        .env(ENV_LABEL, label)
        .env(ENV_SEED, seed.to_string())
        .env(ENV_ITERS, iterations.to_string())
        .env(ENV_PROXY_STEPS, proxy_steps.to_string())
        .spawn()
}

/// The two scenarios every pass runs: distinct labels and seeds so the
/// shards hold overlapping-but-different candidate populations.
const SCENARIOS: [(&str, u64); 2] = [("shard-a", 11), ("shard-b", 23)];

/// Result of one concurrent two-writer pass over a fresh repository.
#[derive(Clone, Debug)]
pub struct TwoWriterPass {
    /// Wall-clock seconds from first spawn to last exit.
    pub wall_secs: f64,
    /// Candidates in the merged repository after both writers exited.
    pub candidates: u64,
    /// Journal segments the merged repository replayed (canonical + one
    /// shard per writer).
    pub segments: u64,
    /// Run-set member hashes whose graph is missing from the merged,
    /// compacted repository (must be 0 — the zero-lost-records contract).
    pub lost_records: usize,
    /// Members of `derive_union(shard-a, shard-b)` after compaction.
    pub union_len: usize,
    /// Stable digest of the union set.
    pub union_digest: u64,
    /// Canonical record encoding of the union set — byte-stable across
    /// repeat passes by the derive-determinism contract.
    pub union_bytes: Vec<u8>,
}

fn wait_ok(child: std::io::Result<std::process::Child>, what: &str) -> std::process::Child {
    child.unwrap_or_else(|e| panic!("spawn {what}: {e}"))
}

/// Spawns both writers concurrently against a fresh repository at `dir`,
/// waits for them, fan-in compacts, and checks the lost-record and
/// derive contracts. Panics when a writer process fails.
pub fn two_writer_pass(dir: &Path, iterations: usize, proxy_steps: usize) -> TwoWriterPass {
    let _ = std::fs::remove_dir_all(dir);
    let started = Instant::now();
    let children: Vec<_> = SCENARIOS
        .iter()
        .enumerate()
        .map(|(i, (label, seed))| {
            let writer = format!("w{}", i + 1);
            wait_ok(
                spawn_writer(dir, &writer, label, *seed, iterations, proxy_steps),
                label,
            )
        })
        .collect();
    for (mut child, (label, _)) in children.into_iter().zip(SCENARIOS) {
        let status = child.wait().expect("wait for writer");
        assert!(status.success(), "writer '{label}' failed: {status}");
    }
    let wall_secs = started.elapsed().as_secs_f64();

    // A fresh canonical-segment handle sees every shard's records.
    let store = Store::open(dir).expect("merged repository opens");
    let stats = store.stats();
    let segments = stats.segments;
    let run_sets: Vec<_> = SCENARIOS
        .iter()
        .map(|(label, _)| {
            store
                .candidate_set(label)
                .unwrap_or_else(|| panic!("run set '{label}' survives the merge"))
        })
        .collect();
    store.compact().expect("fan-in compaction succeeds");
    let lost_records = run_sets
        .iter()
        .flat_map(|set| set.hashes())
        .filter(|&&hash| store.graph(hash).is_err())
        .count();
    let union = store
        .derive(DeriveOp::Union, "shard-union", "shard-a", "shard-b")
        .expect("derive_union after compaction");
    TwoWriterPass {
        wall_secs,
        candidates: stats.candidates,
        segments,
        lost_records,
        union_len: union.len(),
        union_digest: union.digest(),
        union_bytes: Record::CandidateSet(union).encode_payload(),
    }
}

/// Runs the same two searches through one canonical writer, sequentially
/// (one child process at a time — the same per-process cost as the
/// concurrent pass, minus the concurrency). Returns (wall_secs,
/// candidates).
pub fn one_writer_baseline(dir: &Path, iterations: usize, proxy_steps: usize) -> (f64, u64) {
    let _ = std::fs::remove_dir_all(dir);
    let started = Instant::now();
    for (label, seed) in SCENARIOS {
        let mut child = wait_ok(
            spawn_writer(dir, "", label, seed, iterations, proxy_steps),
            label,
        );
        let status = child.wait().expect("wait for writer");
        assert!(status.success(), "baseline writer '{label}' failed: {status}");
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let store = Store::open(dir).expect("baseline repository opens");
    (wall_secs, store.stats().candidates)
}

/// The `store_sharded` bench section.
#[derive(Clone, Debug)]
pub struct StoreShardedData {
    /// MCTS iterations per writer.
    pub iterations: usize,
    /// Sequential single-writer wall clock for both searches.
    pub one_writer_secs: f64,
    /// Candidates the single-writer repository holds.
    pub one_writer_candidates: u64,
    /// Concurrent two-writer wall clock for the same searches.
    pub two_writer_secs: f64,
    /// Candidates the merged two-writer repository holds.
    pub two_writer_candidates: u64,
    /// one-writer / two-writer wall — >1 means concurrency won.
    pub speedup: f64,
    /// Segments the merged repository replayed before compaction.
    pub segments: u64,
    /// Whether no run-set member lost its graph across merge + compaction.
    pub zero_lost_records: bool,
    /// Whether two independent passes produced byte-identical
    /// `derive_union` records.
    pub derive_union_deterministic: bool,
    /// Members of the derived union set.
    pub union_len: usize,
}

/// Runs the full section: sequential baseline, then two independent
/// concurrent passes (the repeat pass checks derive byte-stability).
pub fn store_sharded_data(iterations: usize, proxy_steps: usize) -> StoreShardedData {
    let root = std::env::temp_dir().join(format!("syno-bench-sharded-{}", std::process::id()));
    let baseline_dir = root.join("one-writer");
    let (one_writer_secs, one_writer_candidates) =
        one_writer_baseline(&baseline_dir, iterations, proxy_steps);
    let first = two_writer_pass(&root.join("two-writers-1"), iterations, proxy_steps);
    let second = two_writer_pass(&root.join("two-writers-2"), iterations, proxy_steps);
    let data = StoreShardedData {
        iterations,
        one_writer_secs,
        one_writer_candidates,
        two_writer_secs: first.wall_secs,
        two_writer_candidates: first.candidates,
        speedup: one_writer_secs / first.wall_secs.max(1e-9),
        segments: first.segments,
        zero_lost_records: first.lost_records == 0 && second.lost_records == 0,
        derive_union_deterministic: first.union_bytes == second.union_bytes
            && first.union_digest == second.union_digest,
        union_len: first.union_len,
    };
    let _ = std::fs::remove_dir_all(&root);
    data
}
