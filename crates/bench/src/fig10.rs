//! Figure 10: GPT-2 language-modeling perplexity over training steps, the
//! baseline dense QKV projection versus the Syno grouped projection.

use std::sync::Arc;
use syno_compiler::{compile, CompilerKind, DType, Device, OperatorClass};
use syno_core::graph::PGraph;
use syno_core::primitive::Action;
use syno_core::size::Size;
use syno_core::spec::{OperatorSpec, TensorShape};
use syno_core::var::{VarKind, VarTable};
use syno_nn::{LmConfig, OperatorLayer, QkvProjection, TextTask, TinyGpt};

/// The Fig. 10 result: two perplexity curves plus the training-step
/// speedup of the substituted projection.
#[derive(Clone, Debug)]
pub struct Fig10Data {
    /// `(step, perplexity)` for the dense-QKV baseline.
    pub baseline_curve: Vec<(usize, f32)>,
    /// `(step, perplexity)` for the Syno grouped-QKV model.
    pub syno_curve: Vec<(usize, f32)>,
    /// Modeled speedup of the QKV projection at GPT-2 scale (A100, TVM).
    pub projection_speedup: f64,
}

/// Builds the grouped projection `[M, K] → [M, N]` with `g` groups as a
/// pGraph: the §9.3 discovery ("constructs the original projections by
/// groups, which allows the QKV matrices to learn from different features").
pub fn grouped_projection(m: u64, k: u64, n: u64, g: u64) -> Option<PGraph> {
    if !k.is_multiple_of(g) || !n.is_multiple_of(g) || k / g < 2 || n / g < 2 {
        return None;
    }
    let mut vars = VarTable::new();
    let vm = vars.declare("M", VarKind::Primary);
    let vk = vars.declare("K", VarKind::Primary);
    let vn = vars.declare("Nv", VarKind::Primary);
    let vg = vars.declare("g", VarKind::Coefficient);
    vars.push_valuation(vec![(vm, m), (vk, k), (vn, n), (vg, g)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![Size::var(vm), Size::var(vk)]),
        TensorShape::new(vec![Size::var(vm), Size::var(vn)]),
    );
    let g0 = PGraph::new(Arc::clone(&vars), spec);
    let j = g0.frontier()[1];
    let gsize = Size::var(vg);
    let kg = Size::var(vk).div(&gsize);

    let gr = g0.apply(&Action::Merge { coord: j, block: gsize }).ok()?;
    let q = gr.last_node()?.produced[0];
    let gamma = gr.last_node()?.produced[1];
    let gr = gr.apply(&Action::Reduce { domain: kg }).ok()?;
    let r = gr.last_node()?.produced[0];
    let gr = gr
        .apply(&Action::Share {
            coord: gamma,
            weight: 0,
        })
        .ok()?;
    let gamma_copy = gr.last_node()?.produced[0];
    let gr = gr.apply(&Action::Share { coord: r, weight: 0 }).ok()?;
    let r_copy = gr.last_node()?.produced[0];
    let gr = gr
        .apply(&Action::Split {
            lhs: r_copy,
            rhs: gamma_copy,
        })
        .ok()?;
    let gr = gr.apply(&Action::Share { coord: q, weight: 0 }).ok()?;
    let q_copy = gr.last_node()?.produced[0];
    let gr = gr.apply(&Action::Expand { coord: q_copy }).ok()?;
    debug_assert!(gr.is_complete(), "grouped projection:\n{}", gr.render());
    Some(gr)
}

/// Runs the Fig. 10 experiment.
pub fn fig10_data(steps: usize, quick: bool) -> Fig10Data {
    let config = LmConfig {
        vocab: 12,
        context: 6,
        dim: 16,
    };
    let task = TextTask::new(5, config.vocab, config.context);
    let batch = 32;
    let eval_every = (steps / 6).max(1);
    let lr = 0.2;

    let mut baseline = TinyGpt::new(config, QkvProjection::Dense, 7);
    let baseline_curve = baseline.train_curve(&task, steps, batch, lr, eval_every);

    // Grouped QKV at the proxy scale: [batch·context, dim] -> [.., 3·dim].
    let m = (batch * config.context) as u64;
    let proj = grouped_projection(m, config.dim as u64, 3 * config.dim as u64, 2)
        .expect("proxy projection builds");
    let layer = OperatorLayer::new(proj, 0).expect("projection realizable");
    let mut syno = TinyGpt::new(config, QkvProjection::Operator(layer), 7);
    let syno_curve = syno.train_curve(&task, steps, batch, lr, eval_every);

    // Projection speedup at GPT-2 scale (seq 1024, 768 -> 2304).
    let projection_speedup = if quick {
        1.0
    } else {
        let device = Device::server_gpu();
        let dense = grouped_projection(1024, 768, 2304, 1)
            .or_else(|| {
                // g = 1 is degenerate; use the plain matmul builder.
                let mut vars = VarTable::new();
                let vm = vars.declare("M", VarKind::Primary);
                let vk = vars.declare("K", VarKind::Primary);
                let vn = vars.declare("Nv", VarKind::Primary);
                vars.push_valuation(vec![(vm, 1024), (vk, 768), (vn, 2304)]);
                let vars = vars.into_shared();
                syno_core::ops::matmul(&vars, vm, vn, vk).ok()
            })
            .expect("dense projection");
        let grouped = grouped_projection(1024, 768, 2304, 4).expect("grouped projection");
        let dl = syno_compiler::profile_graph(&dense, 0, OperatorClass::Standard, "qkv")
            .map(|p| compile(&p, &device, CompilerKind::Tvm, DType::F32).latency)
            .unwrap_or(f64::NAN);
        let gl = syno_compiler::profile_graph(&grouped, 0, OperatorClass::Novel, "qkv-g")
            .map(|p| compile(&p, &device, CompilerKind::Tvm, DType::F32).latency)
            .unwrap_or(f64::NAN);
        dl / gl
    };

    Fig10Data {
        baseline_curve,
        syno_curve,
        projection_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_projection_builds_and_shrinks_params() {
        let dense_params = 768u128 * 2304;
        let g = grouped_projection(1024, 768, 2304, 4).unwrap();
        let params = syno_core::analysis::parameter_count(&g, 0).unwrap();
        assert_eq!(params, dense_params / 4);
    }

    #[test]
    fn fig10_curves_fall_and_syno_trains_at_least_as_well() {
        let data = fig10_data(240, true);
        let first = data.baseline_curve.first().unwrap().1;
        let last = data.baseline_curve.last().unwrap().1;
        assert!(last < first, "baseline PPL must fall: {first} -> {last}");
        let syno_last = data.syno_curve.last().unwrap().1;
        assert!(
            syno_last < first,
            "syno PPL must fall below the initial {first}: {syno_last}"
        );
        // The paper's grouped projection reaches *better* perplexity; allow
        // proxy noise but require the same ballpark or better.
        assert!(
            syno_last <= last * 1.25,
            "syno {syno_last} vs baseline {last}"
        );
    }
}
