//! Prints the Figure 9 table: layer-wise ResNet-34 comparison vs NAS-PTE.
use syno_bench::fig9::fig9_data;

fn main() {
    println!("# Figure 9 — layer-wise speedups over the baseline conv, ResNet-34");
    println!("{:<5} {:<11} {:<14} {:>8} {:>8} {:>8} {:>8} {:>8}  {:>10}", "layer", "device", "compiler", "pte1", "pte2", "pte3", "op1", "op2", "syno/pte");
    for r in fig9_data() {
        let s = |l: f64| r.baseline / l;
        println!(
            "{:<5} {:<11} {:<14} {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x  {:>9.2}x",
            r.layer, r.device, r.compiler,
            s(r.nas_pte[0]), s(r.nas_pte[1]), s(r.nas_pte[2]), s(r.syno[0]), s(r.syno[1]),
            r.syno_vs_naspte()
        );
    }
    println!("\n(paper: Syno best vs NAS-PTE best = 2.13x/1.68x/1.63x with TVM; 0.83x/0.84x/1.38x with TorchInductor)");
}
