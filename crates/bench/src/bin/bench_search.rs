//! Prints the serial-versus-pipelined search throughput comparison and
//! writes it to `BENCH_search.json` (the CI perf-trajectory artifact).
//!
//! Environment knobs (all optional): `BENCH_SEARCH_ITERATIONS` (default
//! 30), `BENCH_SEARCH_PROXY_STEPS` (default 6), `BENCH_SEARCH_WORKERS`
//! (default 4), `BENCH_SEARCH_OUT` (default `BENCH_search.json`).

use syno_bench::search_pipeline::{search_pipeline_data, SearchPipelineData};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn to_json(data: &SearchPipelineData) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"search_pipeline\",\n",
            "  \"spec\": \"conv [N,Cin,H,W] -> [N,Cout,H,W] (N=4, Cin=3, Cout=4, H=W=8, k=3)\",\n",
            "  \"iterations\": {},\n",
            "  \"available_parallelism\": {},\n",
            "  \"serial\": {{ \"eval_workers\": {}, \"wall_secs\": {:.4}, \"candidates\": {}, \"candidates_per_sec\": {:.4} }},\n",
            "  \"pipelined\": {{ \"eval_workers\": {}, \"wall_secs\": {:.4}, \"candidates\": {}, \"candidates_per_sec\": {:.4} }},\n",
            "  \"speedup\": {:.4},\n",
            "  \"identical_candidate_sets\": {}\n",
            "}}\n"
        ),
        data.iterations,
        data.available_parallelism,
        data.serial.eval_workers,
        data.serial.wall_secs,
        data.serial.candidates,
        data.serial.throughput,
        data.pipelined.eval_workers,
        data.pipelined.wall_secs,
        data.pipelined.candidates,
        data.pipelined.throughput,
        data.speedup,
        data.identical_sets,
    )
}

fn main() {
    let iterations = env_usize("BENCH_SEARCH_ITERATIONS", 30);
    let proxy_steps = env_usize("BENCH_SEARCH_PROXY_STEPS", 6);
    let workers = env_usize("BENCH_SEARCH_WORKERS", 4);
    let out = std::env::var("BENCH_SEARCH_OUT").unwrap_or_else(|_| "BENCH_search.json".into());

    eprintln!(
        "search pipeline bench: {iterations} iterations, {proxy_steps} proxy steps, \
         serial vs eval_workers({workers}) ..."
    );
    let data = search_pipeline_data(iterations, proxy_steps, workers);

    println!("mode        eval_workers  wall_secs  candidates  cand/sec");
    for sample in [&data.serial, &data.pipelined] {
        let label = if sample.eval_workers == 1 {
            "serial"
        } else {
            "pipelined"
        };
        println!(
            "{label:<11} {:>12}  {:>9.3}  {:>10}  {:>8.3}",
            sample.eval_workers, sample.wall_secs, sample.candidates, sample.throughput
        );
    }
    println!(
        "speedup: {:.2}x on {} hardware thread(s); identical candidate sets: {}",
        data.speedup, data.available_parallelism, data.identical_sets
    );
    assert!(
        data.identical_sets,
        "determinism contract violated: serial and pipelined candidate sets differ"
    );

    let json = to_json(&data);
    std::fs::write(&out, &json).expect("write bench json");
    eprintln!("wrote {out}");
}
