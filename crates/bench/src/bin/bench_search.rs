//! Prints the search-throughput comparison and writes it to
//! `BENCH_search.json` (the CI perf-trajectory artifact): serial vs
//! pipelined evaluation, the vision + LM multi-scenario section, the
//! cold/warm store section, the `serve` section (per-tenant
//! candidates/sec through the `syno-serve` daemon at 1/2/4 concurrent
//! sessions vs the in-process baseline), and the `store_sharded` section
//! (two concurrent writer *processes* sharing one repository dir through
//! journal shards vs one sequential writer, plus the zero-lost-records
//! and derive-determinism contracts after fan-in compaction).
//!
//! Environment knobs (all optional):
//!
//! * `BENCH_SEARCH_MODE` — `throughput` (all sections, never asserts; CI
//!   runs this non-gating), `determinism` (serial-vs-pipelined and
//!   cold-vs-warm candidate-set checks only — the unasserted
//!   multi-scenario and serve timings are skipped — exits nonzero on a
//!   violation; CI runs this as a gating step), or `full` (all sections
//!   *and* the assertions — the default for humans running it locally).
//! * `BENCH_SEARCH_ITERATIONS` (default 30), `BENCH_SEARCH_PROXY_STEPS`
//!   (default 6), `BENCH_SEARCH_WORKERS` (default 4), `BENCH_SEARCH_OUT`
//!   (default `BENCH_search.json`), `BENCH_PROXY_TRAIN_STEPS` (default
//!   30), `BENCH_PROXY_KERNEL_ITERS` (default 50), `BENCH_TRACE_OUT`
//!   (default `BENCH_trace.txt`), `BENCH_METRICS_OUT` (default
//!   `BENCH_metrics.prom`).
//!
//! Every mode also runs the telemetry section: the serial spec re-run
//! with tracing + metrics enabled, asserting (in the asserting modes)
//! that the discovered candidate set is bit-identical to the disabled
//! run and reporting the wall-clock overhead. The writing modes emit the
//! per-phase wall breakdown (`phase_breakdown` in the JSON) at
//! `eval_workers` 1 and n, plus the drained trace summary and the
//! metrics dump as separate artifacts.
//!
//! Every mode also runs the `proxy_train` section — single-thread
//! train-step throughput of the stride-compiled engine vs the naive
//! reference engine, plus the kernel-interpreter comparison. The two
//! engines must produce bit-identical scores; `determinism` (and `full`)
//! exit nonzero when they do not.
//!
//! Every mode also runs the `proxy_parallel` section — data-parallel
//! train-step throughput at `exec_threads` 1/2/4 under the pinned
//! reduction width, against the PR 5 serial engine — plus the
//! exec-thread invariance probe: the same search at 1/2/4 exec threads
//! must discover bit-identical candidate sets. The asserting modes exit
//! nonzero when a thread count moves a score bit or a candidate set.

use syno_bench::proxy_train::{
    proxy_parallel_data, proxy_train_data, ProxyParallelData, ProxyTrainData,
};
use syno_bench::search_pipeline::{
    exec_thread_invariance, search_pipeline_data, ExecInvarianceData, PhaseSample,
    SearchPipelineData, TelemetryData,
};
use syno_bench::serve_bench::{coalesce_data, serve_data, CoalesceData, ServeData, ServeSample};
use syno_bench::store_sharded::{run_writer_from_env, store_sharded_data, StoreShardedData};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn proxy_train_json(data: &ProxyTrainData) -> String {
    format!(
        concat!(
            ",\n  \"proxy_train\": {{ ",
            "\"spec\": \"conv student [N=8, Cin=3, Cout=4, H=W=8, k=3], batch 8\", ",
            "\"steps\": {}, ",
            "\"compiled\": {{ \"wall_secs\": {:.4}, \"steps_per_sec\": {:.4} }}, ",
            "\"reference\": {{ \"wall_secs\": {:.4}, \"steps_per_sec\": {:.4} }}, ",
            "\"speedup\": {:.4}, \"scores_identical\": {}, ",
            "\"kernel\": {{ \"iters\": {}, \"compiled_secs\": {:.4}, ",
            "\"reference_secs\": {:.4}, \"speedup\": {:.4} }} }}"
        ),
        data.steps,
        data.compiled.wall_secs,
        data.compiled.steps_per_sec,
        data.reference.wall_secs,
        data.reference.steps_per_sec,
        data.speedup,
        data.scores_identical,
        data.kernel_iters,
        data.kernel_compiled_secs,
        data.kernel_reference_secs,
        data.kernel_speedup,
    )
}

fn proxy_parallel_json(data: &ProxyParallelData, invariance: &ExecInvarianceData) -> String {
    let threads: Vec<String> = data
        .threads
        .iter()
        .map(|t| {
            format!(
                concat!(
                    "{{ \"exec_threads\": {}, \"wall_secs\": {:.4}, ",
                    "\"steps_per_sec\": {:.4}, \"speedup_vs_serial\": {:.4} }}"
                ),
                t.exec_threads, t.engine.wall_secs, t.engine.steps_per_sec, t.speedup_vs_serial,
            )
        })
        .collect();
    format!(
        concat!(
            ",\n  \"proxy_parallel\": {{ ",
            "\"spec\": \"conv student [N=8, Cin=3, Cout=4, H=W=8, k=3], batch 8\", ",
            "\"steps\": {}, \"available_parallelism\": {}, ",
            "\"serial\": {{ \"wall_secs\": {:.4}, \"steps_per_sec\": {:.4} }}, ",
            "\"threads\": [{}], ",
            "\"scores_invariant\": {}, \"candidate_sets_identical\": {} }}"
        ),
        data.steps,
        data.available_parallelism,
        data.serial.wall_secs,
        data.serial.steps_per_sec,
        threads.join(", "),
        data.scores_invariant,
        invariance.identical_candidate_sets,
    )
}

fn serve_sample_json(sample: &ServeSample) -> String {
    format!(
        concat!(
            "{{ \"sessions\": {}, \"wall_secs\": {:.4}, \"candidates\": {}, ",
            "\"per_tenant_candidates_per_sec\": {:.4} }}"
        ),
        sample.sessions, sample.wall_secs, sample.candidates, sample.per_tenant_throughput,
    )
}

fn serve_json(data: &ServeData) -> String {
    let fanout: Vec<String> = data.fanout.iter().map(serve_sample_json).collect();
    format!(
        concat!(
            ",\n  \"serve\": {{ \"iterations\": {}, \"eval_workers\": {}, ",
            "\"in_process_baseline\": {}, \"fanout\": [{}] }}"
        ),
        data.iterations,
        data.eval_workers,
        serve_sample_json(&data.baseline),
        fanout.join(", "),
    )
}

fn coalesce_json(data: &CoalesceData) -> String {
    let ratio = if data.serial.trainings > 0 {
        data.coalesced.trainings as f64 / data.serial.trainings as f64
    } else {
        0.0
    };
    let speedup = if data.coalesced.wall_secs > 0.0 {
        data.serial.wall_secs / data.coalesced.wall_secs
    } else {
        0.0
    };
    format!(
        concat!(
            ",\n  \"serve_coalesce\": {{ \"iterations\": {}, \"eval_workers\": {}, ",
            "\"serial\": {{ \"wall_secs\": {:.4}, \"trainings\": {}, \"candidates\": {} }}, ",
            "\"coalesced\": {{ \"wall_secs\": {:.4}, \"trainings\": {}, \"candidates\": {} }}, ",
            "\"training_ratio\": {:.4}, \"speedup\": {:.4} }}"
        ),
        data.iterations,
        data.eval_workers,
        data.serial.wall_secs,
        data.serial.trainings,
        data.serial.candidates,
        data.coalesced.wall_secs,
        data.coalesced.trainings,
        data.coalesced.candidates,
        ratio,
        speedup,
    )
}

fn phase_sample_json(sample: &PhaseSample) -> String {
    format!(
        concat!(
            "{{ \"eval_workers\": {}, \"wall_secs\": {:.4}, \"synth_frac\": {:.4}, ",
            "\"proxy_frac\": {:.4}, \"store_frac\": {:.4}, \"tune_frac\": {:.4}, ",
            "\"idle_frac\": {:.4} }}"
        ),
        sample.eval_workers,
        sample.wall_secs,
        sample.synth_frac,
        sample.eval_frac,
        sample.store_frac,
        sample.tune_frac,
        sample.idle_frac,
    )
}

fn telemetry_json(data: &TelemetryData) -> String {
    let breakdown: Vec<String> = data.phase_breakdown.iter().map(phase_sample_json).collect();
    format!(
        concat!(
            ",\n  \"telemetry\": {{ \"disabled_wall_secs\": {:.4}, ",
            "\"enabled_wall_secs\": {:.4}, \"overhead_frac\": {:.4}, ",
            "\"identical_candidate_sets\": {} }},\n",
            "  \"phase_breakdown\": [{}]"
        ),
        data.disabled_wall_secs,
        data.enabled_wall_secs,
        data.overhead_frac,
        data.identical_sets,
        breakdown.join(", "),
    )
}

fn store_sharded_json(data: &StoreShardedData) -> String {
    format!(
        concat!(
            ",\n  \"store_sharded\": {{ \"iterations\": {}, ",
            "\"one_writer\": {{ \"wall_secs\": {:.4}, \"candidates\": {} }}, ",
            "\"two_writers\": {{ \"wall_secs\": {:.4}, \"candidates\": {} }}, ",
            "\"speedup\": {:.4}, \"segments\": {}, \"zero_lost_records\": {}, ",
            "\"derive_union_deterministic\": {}, \"union_len\": {} }}"
        ),
        data.iterations,
        data.one_writer_secs,
        data.one_writer_candidates,
        data.two_writer_secs,
        data.two_writer_candidates,
        data.speedup,
        data.segments,
        data.zero_lost_records,
        data.derive_union_deterministic,
        data.union_len,
    )
}

fn to_json(
    data: &SearchPipelineData,
    proxy: &ProxyTrainData,
    parallel: &ProxyParallelData,
    invariance: &ExecInvarianceData,
    serve: Option<&ServeData>,
    coalesce: Option<&CoalesceData>,
    sharded: Option<&StoreShardedData>,
) -> String {
    let mut out = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"search_pipeline\",\n",
            "  \"spec\": \"conv [N,Cin,H,W] -> [N,Cout,H,W] (N=4, Cin=3, Cout=4, H=W=8, k=3)\",\n",
            "  \"iterations\": {},\n",
            "  \"available_parallelism\": {},\n",
            "  \"serial\": {{ \"eval_workers\": {}, \"wall_secs\": {:.4}, \"candidates\": {}, \"candidates_per_sec\": {:.4} }},\n",
            "  \"pipelined\": {{ \"eval_workers\": {}, \"wall_secs\": {:.4}, \"candidates\": {}, \"candidates_per_sec\": {:.4} }},\n",
            "  \"speedup\": {:.4},\n",
            "  \"identical_candidate_sets\": {}",
        ),
        data.iterations,
        data.available_parallelism,
        data.serial.eval_workers,
        data.serial.wall_secs,
        data.serial.candidates,
        data.serial.throughput,
        data.pipelined.eval_workers,
        data.pipelined.wall_secs,
        data.pipelined.candidates,
        data.pipelined.throughput,
        data.speedup,
        data.identical_sets,
    );
    if let Some(multi) = &data.multi_scenario {
        out.push_str(&format!(
            concat!(
                ",\n  \"multi_scenario\": {{ \"spec_lm\": \"[B,T,C] -> [B,T,C] (B=4, T=4, C=8, k=2)\", ",
                "\"wall_secs\": {:.4}, \"vision_candidates\": {}, \"lm_candidates\": {}, ",
                "\"candidates_per_sec\": {:.4} }}"
            ),
            multi.wall_secs, multi.vision_candidates, multi.lm_candidates, multi.throughput,
        ));
    }
    if let Some(warm) = &data.warm_store {
        out.push_str(&format!(
            concat!(
                ",\n  \"warm_store\": {{ \"cold_wall_secs\": {:.4}, \"warm_wall_secs\": {:.4}, ",
                "\"cache_hits\": {}, \"warm_trainings\": {}, \"speedup\": {:.4}, ",
                "\"identical_candidate_sets\": {} }}"
            ),
            warm.cold_wall_secs,
            warm.warm_wall_secs,
            warm.cache_hits,
            warm.warm_trainings,
            warm.speedup,
            warm.identical_sets,
        ));
    }
    if let Some(serve) = serve {
        out.push_str(&serve_json(serve));
    }
    if let Some(coalesce) = coalesce {
        out.push_str(&coalesce_json(coalesce));
    }
    if let Some(sharded) = sharded {
        out.push_str(&store_sharded_json(sharded));
    }
    if let Some(telemetry) = &data.telemetry {
        out.push_str(&telemetry_json(telemetry));
    }
    out.push_str(&proxy_train_json(proxy));
    out.push_str(&proxy_parallel_json(parallel, invariance));
    out.push_str("\n}\n");
    out
}

fn main() {
    // Child mode: the store_sharded section re-execs this binary as its
    // concurrent writer processes.
    if run_writer_from_env() {
        return;
    }
    let mode = std::env::var("BENCH_SEARCH_MODE").unwrap_or_else(|_| "full".into());
    // (with_multi_scenario, with_warm_store, with_serve, with_breakdown,
    //  asserting, write_json); the telemetry-overhead section always runs —
    // determinism mode asserts its identical-candidate-sets contract, the
    // writing modes report the overhead.
    let (with_multi, with_warm, with_serve, with_breakdown, asserting, write_json) =
        match mode.as_str() {
            "throughput" => (true, true, true, true, false, true),
            "determinism" => (false, true, false, false, true, false),
            "full" => (true, true, true, true, true, true),
            other => {
                eprintln!("unknown BENCH_SEARCH_MODE '{other}' (throughput|determinism|full)");
                std::process::exit(2);
            }
        };
    let iterations = env_usize("BENCH_SEARCH_ITERATIONS", 30);
    let proxy_steps = env_usize("BENCH_SEARCH_PROXY_STEPS", 6);
    let workers = env_usize("BENCH_SEARCH_WORKERS", 4);
    let train_steps = env_usize("BENCH_PROXY_TRAIN_STEPS", 30);
    let kernel_iters = env_usize("BENCH_PROXY_KERNEL_ITERS", 50);
    let out = std::env::var("BENCH_SEARCH_OUT").unwrap_or_else(|_| "BENCH_search.json".into());

    eprintln!(
        "search pipeline bench [{mode}]: {iterations} iterations, {proxy_steps} proxy steps, \
         serial vs eval_workers({workers}) ..."
    );
    let data = search_pipeline_data(
        iterations,
        proxy_steps,
        workers,
        with_multi,
        with_warm,
        true,
        with_breakdown,
    );
    eprintln!(
        "proxy_train bench: {train_steps} train steps, compiled vs reference engine, \
         {kernel_iters} kernel executions ..."
    );
    let proxy = proxy_train_data(train_steps, kernel_iters);
    eprintln!(
        "proxy_parallel bench: {train_steps} train steps at exec_threads 1/2/4 \
         (pinned reduce width) vs the serial engine ..."
    );
    let parallel = proxy_parallel_data(train_steps);
    eprintln!("exec-thread invariance: {iterations} iterations at exec_threads 1/2/4 ...");
    let invariance = exec_thread_invariance(iterations, proxy_steps);
    let serve = if with_serve {
        eprintln!(
            "serve bench: {iterations} iterations/session, daemon fan-out at 1/2/4 \
             sessions over a {workers}-wide shared eval pool ..."
        );
        Some(serve_data(iterations, proxy_steps, workers))
    } else {
        None
    };
    let coalesce = if with_serve {
        eprintln!(
            "serve_coalesce bench: two tenants racing the identical spec through one \
             daemon vs running it twice in-process ..."
        );
        Some(coalesce_data(iterations, proxy_steps, workers))
    } else {
        None
    };
    // Process-level concurrency over the sharded repository rides with the
    // serve (throughput) sections; the CI multi_writer_smoke step gates
    // its contracts separately.
    let sharded = if with_serve {
        eprintln!(
            "store_sharded bench: one sequential writer vs two concurrent writer \
             processes, {iterations} iterations each ..."
        );
        Some(store_sharded_data(iterations, proxy_steps))
    } else {
        None
    };

    println!("mode        eval_workers  wall_secs  candidates  cand/sec");
    for sample in [&data.serial, &data.pipelined] {
        let label = if sample.eval_workers == 1 {
            "serial"
        } else {
            "pipelined"
        };
        println!(
            "{label:<11} {:>12}  {:>9.3}  {:>10}  {:>8.3}",
            sample.eval_workers, sample.wall_secs, sample.candidates, sample.throughput
        );
    }
    println!(
        "speedup: {:.2}x on {} hardware thread(s); identical candidate sets: {}",
        data.speedup, data.available_parallelism, data.identical_sets
    );
    if let Some(multi) = &data.multi_scenario {
        println!(
            "multi-scenario (vision + LM): {:.3}s wall, {} + {} candidates, {:.3} cand/sec",
            multi.wall_secs, multi.vision_candidates, multi.lm_candidates, multi.throughput
        );
    }
    if let Some(warm) = &data.warm_store {
        println!(
            "warm store: cold {:.3}s -> warm {:.3}s ({:.2}x), {} hits, {} re-trainings, \
             identical sets: {}",
            warm.cold_wall_secs,
            warm.warm_wall_secs,
            warm.speedup,
            warm.cache_hits,
            warm.warm_trainings,
            warm.identical_sets
        );
    }

    if let Some(telemetry) = &data.telemetry {
        println!(
            "telemetry: serial {:.3}s off -> {:.3}s on ({:+.1}% overhead), \
             identical sets: {}",
            telemetry.disabled_wall_secs,
            telemetry.enabled_wall_secs,
            telemetry.overhead_frac * 100.0,
            telemetry.identical_sets
        );
        for phases in &telemetry.phase_breakdown {
            println!(
                "  phases @ eval_workers({}): synth {:.1}% | proxy {:.1}% | store {:.1}% \
                 | tune {:.1}% | idle {:.1}%",
                phases.eval_workers,
                phases.synth_frac * 100.0,
                phases.eval_frac * 100.0,
                phases.store_frac * 100.0,
                phases.tune_frac * 100.0,
                phases.idle_frac * 100.0
            );
        }
    }

    if let Some(sharded) = &sharded {
        println!(
            "store_sharded: one writer {:.3}s ({} candidates) vs two concurrent \
             writer processes {:.3}s ({} candidates, {} segments): {:.2}x; \
             zero lost records: {}, derive_union byte-stable: {} ({} members)",
            sharded.one_writer_secs,
            sharded.one_writer_candidates,
            sharded.two_writer_secs,
            sharded.two_writer_candidates,
            sharded.segments,
            sharded.speedup,
            sharded.zero_lost_records,
            sharded.derive_union_deterministic,
            sharded.union_len,
        );
    }

    if let Some(serve) = &serve {
        println!(
            "serve (daemon, {}-wide shared pool): in-process baseline {:.3} cand/sec/tenant",
            serve.eval_workers, serve.baseline.per_tenant_throughput
        );
        for level in &serve.fanout {
            println!(
                "  {} session(s): {:>9.3}s wall, {:>3} candidates, {:.3} cand/sec/tenant",
                level.sessions, level.wall_secs, level.candidates, level.per_tenant_throughput
            );
        }
    }

    if let Some(coalesce) = &coalesce {
        println!(
            "serve_coalesce: serial 2x run {:.3}s / {} trainings vs coalesced \
             {:.3}s / {} trainings ({} candidates each side)",
            coalesce.serial.wall_secs,
            coalesce.serial.trainings,
            coalesce.coalesced.wall_secs,
            coalesce.coalesced.trainings,
            coalesce.coalesced.candidates,
        );
    }

    println!(
        "proxy_train: compiled {:.2} steps/sec vs reference {:.2} steps/sec ({:.2}x), \
         scores identical: {}; kernel engine {:.2}x over tree-walk interpreter",
        proxy.compiled.steps_per_sec,
        proxy.reference.steps_per_sec,
        proxy.speedup,
        proxy.scores_identical,
        proxy.kernel_speedup,
    );

    println!(
        "proxy_parallel: serial {:.2} steps/sec on {} hardware thread(s)",
        parallel.serial.steps_per_sec, parallel.available_parallelism
    );
    for t in &parallel.threads {
        println!(
            "  exec_threads({}): {:.2} steps/sec ({:.2}x vs serial)",
            t.exec_threads, t.engine.steps_per_sec, t.speedup_vs_serial
        );
    }
    println!(
        "  scores invariant across thread counts: {}; candidate sets identical \
         at exec_threads 1/2/4: {}",
        parallel.scores_invariant, invariance.identical_candidate_sets
    );

    if asserting {
        assert!(
            proxy.scores_identical,
            "bit-identity contract violated: compiled and reference engines \
             produced different scores"
        );
        assert!(
            data.identical_sets,
            "determinism contract violated: serial and pipelined candidate sets differ"
        );
        if let Some(warm) = &data.warm_store {
            assert!(
                warm.identical_sets,
                "store replay contract violated: cold and warm candidate sets differ"
            );
            assert!(
                warm.warm_trainings == 0,
                "warm store must serve every evaluation from the journal \
                 ({} re-trainings)",
                warm.warm_trainings
            );
        }
        if let Some(telemetry) = &data.telemetry {
            assert!(
                telemetry.identical_sets,
                "telemetry out-of-band contract violated: enabling tracing \
                 changed the discovered candidate set"
            );
        }
        assert!(
            parallel.scores_invariant,
            "thread-invariance contract violated: exec_threads moved a proxy \
             score bit at fixed reduce_width"
        );
        assert!(
            invariance.identical_candidate_sets,
            "thread-invariance contract violated: candidate sets differ \
             across exec_threads 1/2/4 at fixed reduce_width"
        );
        if let Some(coalesce) = &coalesce {
            assert!(
                coalesce.coalesced.candidates == coalesce.serial.candidates,
                "coalescing determinism contract violated: coalesced sessions \
                 produced {} candidates vs {} serially",
                coalesce.coalesced.candidates,
                coalesce.serial.candidates
            );
            assert!(
                coalesce.coalesced.trainings * 2 == coalesce.serial.trainings,
                "single-flight contract violated: {} trainings coalesced vs {} \
                 for two serial passes (want exactly half)",
                coalesce.coalesced.trainings,
                coalesce.serial.trainings
            );
        }
        if let Some(sharded) = &sharded {
            assert!(
                sharded.zero_lost_records,
                "sharded-repository contract violated: run-set members lost \
                 their graph across merge + fan-in compaction"
            );
            assert!(
                sharded.derive_union_deterministic,
                "derive determinism contract violated: repeat two-writer \
                 passes produced different derive_union bytes"
            );
        }
        eprintln!("determinism contracts hold");
    }

    if write_json {
        // The telemetry-enabled runs above left their spans and counters in
        // the process-global buffers; archive them next to the JSON.
        let trace_out = std::env::var("BENCH_TRACE_OUT").unwrap_or_else(|_| "BENCH_trace.txt".into());
        let metrics_out =
            std::env::var("BENCH_METRICS_OUT").unwrap_or_else(|_| "BENCH_metrics.prom".into());
        let spans = syno_telemetry::trace::drain();
        std::fs::write(&trace_out, syno_telemetry::trace::flame_summary(&spans))
            .expect("write trace summary");
        std::fs::write(&metrics_out, syno_telemetry::metrics::global().render())
            .expect("write metrics dump");
        eprintln!("wrote {trace_out} ({} spans) and {metrics_out}", spans.len());
    }

    if write_json {
        let json = to_json(
            &data,
            &proxy,
            &parallel,
            &invariance,
            serve.as_ref(),
            coalesce.as_ref(),
            sharded.as_ref(),
        );
        std::fs::write(&out, &json).expect("write bench json");
        eprintln!("wrote {out}");
    }
}
