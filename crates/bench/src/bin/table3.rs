//! Prints Table 3: canonical rates by pGraph size.
use syno_bench::table3::table3_data;

fn main() {
    println!("# Table 3 — canonical rates of sampled pGraph sizes");
    println!("(paper: 100% @2, 18.18% @3, 13.97% @4, 4.40% @5, 1.22% @6, 0.08% @7, 0% @8+)");
    let rows = table3_data(6452, 8, 2024);
    println!("{:>5} {:>9} {:>10} {:>8}", "size", "sampled", "canonical", "rate");
    let mut total = 0;
    let mut canon = 0;
    for r in &rows {
        println!("{:>5} {:>9} {:>10} {:>7.2}%", r.size, r.sampled, r.canonical, 100.0 * r.rate());
        total += r.sampled;
        canon += r.canonical;
    }
    let ratio = total as f64 / canon.max(1) as f64;
    println!("\ntotal {total} samples, {canon} canonical -> {ratio:.0}x redundancy cut (paper: >70x)");
}
