//! CI smoke test for the sharded candidate repository: two concurrent OS
//! processes each run a small search against the same repository
//! directory through their own journal shards, the parent fan-in
//! compacts, and the run asserts (a) **zero lost records** — every member
//! of both per-run candidate sets still resolves to its graph after the
//! merge + compaction — and (b) **byte-stable derives** — a second,
//! independent pass produces a bit-identical `derive_union` record.
//!
//! Exits nonzero on any violation; CI runs this as a gating step.
//!
//! Environment knobs: `SYNO_SMOKE_ITERS` (MCTS iterations per writer,
//! default 10), `SYNO_SMOKE_PROXY_STEPS` (default 3).

use syno_bench::store_sharded::{run_writer_from_env, two_writer_pass};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    // Child mode: this binary re-execs itself as the writer processes.
    if run_writer_from_env() {
        return;
    }
    let iterations = env_usize("SYNO_SMOKE_ITERS", 10);
    let proxy_steps = env_usize("SYNO_SMOKE_PROXY_STEPS", 3);
    let root = std::env::temp_dir().join(format!("syno-multi-writer-smoke-{}", std::process::id()));

    eprintln!(
        "multi-writer smoke: 2 writer processes x {iterations} iterations, two passes ..."
    );
    let passes: Vec<_> = (1..=2)
        .map(|i| {
            let pass = two_writer_pass(&root.join(format!("pass-{i}")), iterations, proxy_steps);
            println!(
                "pass {i}: {:.3}s wall, {} candidates over {} segments, {} lost, \
                 union {} members (digest {:#018x})",
                pass.wall_secs,
                pass.candidates,
                pass.segments,
                pass.lost_records,
                pass.union_len,
                pass.union_digest,
            );
            pass
        })
        .collect();
    let _ = std::fs::remove_dir_all(&root);

    let mut ok = true;
    for (i, pass) in passes.iter().enumerate() {
        if pass.segments != 3 {
            eprintln!(
                "FAIL pass {}: expected 3 segments (canonical + 2 shards), saw {}",
                i + 1,
                pass.segments
            );
            ok = false;
        }
        if pass.lost_records != 0 {
            eprintln!(
                "FAIL pass {}: {} run-set members lost their graph across merge + compaction",
                i + 1,
                pass.lost_records
            );
            ok = false;
        }
        if pass.union_len == 0 {
            eprintln!("FAIL pass {}: derive_union came back empty", i + 1);
            ok = false;
        }
    }
    if passes[0].union_bytes != passes[1].union_bytes
        || passes[0].union_digest != passes[1].union_digest
    {
        eprintln!(
            "FAIL: derive_union is not byte-stable across repeat runs \
             (digests {:#018x} vs {:#018x}, {} vs {} bytes)",
            passes[0].union_digest,
            passes[1].union_digest,
            passes[0].union_bytes.len(),
            passes[1].union_bytes.len(),
        );
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
    println!("multi-writer smoke: zero lost records, derive_union byte-stable");
}
