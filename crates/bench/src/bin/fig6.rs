//! Prints the Figure 6 table: accuracy-vs-latency Pareto points.
use syno_bench::fig6::fig6_data;
use syno_compiler::{CompilerKind, Device};

fn main() {
    println!("# Figure 6 — accuracy vs latency Pareto points (proxy accuracy)");
    for device in Device::all() {
        for compiler in [CompilerKind::Tvm, CompilerKind::TorchInductor] {
            println!("\n## {} / {}", device.name, compiler.name());
            println!("{:<18} {:<10} {:>12} {:>10} {:>6}", "model", "operator", "latency(ms)", "accuracy", "front");
            for p in fig6_data(&device, compiler, false) {
                println!(
                    "{:<18} {:<10} {:>12.3} {:>10.3} {:>6}",
                    p.model, p.operator, p.latency * 1e3, p.accuracy,
                    if p.on_front { "*" } else { "" }
                );
            }
        }
    }
}
