//! Prints the Figure 10 curves: GPT-2 perplexity vs training steps.
use syno_bench::fig10::fig10_data;

fn main() {
    println!("# Figure 10 — LM perplexity vs training steps (proxy task)");
    let data = fig10_data(600, false);
    println!("{:>6} {:>14} {:>14}", "step", "baseline-ppl", "syno-ppl");
    let pairs = data.baseline_curve.iter().zip(&data.syno_curve);
    for ((step, base), (_, syno)) in pairs {
        println!("{:>6} {:>14.3} {:>14.3}", step, base, syno);
    }
    println!("\nQKV projection speedup at GPT-2 scale (A100/TVM): {:.2}x", data.projection_speedup);
    println!("(paper: 1.1x training speedup, perplexity 111 -> 99)");
}
