//! Prints the §9.2 αNAS comparison: FLOPs/parameter reductions.
use syno_compiler::{CompilerKind, Device};
use syno_models::{alphanas_reported, model_flops_params, model_latency, Substitution};

fn main() {
    println!("# αNAS comparison (§9.2): FLOPs / parameter reduction within the accuracy margin");
    for backbone in [syno_models::resnet34(), syno_models::efficientnet_v2_s()] {
        let (bf, bp) = model_flops_params(&backbone, Substitution::Baseline);
        for subst in [Substitution::Operator1, Substitution::Operator2] {
            let (f, p) = model_flops_params(&backbone, subst);
            let device = Device::server_gpu();
            let speed = model_latency(&backbone, Substitution::Baseline, &device, CompilerKind::Tvm)
                / model_latency(&backbone, subst, &device, CompilerKind::Tvm);
            println!(
                "{:<18} {:<10} flops -{:>5.1}%  params -{:>5.1}%  a100-tvm speedup {:.2}x",
                backbone.name,
                subst.name(),
                100.0 * (1.0 - f as f64 / bf as f64),
                100.0 * (1.0 - p as f64 / bp as f64),
                speed
            );
        }
    }
    println!("\nαNAS published numbers (closed source):");
    for r in alphanas_reported() {
        println!(
            "{:<18} flops -{:>4.0}%  TPU-v3 training speedup {:.2}x",
            r.model,
            100.0 * r.flops_reduction,
            r.training_speedup
        );
    }
    println!("(paper: Syno reaches 63%/37% FLOPs reduction vs αNAS's 25%)");
}
