//! Prints the §9.4 shape-distance ablation.
use syno_bench::table3::ablation_shape_distance;

fn main() {
    println!("# Shape-distance ablation (§9.4)");
    println!("(paper: guided finds 253 distinct operators in 5M trials; unguided finds 0 in 500M)");
    let r = ablation_shape_distance(3000, 5, 77);
    println!("trials per arm:        {}", r.trials);
    println!("guided completions:    {} ({} distinct)", r.guided_found, r.guided_distinct);
    println!("unguided completions:  {}", r.unguided_found);
}
