//! Prints the Figure 5 table: end-to-end speedups per model/device/compiler.
use syno_bench::fig5::{fig5_data, geomean_speedup};

fn main() {
    let rows = fig5_data();
    println!("# Figure 5 — end-to-end speedup of Syno-optimized models");
    println!("{:<18} {:<11} {:<14} {:>12} {:>12} {:>8}  winner", "model", "device", "compiler", "baseline(ms)", "syno(ms)", "speedup");
    for r in &rows {
        println!(
            "{:<18} {:<11} {:<14} {:>12.3} {:>12.3} {:>7.2}x  {}",
            r.model, r.device, r.compiler, r.baseline * 1e3, r.syno * 1e3, r.speedup(), r.winner
        );
    }
    println!("\n# Geomean speedups (paper: TVM 2.06x/1.72x/1.47x, Inductor 1.37x/1.62x/1.60x)");
    for device in ["mobile-cpu", "mobile-gpu", "a100"] {
        for compiler in ["TVM", "TorchInductor"] {
            println!("  {device:<11} {compiler:<14} {:.2}x", geomean_speedup(&rows, device, compiler));
        }
    }
}
