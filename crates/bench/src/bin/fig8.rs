//! Prints the Figure 8 case study: Operator 1 vs original vs INT8 vs stacked.
use syno_bench::fig8::fig8_data;

fn main() {
    println!("# Figure 8 — Operator 1 case study on ResNet-18 (TVM)");
    println!("{:<22} {:>14} {:>14} {:>12} {:>10}", "variant", "mobile-cpu(ms)", "mobile-gpu(ms)", "a100(ms)", "accuracy");
    for r in fig8_data(false) {
        println!(
            "{:<22} {:>14.3} {:>14.3} {:>12.3} {:>10.3}",
            r.variant, r.latencies[0] * 1e3, r.latencies[1] * 1e3, r.latencies[2] * 1e3, r.accuracy
        );
    }
    println!("\n(paper: Operator 1 gets 2.68x/2.04x/1.28x over the original, slightly beats INT8 accuracy,");
    println!(" and the stacked convolution doubles the accuracy loss at the same FLOPs)");
}
