//! Criterion bench for the Figure 9 pipeline: one layer-wise comparison.
use criterion::{criterion_group, criterion_main, Criterion};
use syno_compiler::{CompilerKind, Device};
use syno_models::{resnet34_layers, site_latency, Substitution, FIG9_LAYERS};

fn bench(c: &mut Criterion) {
    let layers = resnet34_layers();
    let layer = layers[FIG9_LAYERS[0] - 1];
    let device = Device::mobile_cpu();
    let mut group = c.benchmark_group("fig9");
    group.sample_size(20);
    group.bench_function("layer_l1_op1_tvm", |b| {
        b.iter(|| site_latency(&layer, Substitution::Operator1, &device, CompilerKind::Tvm))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
