//! Criterion bench for the Figure 5 pipeline: one end-to-end model latency
//! evaluation (ResNet-18, mobile CPU, both compilers).
use criterion::{criterion_group, criterion_main, Criterion};
use syno_compiler::{CompilerKind, Device};
use syno_models::{model_latency, resnet18, Substitution};

fn bench(c: &mut Criterion) {
    let backbone = resnet18();
    let device = Device::mobile_cpu();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("resnet18_baseline_tvm", |b| {
        b.iter(|| model_latency(&backbone, Substitution::Baseline, &device, CompilerKind::Tvm))
    });
    group.bench_function("resnet18_op1_tvm", |b| {
        b.iter(|| model_latency(&backbone, Substitution::Operator1, &device, CompilerKind::Tvm))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
