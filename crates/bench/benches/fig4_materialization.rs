//! Criterion bench for the §8 materialized-reduction lowering (Fig. 4).
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use syno_core::prelude::*;
use syno_ir::{lower_naive, lower_optimized};

fn fig4_graph() -> PGraph {
    let mut vars = VarTable::new();
    let h = vars.declare("H", VarKind::Primary);
    let k = vars.declare("k", VarKind::Coefficient);
    let s = vars.declare("s", VarKind::Coefficient);
    vars.push_valuation(vec![(h, 64), (k, 5), (s, 4)]);
    let vars = vars.into_shared();
    let spec = OperatorSpec::new(
        TensorShape::new(vec![Size::var(h)]),
        TensorShape::new(vec![Size::var(h).div(&Size::var(s))]),
    );
    let g = PGraph::new(Arc::clone(&vars), spec);
    let i = g.frontier()[0];
    let g = g.apply(&Action::Reduce { domain: Size::var(k) }).unwrap();
    let rk = g.last_node().unwrap().produced[0];
    let g = g.apply(&Action::Unfold { base: i, window: rk }).unwrap();
    let u = g.last_node().unwrap().produced[0];
    let g = g.apply(&Action::Reduce { domain: Size::var(s) }).unwrap();
    let rs = g.last_node().unwrap().produced[0];
    g.apply(&Action::Split { lhs: u, rhs: rs }).unwrap()
}

fn bench(c: &mut Criterion) {
    let graph = fig4_graph();
    // Report the FLOPs reduction once.
    let naive = lower_naive(&graph, 0).unwrap().flops();
    let opt = lower_optimized(&graph, 0).unwrap().flops();
    println!("fig4: naive {naive} flops -> materialized {opt} flops");
    let mut group = c.benchmark_group("fig4");
    group.bench_function("lower_naive", |b| b.iter(|| lower_naive(&graph, 0).unwrap().flops()));
    group.bench_function("lower_optimized", |b| {
        b.iter(|| lower_optimized(&graph, 0).unwrap().flops())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
