//! Criterion bench for the Figure 10 pipeline: LM training steps with the
//! dense and grouped QKV projections.
use criterion::{criterion_group, criterion_main, Criterion};
use syno_bench::fig10::grouped_projection;
use syno_nn::{LmConfig, OperatorLayer, QkvProjection, TextTask, TinyGpt};

fn bench(c: &mut Criterion) {
    let config = LmConfig { vocab: 12, context: 6, dim: 16 };
    let task = TextTask::new(5, config.vocab, config.context);
    let (ctx, tgt) = task.batch(0, 16);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("train_step_dense", |b| {
        let mut model = TinyGpt::new(config, QkvProjection::Dense, 7);
        b.iter(|| model.train_step(&ctx, &tgt, 0.1))
    });
    group.bench_function("train_step_grouped", |b| {
        let proj = grouped_projection(16 * 6, 16, 48, 2).expect("projection");
        let layer = OperatorLayer::new(proj, 0).expect("realizable");
        let mut model = TinyGpt::new(config, QkvProjection::Operator(layer), 7);
        b.iter(|| model.train_step(&ctx, &tgt, 0.1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
