//! Criterion bench for the Table 3 sampler.
use criterion::{criterion_group, criterion_main, Criterion};
use syno_bench::table3::table3_data;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("sample_200_graphs", |b| {
        b.iter(|| table3_data(200, 6, 42))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
