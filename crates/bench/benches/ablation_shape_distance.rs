//! Criterion bench for the §9.4 shape-distance ablation rollouts.
use criterion::{criterion_group, criterion_main, Criterion};
use syno_bench::table3::ablation_shape_distance;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("rollouts_100_guided_and_unguided", |b| {
        b.iter(|| ablation_shape_distance(100, 5, 7))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
