//! Criterion bench for the Figure 8 pipeline: compiling Operator 1 at one
//! representative site on all three devices.
use criterion::{criterion_group, criterion_main, Criterion};
use syno_compiler::{compile, CompilerKind, DType, Device, OperatorClass};
use syno_models::{operator1, ConvShape};

fn bench(c: &mut Criterion) {
    let shape = ConvShape { n: 1, cin: 64, cout: 64, hw: 56, k: 3, g: 2, s: 4 };
    let graph = operator1(&shape).expect("operator 1 builds");
    let profile =
        syno_compiler::profile_graph(&graph, 0, OperatorClass::Novel, "op1").expect("profiles");
    let mut group = c.benchmark_group("fig8");
    for device in Device::all() {
        group.bench_function(format!("compile_op1_{}", device.name), |b| {
            b.iter(|| compile(&profile, &device, CompilerKind::Tvm, DType::F32).latency)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
