//! Criterion bench for the Figure 6 pipeline: Pareto extraction over the
//! substitution tradeoff points.
use criterion::{criterion_group, criterion_main, Criterion};
use syno_search::{pareto_front, TradeoffPoint};

fn bench(c: &mut Criterion) {
    let points: Vec<TradeoffPoint> = (0..256)
        .map(|i| TradeoffPoint {
            latency: ((i * 37) % 97) as f64 / 97.0,
            accuracy: ((i * 59) % 89) as f64 / 89.0,
        })
        .collect();
    c.bench_function("fig6_pareto_front_256", |b| b.iter(|| pareto_front(&points)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
